//! The fleet engine: worker threads, stream lifecycle, batched ingestion,
//! flush/checkpoint/restore, and the health rollup.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use larp::{GuardedLarp, HealthState, StreamMemReport};
use obs::{expo, EventKind, EventRing, Registry};
use store::{BlobStore, RegisterTuning, StoreOptions, TraceStore, WalOptions, WalRecord};

use crate::checkpoint;
use crate::config::{BackpressurePolicy, DurabilityConfig, FleetConfig, StreamConfig};
use crate::durability::{self, CheckpointFile, DurabilityState, RecoverySummary};
use crate::health::{merge_counters, FleetHealth, PushReport, ShardHealth};
use crate::observe::FleetObs;
use crate::retrain::RetrainPool;
use crate::shard::{shard_of, Job, Removed, ShardState, StreamSlot, Tombstone};
use crate::{FleetError, Result, StreamId};

/// State shared between the engine handle and its worker threads.
struct EngineShared {
    config: FleetConfig,
    shards: Vec<ShardState>,
    /// Monotonic count of push attempts, the idle-expiry clock.
    push_seq: AtomicU64,
    /// Orders the background maintenance thread (auto-checkpoint +
    /// auto-hibernate) to exit.
    maint_stop: AtomicBool,
    obs: FleetObs,
    /// Durable-ingestion state; `None` for a purely in-memory engine.
    durability: Option<DurabilityState>,
    /// Spill store for hibernated streams; `None` without
    /// [`FleetConfig::spill_dir`]. Lock order: a shard's stream table first,
    /// then the spill store — every site follows it, so the pair cannot
    /// deadlock.
    spill: Option<Mutex<BlobStore>>,
    /// Fleet-wide PCA basis interner: streams trained on identical windows
    /// share one basis allocation (DESIGN.md §11).
    interner: Arc<learn::PcaInterner>,
    /// Off-worker retrain pool; `None` retrains inline on the shard workers
    /// ([`FleetConfig::retrain_threads`] == 0).
    retrain: Option<RetrainPool>,
}

impl EngineShared {
    /// Blocks until every queued sample has been fully processed, then
    /// settles every outstanding off-worker retrain. The post-drain fence is
    /// what keeps snapshots independent of the retrain pool: by the time any
    /// caller serializes serving state, no stream carries an armed request or
    /// an in-flight fit, so checkpoint bytes are bit-identical with the pool
    /// on or off.
    fn flush_shards(&self) {
        for s in &self.shards {
            let mut q = s.queue.lock().expect("shard queue poisoned");
            while !q.items.is_empty() || q.busy {
                q = s.drained.wait(q).expect("shard queue poisoned");
            }
        }
        if let Some(pool) = &self.retrain {
            for s in &self.shards {
                let mut streams = s.streams.lock().expect("shard stream table poisoned");
                streams.for_each_live_mut(|_, slot| slot.settle_retrain(&pool.stale));
            }
        }
    }

    /// Serializes every stream's serving state (sorted by id). Callers
    /// flush/quiesce first; returns the bytes and the stream count.
    ///
    /// Hibernated streams are inlined by reading their spill blobs — a blob
    /// *is* a guarded snapshot, so no wake is needed — which makes the bytes
    /// independent of which streams happen to be hibernated.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] if a hibernated stream's blob is
    /// missing or unreadable (the checkpoint would silently drop it).
    fn checkpoint_payload(&self) -> Result<(Vec<u8>, u64)> {
        let mut streams: Vec<(StreamId, u64, Vec<u8>)> = Vec::new();
        for s in &self.shards {
            let table = s.streams.lock().expect("shard stream table poisoned");
            for (id, slot) in table.iter_live() {
                streams.push((id, slot.next_minute, slot.guarded.to_snapshot_bytes()));
            }
            for (id, tomb) in table.iter_tombs() {
                let spill = self.spill.as_ref().expect("hibernated stream implies a spill store");
                match spill.lock().expect("spill store poisoned").get(id) {
                    Ok(Some(bytes)) => streams.push((id, tomb.next_minute, bytes)),
                    Ok(None) => {
                        return Err(FleetError::Checkpoint(format!(
                            "hibernated stream {id} has no spill blob"
                        )))
                    }
                    Err(e) => {
                        return Err(FleetError::Checkpoint(format!(
                            "hibernated stream {id}: spill read failed: {e}"
                        )))
                    }
                }
            }
        }
        streams.sort_unstable_by_key(|(id, _, _)| *id);
        let count = streams.len() as u64;
        Ok((checkpoint::encode(&streams), count))
    }
}

/// Restores a hibernated stream's serving stack from the spill store, called
/// by shard workers when a sample arrives for a tombstoned stream. `None`
/// (counted in `fleet_wake_failures_total`) means the spilled state is gone
/// or unreadable; the worker drops the stream rather than serving from a
/// half-reset stack.
fn wake_guarded(shared: &EngineShared, id: StreamId, _tomb: &Tombstone) -> Option<GuardedLarp> {
    let spill = shared.spill.as_ref()?;
    let bytes = match spill.lock().expect("spill store poisoned").get(id) {
        Ok(Some(b)) => b,
        Ok(None) | Err(_) => {
            shared.obs.wake_failures.inc();
            return None;
        }
    };
    match GuardedLarp::from_snapshot_bytes(&bytes) {
        Ok(mut guarded) => {
            guarded.attach_obs(shared.obs.larp.for_stream(id));
            guarded.attach_interner(Arc::clone(&shared.interner));
            guarded.online_mut().set_deferred_retrain(shared.retrain.is_some());
            spill.lock().expect("spill store poisoned").delete(id);
            shared.obs.wakes.inc();
            let kind = EventKind::StreamWoken { bytes: bytes.len() as u64 };
            shared.obs.events.push(Some(id), kind);
            Some(guarded)
        }
        Err(_) => {
            shared.obs.wake_failures.inc();
            None
        }
    }
}

/// Resident set size of this process in bytes, read from
/// `/proc/self/statm` (pages × 4096, the page size on every platform this
/// repo targets). `None` off Linux or if the file is unreadable.
pub fn process_resident_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// Fleet-wide memory accounting, from [`FleetEngine::mem_report`]
/// (DESIGN.md §11).
#[derive(Debug, Clone, Default)]
pub struct FleetMemReport {
    /// Streams with their full serving stack resident.
    pub live_streams: usize,
    /// Streams spilled to the hibernation store (tombstone-only resident).
    pub hibernated_streams: usize,
    /// Component-wise sum over every *live* stream's serving stack. Its
    /// `pca_bytes` counts each handle's basis once per stream — use
    /// [`FleetMemReport::pca_unique_bytes`] for the deduplicated footprint.
    pub stream: StreamMemReport,
    /// Deduplicated PCA basis bytes (interned bases counted once).
    pub pca_unique_bytes: usize,
    /// PCA basis handles across live streams (handles − unique = shared).
    pub pca_handles: usize,
    /// Stream-table overhead: index buckets + both slabs + free lists.
    pub table_bytes: usize,
    /// Live bytes in the hibernation spill file (on disk, not resident).
    pub spill_live_bytes: u64,
    /// Garbage bytes in the spill file awaiting compaction.
    pub spill_dead_bytes: u64,
    /// Process RSS at report time, when the platform exposes it.
    pub resident_bytes: Option<u64>,
}

impl FleetMemReport {
    /// Accounted heap bytes: per-stream components with the PCA dedup
    /// applied, plus table overhead. Excludes queues, scratch arenas and
    /// allocator slack — compare against [`FleetMemReport::resident_bytes`]
    /// to see what the accounting misses.
    pub fn heap_total(&self) -> usize {
        self.stream.total() - self.stream.pca_bytes + self.pca_unique_bytes + self.table_bytes
    }

    /// Accounted resident bytes per registered stream (live + hibernated).
    pub fn bytes_per_stream(&self) -> f64 {
        let n = self.live_streams + self.hibernated_streams;
        if n == 0 {
            0.0
        } else {
            self.heap_total() as f64 / n as f64
        }
    }
}

/// Builds the store options a [`DurabilityConfig`] describes.
fn store_options(d: &DurabilityConfig) -> StoreOptions {
    StoreOptions {
        wal: WalOptions {
            segment_bytes: d.segment_bytes,
            fsync: d.fsync,
            retain_segments: d.retain_segments,
            ..WalOptions::default()
        },
        memtable_rows: d.memtable_rows,
        ..StoreOptions::default()
    }
}

/// Takes a durable checkpoint: quiesces producers via the gate, drains the
/// queues, persists checkpoint + archive sidecar, then truncates covered WAL
/// segments. Shared by [`FleetEngine::checkpoint_durable`] and the
/// background checkpointer.
fn checkpoint_durable_inner(shared: &EngineShared) -> Result<u64> {
    let d = shared
        .durability
        .as_ref()
        .ok_or_else(|| FleetError::InvalidConfig("durability is not configured".into()))?;
    let _gate = d.gate.write().expect("durability gate poisoned");
    shared.flush_shards();
    let (payload, streams) = shared.checkpoint_payload()?;
    let seq = d.store.persist_archive()?;
    durability::write_checkpoint_file(&d.ckpt_path, seq, &payload)
        .map_err(|e| FleetError::Durability(format!("checkpoint write: {e}")))?;
    d.store.truncate_upto(seq)?;
    d.records_since_ckpt.store(0, Ordering::Relaxed);
    shared.obs.checkpoints.inc();
    let kind = EventKind::CheckpointSave { streams, bytes: payload.len() as u64 };
    shared.obs.events.push(None, kind);
    Ok(seq)
}

/// Spills streams idle for more than `max_idle` push attempts. Shared by
/// [`FleetEngine::hibernate_idle`] and the background maintenance thread's
/// automatic policy.
fn hibernate_idle_inner(shared: &EngineShared, max_idle: u64) -> Result<Vec<StreamId>> {
    let spill = shared.spill.as_ref().ok_or_else(|| {
        FleetError::InvalidConfig("hibernation requires FleetConfig::spill_dir".into())
    })?;
    let _gate =
        shared.durability.as_ref().map(|d| d.gate.read().expect("durability gate poisoned"));
    shared.flush_shards();
    let now = shared.push_seq.load(Ordering::Relaxed);
    let mut hibernated = Vec::new();
    for s in &shared.shards {
        let mut streams = s.streams.lock().expect("shard stream table poisoned");
        let idle: Vec<StreamId> = streams
            .iter_live()
            .filter(|(_, slot)| now.saturating_sub(slot.last_seq) > max_idle)
            .map(|(id, _)| id)
            .collect();
        for id in idle {
            let slot = streams.hibernate(id).expect("listed as live");
            let bytes = slot.guarded.to_snapshot_bytes();
            let put = spill.lock().expect("spill store poisoned").put(id, &bytes);
            if let Err(e) = put {
                streams.wake(id, slot.guarded);
                return Err(FleetError::Durability(format!("spill write: {e}")));
            }
            shared.obs.hibernations.inc();
            let kind = EventKind::StreamHibernated { bytes: bytes.len() as u64 };
            shared.obs.events.push(Some(id), kind);
            hibernated.push(id);
        }
    }
    hibernated.sort_unstable();
    Ok(hibernated)
}

/// Sharded multi-stream serving engine. See the crate docs for the design.
///
/// All ingestion methods take `&self`; an engine can be shared across
/// producer threads behind an [`Arc`]. Dropping the engine drains the queues
/// and joins the workers.
pub struct FleetEngine {
    shared: Arc<EngineShared>,
    default_stream: StreamConfig,
    workers: Vec<JoinHandle<()>>,
    /// Background maintenance thread (auto-checkpoint and/or
    /// auto-hibernate), when either policy is configured.
    maintenance: Option<JoinHandle<()>>,
}

/// A point-in-time view of one stream's serving state.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInfo {
    /// The stream id.
    pub id: StreamId,
    /// Shard (= worker thread) serving this stream.
    pub shard: usize,
    /// Clean samples that reached the predictor.
    pub steps: u64,
    /// Forecasts served.
    pub forecasts: u64,
    /// Minute assigned to the next auto-clocked sample.
    pub next_minute: u64,
    /// Health of the most recent step.
    pub health: HealthState,
    /// Most recent forecast, if any.
    pub last_forecast: Option<f64>,
    /// (Re)trainings performed, including the initial one.
    pub retrains: usize,
}

impl FleetEngine {
    /// Starts an engine with [`StreamConfig::default`] for
    /// [`register`](Self::register)ed streams.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for an invalid `config`.
    pub fn new(config: FleetConfig) -> Result<Self> {
        Self::with_stream_defaults(config, StreamConfig::default())
    }

    /// Starts an engine with an explicit default per-stream configuration.
    ///
    /// With [`FleetConfig::durability`] set this creates a *fresh* durable
    /// store — the directory must not already hold a WAL (use
    /// [`recover`](Self::recover) for one that does).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] if either configuration is
    /// invalid and [`FleetError::Durability`] if the store cannot be created.
    pub fn with_stream_defaults(config: FleetConfig, default_stream: StreamConfig) -> Result<Self> {
        config.validate()?;
        let state = match &config.durability {
            Some(dcfg) => {
                let trace = TraceStore::create(&dcfg.dir, store_options(dcfg))?;
                Some(DurabilityState::new(trace, dcfg.clone()))
            }
            None => None,
        };
        Self::build(config, default_stream, state)
    }

    /// Spawns workers around an already-validated configuration and an
    /// already-opened durable store (if any).
    fn build(
        config: FleetConfig,
        default_stream: StreamConfig,
        durability: Option<DurabilityState>,
    ) -> Result<Self> {
        // Fail fast on a default stream config that can never build.
        default_stream.build()?;
        let obs = FleetObs::new(config.event_capacity, config.slow_retrain_us);
        let retrain = (config.retrain_threads > 0)
            .then(|| RetrainPool::start(config.retrain_threads, &obs.registry));
        // The spill file is a cache, never a durable artifact: open()
        // truncates it, so hibernated state cannot leak across engine
        // lifetimes or confuse recovery.
        let spill = match &config.spill_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| {
                    FleetError::InvalidConfig(format!("spill_dir {}: {e}", dir.display()))
                })?;
                let blob = BlobStore::open(dir.join("HIBERNATE.blob"))
                    .map_err(|e| FleetError::Durability(format!("spill store: {e}")))?;
                Some(Mutex::new(blob))
            }
            None => None,
        };
        let shared = Arc::new(EngineShared {
            shards: (0..config.shards).map(|i| ShardState::new(i, &obs.registry)).collect(),
            config,
            push_seq: AtomicU64::new(0),
            maint_stop: AtomicBool::new(false),
            obs,
            durability,
            spill,
            interner: Arc::new(learn::PcaInterner::new()),
            retrain,
        });
        let workers = (0..shared.config.shards)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fleet-shard-{i}"))
                    .spawn(move || {
                        let wake = |id: StreamId, tomb: &Tombstone| wake_guarded(&s, id, tomb);
                        s.shards[i].worker_loop(
                            s.config.batch_drain,
                            s.config.reuse_scratch,
                            &wake,
                            s.retrain.as_ref(),
                        )
                    })
                    .map_err(|e| FleetError::Serving(format!("cannot spawn shard worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        let maintenance = Self::spawn_maintenance(&shared);
        Ok(Self { shared, default_stream, workers, maintenance })
    }

    /// Starts the background maintenance thread, if any periodic policy is
    /// configured: automatic durable checkpoints
    /// ([`DurabilityConfig::auto_checkpoint_records`]) and/or automatic
    /// hibernation ([`FleetConfig::auto_hibernate_idle`]).
    fn spawn_maintenance(shared: &Arc<EngineShared>) -> Option<JoinHandle<()>> {
        let every =
            shared.durability.as_ref().map(|d| d.config.auto_checkpoint_records).unwrap_or(0);
        let auto_hibernate = shared.config.auto_hibernate_idle;
        if every == 0 && auto_hibernate.is_none() {
            return None;
        }
        let s = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("fleet-maintenance".into())
            .spawn(move || {
                // The idle policy is wall-clock but the engine's idle marks
                // are push sequence numbers; periodic (Instant, push_seq)
                // snapshots translate between the two — a stream is idle for
                // `auto_hibernate` if its last activity predates the newest
                // snapshot that old.
                let mut clock: VecDeque<(Instant, u64)> = VecDeque::new();
                let mut last_sweep = Instant::now();
                let sweep_every =
                    auto_hibernate.map(|idle| (idle / 4).max(Duration::from_millis(50)));
                while !s.maint_stop.load(Ordering::Relaxed) {
                    if every > 0 {
                        let d = s.durability.as_ref().expect("auto-checkpoint needs durability");
                        if d.records_since_ckpt.load(Ordering::Relaxed) >= every {
                            // A failed checkpoint leaves the trigger count
                            // untouched, so the next tick retries.
                            let _ = checkpoint_durable_inner(&s);
                        }
                    }
                    if let (Some(idle), Some(period)) = (auto_hibernate, sweep_every) {
                        let now = Instant::now();
                        clock.push_back((now, s.push_seq.load(Ordering::Relaxed)));
                        // Keep the front as the newest snapshot at least
                        // `idle` old; everything older is redundant.
                        while clock.len() > 1 && now.duration_since(clock[1].0) >= idle {
                            clock.pop_front();
                        }
                        let aged = clock.front().filter(|(t, _)| now.duration_since(*t) >= idle);
                        if now.duration_since(last_sweep) >= period {
                            if let Some(&(_, seq_then)) = aged {
                                last_sweep = now;
                                let now_seq = s.push_seq.load(Ordering::Relaxed);
                                let threshold = now_seq.saturating_sub(seq_then);
                                s.obs.auto_hibernate_cycles.inc();
                                if let Ok(ids) = hibernate_idle_inner(&s, threshold) {
                                    if !ids.is_empty() {
                                        let kind = EventKind::AutoHibernate {
                                            hibernated: ids.len() as u64,
                                        };
                                        s.obs.events.push(None, kind);
                                    }
                                }
                            }
                        }
                    }
                    std::thread::park_timeout(Duration::from_millis(20));
                }
            })
            .expect("spawn fleet maintenance thread");
        Some(handle)
    }

    /// Rebuilds an engine from its durable state: loads the newest valid
    /// checkpoint (degrading to WAL-only replay if it is corrupt or
    /// missing), replays the WAL tail through the serving slots, and reopens
    /// the log on a fresh segment. `config` may use a different shard count
    /// than the crashed engine — streams re-shard by the pure hash and the
    /// replay is bit-identical either way. Call with the same
    /// `default_stream` the crashed engine used so replayed registrations
    /// rebuild identical serving stacks.
    ///
    /// Corruption (torn tails, bit flips, missing segments) degrades to the
    /// last valid record and is counted in the returned [`RecoverySummary`]
    /// (and the `fleet_wal_gap_records_total` counter) — it is never a
    /// panic and never an error.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] if `config.durability` is unset
    /// and [`FleetError::Durability`] if the store directory is missing or
    /// unreadable.
    pub fn recover(
        config: FleetConfig,
        default_stream: StreamConfig,
    ) -> Result<(Self, RecoverySummary)> {
        config.validate()?;
        let dcfg = config
            .durability
            .clone()
            .ok_or_else(|| FleetError::InvalidConfig("recover requires durability".into()))?;
        if !dcfg.dir.is_dir() {
            return Err(FleetError::Durability(format!(
                "recover: store directory {} does not exist",
                dcfg.dir.display()
            )));
        }
        let mut summary = RecoverySummary::default();
        let ckpt_path = dcfg.dir.join(durability::CHECKPOINT_FILE);
        let (start_after, payload) = match durability::read_checkpoint_file(&ckpt_path)
            .map_err(|e| FleetError::Durability(format!("checkpoint read: {e}")))?
        {
            CheckpointFile::Loaded { seq, payload } => (seq, Some(payload)),
            CheckpointFile::Missing => (0, None),
            CheckpointFile::Corrupt => {
                summary.checkpoint_corrupt = true;
                (0, None)
            }
        };
        let mut tail: Vec<(u64, WalRecord)> = Vec::new();
        let (trace, recovered) =
            TraceStore::recover(&dcfg.dir, store_options(&dcfg), start_after, |seq, rec| {
                tail.push((seq, rec));
            })?;
        summary.checkpoint_seq = start_after;
        summary.archive_corrupt = recovered.archive_corrupt;
        summary.replayed_records = recovered.wal.replayed;
        summary.gap_records = recovered.wal.gap_records;
        summary.torn_tail = recovered.wal.torn_tail;
        summary.corrupt_segments = recovered.wal.corrupt_segments;
        summary.missing_segments = recovered.wal.missing_segments;

        let state = DurabilityState::new(trace, dcfg);
        let engine = Self::build(config, default_stream, Some(state))?;

        if let Some(payload) = payload {
            let streams = checkpoint::decode(&payload)?;
            summary.checkpoint_streams = streams.len() as u64;
            for st in streams {
                engine.insert_restored(st.id, st.guarded, st.next_minute);
            }
            engine.shared.obs.restores.inc();
            let kind = EventKind::CheckpointRestore {
                streams: summary.checkpoint_streams,
                bytes: payload.len() as u64,
            };
            engine.shared.obs.events.push(None, kind);
        }

        for (_seq, rec) in &tail {
            engine.replay_record(rec, &mut summary);
        }
        if let Some(d) = engine.shared.durability.as_ref() {
            d.records_since_ckpt.store(tail.len() as u64, Ordering::Relaxed);
        }
        engine.shared.obs.wal_recoveries.inc();
        engine.shared.obs.wal_gap_records.add(summary.gap_records);
        let kind = EventKind::WalRecovery {
            replayed: summary.replayed_records,
            gaps: summary.gap_records,
        };
        engine.shared.obs.events.push(None, kind);
        Ok((engine, summary))
    }

    /// Applies one replayed WAL record directly to the serving slots —
    /// bypassing the queues (the workers are idle during recovery) and the
    /// WAL itself (replay must not re-log what it reads).
    fn replay_record(&self, rec: &WalRecord, summary: &mut RecoverySummary) {
        match rec {
            WalRecord::Samples(samples) => {
                for s in samples {
                    summary.replayed_samples += 1;
                    let shard = &self.shared.shards[self.shard_for(s.stream)];
                    let mut table = shard.streams.lock().expect("shard stream table poisoned");
                    match table.get_live_mut(s.stream) {
                        Some(slot) => slot.feed(&Job {
                            stream: s.stream,
                            minute: s.minute,
                            value: s.value,
                            seq: 0,
                        }),
                        // Live workers drop unknown-stream samples too, so
                        // this reproduces the uninterrupted outcome; a
                        // *registered* stream can only be missing here
                        // downstream of a WAL gap — or downstream of a
                        // replayed eviction, which must not resurrect it.
                        None => summary.unknown_replayed += 1,
                    }
                }
            }
            WalRecord::Register { id, tuning } => {
                let mut cfg = StreamConfig {
                    train_size: tuning.train_size as usize,
                    qa_window: tuning.qa_window as usize,
                    qa_period: tuning.qa_period as usize,
                    qa_threshold: tuning.qa_threshold,
                    ..self.default_stream.clone()
                };
                cfg.resilience.f32_history = tuning.f32_history;
                // A collision with a checkpointed stream can only follow a
                // WAL gap; keep the richer checkpointed state.
                let _ = self.insert_stream(*id, &cfg);
            }
            WalRecord::Evict { id } => {
                summary.replayed_evicts += 1;
                let shard = &self.shared.shards[self.shard_for(*id)];
                shard.streams.lock().expect("shard stream table poisoned").remove(*id);
            }
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.shared.config
    }

    /// Shard serving `id` under this engine's seed and shard count.
    pub fn shard_for(&self, id: StreamId) -> usize {
        shard_of(self.shared.config.fleet_seed, id, self.shared.config.shards)
    }

    /// Registers a new stream with the engine's default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::DuplicateStream`] if `id` is already registered.
    pub fn register(&self, id: StreamId) -> Result<()> {
        let cfg = self.default_stream.clone();
        self.register_with(id, &cfg)
    }

    /// Registers a new stream with an explicit configuration. With
    /// durability on, the registration is WAL-logged before this returns.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::DuplicateStream`] if `id` is already
    /// registered, propagates stream-construction failures, and returns
    /// [`FleetError::Durability`] if the WAL append fails (the registration
    /// is rolled back).
    pub fn register_with(&self, id: StreamId, config: &StreamConfig) -> Result<()> {
        let _gate = self.gate_read();
        self.insert_stream(id, config)?;
        if let Some(d) = self.shared.durability.as_ref() {
            let tuning = RegisterTuning {
                train_size: config.train_size as u32,
                qa_window: config.qa_window as u32,
                qa_period: config.qa_period as u32,
                qa_threshold: config.qa_threshold,
                f32_history: config.resilience.f32_history,
            };
            if let Err(e) = d.store.append_register(id, &tuning) {
                // Roll back: an unlogged stream would vanish on recovery
                // while the caller believes it exists.
                let shard = &self.shared.shards[self.shard_for(id)];
                shard.streams.lock().expect("shard stream table poisoned").remove(id);
                self.shared.obs.wal_failures.inc();
                let kind = EventKind::WalAppendFailed { kind: 1 };
                self.shared.obs.events.push(Some(id), kind);
                return Err(e.into());
            }
            d.records_since_ckpt.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Builds and inserts one stream slot (no WAL traffic — shared by the
    /// logged register path and recovery replay).
    fn insert_stream(&self, id: StreamId, config: &StreamConfig) -> Result<()> {
        let mut guarded = config.build()?;
        guarded.attach_obs(self.shared.obs.larp.for_stream(id));
        guarded.attach_interner(Arc::clone(&self.shared.interner));
        guarded.online_mut().set_deferred_retrain(self.shared.retrain.is_some());
        let shard = &self.shared.shards[self.shard_for(id)];
        let mut streams = shard.streams.lock().expect("shard stream table poisoned");
        if !streams.insert(id, StreamSlot::new(guarded, 0)) {
            return Err(FleetError::DuplicateStream(id));
        }
        Ok(())
    }

    /// Inserts one deserialized stream (checkpoint restore / recovery),
    /// re-attaching observability and the shared PCA interner.
    fn insert_restored(&self, id: StreamId, mut guarded: GuardedLarp, next_minute: u64) {
        guarded.attach_obs(self.shared.obs.larp.for_stream(id));
        guarded.attach_interner(Arc::clone(&self.shared.interner));
        guarded.online_mut().set_deferred_retrain(self.shared.retrain.is_some());
        let shard = &self.shared.shards[self.shard_for(id)];
        let mut streams = shard.streams.lock().expect("shard stream table poisoned");
        streams.insert(id, StreamSlot::new(guarded, next_minute));
    }

    /// Evicts a stream, discarding its serving state. Samples still queued
    /// for it are dropped by the worker (counted as unknown). With
    /// durability on, the eviction is WAL-logged.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownStream`] if `id` is not registered and
    /// [`FleetError::Durability`] if the WAL append fails — the in-memory
    /// eviction already took effect, but recovery may resurrect the stream.
    pub fn evict(&self, id: StreamId) -> Result<()> {
        let _gate = self.gate_read();
        let shard = &self.shared.shards[self.shard_for(id)];
        let mut streams = shard.streams.lock().expect("shard stream table poisoned");
        let removed = streams.remove(id).ok_or(FleetError::UnknownStream(id))?;
        drop(streams);
        if matches!(removed, Removed::Hibernated(_)) {
            if let Some(spill) = self.shared.spill.as_ref() {
                spill.lock().expect("spill store poisoned").delete(id);
            }
        }
        self.shared.obs.evictions.inc();
        self.shared.obs.events.push(Some(id), EventKind::StreamEvicted { idle: false });
        if let Some(d) = self.shared.durability.as_ref() {
            if let Err(e) = d.append_evict(id) {
                self.shared.obs.wal_failures.inc();
                let kind = EventKind::WalAppendFailed { kind: 2 };
                self.shared.obs.events.push(Some(id), kind);
                return Err(e.into());
            }
            d.records_since_ckpt.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Holds the durability gate open for one ingest operation (no-op
    /// without durability). Checkpoints take the write side, so everything
    /// done under this guard lands either entirely before or entirely after
    /// a checkpoint's cut.
    fn gate_read(&self) -> Option<std::sync::RwLockReadGuard<'_, ()>> {
        self.shared.durability.as_ref().map(|d| d.gate.read().expect("durability gate poisoned"))
    }

    /// Appends accepted samples to the WAL (no-op without durability). A
    /// failed append marks the report: the samples are already enqueued and
    /// will be served, but are not durable until the next checkpoint.
    fn wal_append_samples(&self, samples: &[store::Sample], report: &mut PushReport) {
        let Some(d) = self.shared.durability.as_ref() else { return };
        if samples.is_empty() {
            return;
        }
        let t0 = Instant::now();
        match d.store.append_samples(samples) {
            Ok(info) => {
                let obs = &self.shared.obs;
                obs.wal_append_us.record(t0.elapsed().as_micros() as f64);
                obs.wal_records.inc();
                if info.fsynced {
                    obs.wal_fsyncs.inc();
                }
                if info.rotated {
                    obs.wal_rotations.inc();
                    // Rotation precedes the write, so the fresh segment
                    // starts at this record's sequence.
                    obs.events.push(None, EventKind::WalRotation { segment: info.seq });
                }
                d.records_since_ckpt.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                report.wal_failed = true;
                self.shared.obs.wal_failures.inc();
            }
        }
    }

    /// Whether `id` is currently registered (live or hibernated).
    pub fn contains(&self, id: StreamId) -> bool {
        let shard = &self.shared.shards[self.shard_for(id)];
        shard.streams.lock().expect("shard stream table poisoned").contains(id)
    }

    /// Number of registered streams (live + hibernated).
    pub fn stream_count(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| s.streams.lock().expect("shard stream table poisoned").len())
            .sum()
    }

    /// Pushes one auto-clocked sample. Convenience for
    /// [`push_batch`](Self::push_batch) with a single element.
    pub fn push(&self, id: StreamId, value: f64) -> PushReport {
        self.push_batch(&[(id, value)])
    }

    /// Pushes one sample with an explicit minute timestamp (for replaying
    /// recorded or fault-injected traces whose gaps matter).
    pub fn push_at(&self, id: StreamId, minute: u64, value: f64) -> PushReport {
        let _gate = self.gate_read();
        let seq = self.shared.push_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let job = Job { stream: id, minute: Some(minute), value, seq };
        let mut report = PushReport::default();
        let started = Instant::now();
        self.enqueue(self.shard_for(id), &[job], &mut report, None);
        if report.accepted > 0 {
            let sample = store::Sample { stream: id, minute: Some(minute), value };
            self.wal_append_samples(&[sample], &mut report);
        }
        self.account(report, started);
        report
    }

    /// Pushes a batch of auto-clocked samples, fanning them out to the
    /// owning shards (one queue-lock acquisition per shard per batch).
    ///
    /// Samples for the same stream are enqueued in slice order, and each
    /// shard's worker preserves queue order, so per-stream processing order
    /// equals push order regardless of shard count.
    pub fn push_batch(&self, batch: &[(StreamId, f64)]) -> PushReport {
        // The per-shard grouping buffers persist per producer thread: a
        // steady producer pays the grouping allocation once, not per batch.
        thread_local! {
            static GROUPED: std::cell::RefCell<Vec<Vec<Job>>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        GROUPED.with(|cell| {
            let _gate = self.gate_read();
            let mut grouped = cell.borrow_mut();
            let shards = self.shared.config.shards;
            if grouped.len() < shards {
                grouped.resize_with(shards, Vec::new);
            }
            for g in grouped.iter_mut() {
                g.clear();
            }
            for &(id, value) in batch {
                let seq = self.shared.push_seq.fetch_add(1, Ordering::Relaxed) + 1;
                grouped[self.shard_for(id)].push(Job { stream: id, minute: None, value, seq });
            }
            let mut report = PushReport::default();
            let started = Instant::now();
            let mut wal_buf: Option<Vec<store::Sample>> =
                self.shared.durability.as_ref().map(|_| Vec::with_capacity(batch.len()));
            for (shard, jobs) in grouped.iter().enumerate().take(shards) {
                if !jobs.is_empty() {
                    self.enqueue(shard, jobs, &mut report, wal_buf.as_mut());
                }
            }
            if let Some(buf) = &wal_buf {
                self.wal_append_samples(buf, &mut report);
            }
            self.account(report, started);
            report
        })
    }

    /// Enqueues jobs on one shard, applying the backpressure policy per
    /// sample. Holds the queue lock once for the whole group.
    ///
    /// Backpressure events are traced once per call with the sample counts,
    /// not once per sample — overflow is bursty and a per-sample event would
    /// flood the ring exactly when it matters most.
    fn enqueue(
        &self,
        shard: usize,
        jobs: &[Job],
        report: &mut PushReport,
        mut wal: Option<&mut Vec<store::Sample>>,
    ) {
        let s = &self.shared.shards[shard];
        let cap = self.shared.config.queue_capacity;
        let policy = self.shared.config.backpressure;
        let before = *report;
        let mut q = s.queue.lock().expect("shard queue poisoned");
        for job in jobs {
            if q.items.len() >= cap {
                match policy {
                    BackpressurePolicy::RejectNew => {
                        report.rejected += 1;
                        continue;
                    }
                    BackpressurePolicy::DropOldest => {
                        q.items.pop_front();
                        report.dropped += 1;
                    }
                    BackpressurePolicy::Block => {
                        while q.items.len() >= cap && !q.shutdown {
                            // The queue is full, so the worker has work: wake
                            // it before sleeping, or it may still be parked in
                            // its own not_empty wait (this call's notify only
                            // comes after the whole group is enqueued) and
                            // producer and worker deadlock waiting on each
                            // other.
                            s.not_empty.notify_one();
                            q = s.space.wait(q).expect("shard queue poisoned");
                        }
                        if q.shutdown {
                            report.rejected += 1;
                            continue;
                        }
                    }
                }
            }
            q.items.push_back(*job);
            report.accepted += 1;
            if let Some(w) = wal.as_deref_mut() {
                w.push(store::Sample { stream: job.stream, minute: job.minute, value: job.value });
            }
        }
        s.queue_depth.set(q.items.len() as f64);
        drop(q);
        s.not_empty.notify_one();
        let dropped = report.dropped - before.dropped;
        if dropped > 0 {
            let kind = EventKind::BackpressureDrop { shard: shard as u64, count: dropped };
            self.shared.obs.events.push(None, kind);
        }
        let rejected = report.rejected - before.rejected;
        if rejected > 0 {
            let kind = EventKind::BackpressureReject { shard: shard as u64, count: rejected };
            self.shared.obs.events.push(None, kind);
        }
    }

    fn account(&self, report: PushReport, started: Instant) {
        let obs = &self.shared.obs;
        obs.enqueue_us.record(started.elapsed().as_micros() as f64);
        obs.push_accepted.add(report.accepted);
        obs.push_rejected.add(report.rejected);
        obs.push_dropped.add(report.dropped);
    }

    /// Blocks until every queued sample has been fully processed.
    pub fn flush(&self) {
        self.shared.flush_shards();
    }

    /// Drains every queue to the serving state *and* the durable store, then
    /// fsyncs the WAL: after this returns, every acked sample survives even
    /// power loss. The graceful-shutdown hook — netserve's drain path calls
    /// it before joining. Without durability this is just
    /// [`flush`](Self::flush).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Durability`] if the fsync fails.
    pub fn flush_durable(&self) -> Result<()> {
        self.flush();
        if let Some(d) = self.shared.durability.as_ref() {
            d.store.flush();
            d.store.sync()?;
        }
        Ok(())
    }

    /// Takes a durable checkpoint: quiesces producers, drains the queues,
    /// writes the fleet checkpoint and archive sidecar atomically, then
    /// truncates the WAL segments the checkpoint covers. Returns the covered
    /// WAL sequence. Recovery time is proportional to the WAL tail past the
    /// last checkpoint, so checkpoint cadence bounds restart latency.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] without durability and
    /// [`FleetError::Durability`] on store failures.
    pub fn checkpoint_durable(&self) -> Result<u64> {
        checkpoint_durable_inner(&self.shared)
    }

    /// Durable-store counters (WAL records, fsyncs, compactions, …), or
    /// `None` without durability.
    pub fn store_stats(&self) -> Option<store::StoreStats> {
        self.shared.durability.as_ref().map(|d| d.store.stats())
    }

    /// Raw retained samples of `stream` in `[from, to]` minutes from the
    /// durable store's memtable, or `None` without durability. Call
    /// [`flush`](Self::flush) first for an up-to-date view (the store
    /// compacts in the background).
    pub fn trace_raw(&self, stream: StreamId, from: u64, to: u64) -> Option<Vec<(u64, f64)>> {
        self.shared.durability.as_ref().map(|d| {
            d.store.flush();
            d.store.query_raw(stream, from, to)
        })
    }

    /// Consolidated RRD rows of `stream` for `[start, end)` minutes at
    /// `interval` from the durable store's tier cascade (vmkusage layout:
    /// 1-min×2h → 5-min×24h → 30-min×7d), or `None` without durability or
    /// when no tier retains the range.
    pub fn trace_archive(
        &self,
        stream: StreamId,
        start_minute: u64,
        end_minute: u64,
        interval_minutes: u64,
    ) -> Option<Vec<f64>> {
        self.shared.durability.as_ref().and_then(|d| {
            d.store.flush();
            d.store.query_archive(stream, start_minute, end_minute, interval_minutes)
        })
    }

    /// Evicts streams that have not received a sample (or an info probe —
    /// see [`stream_info`](Self::stream_info)) within the last `max_idle`
    /// push attempts (engine-wide), returning the evicted ids. Hibernated
    /// streams expire on the same clock; their spill blobs are dropped.
    ///
    /// Flushes first so queued samples count as activity. Streams registered
    /// but never pushed have an activity mark of zero and expire like any
    /// other idle stream.
    ///
    /// A failed WAL eviction append is *not* silent: it counts in
    /// `fleet_wal_failures_total` and traces a `wal_append_failed` event —
    /// recovery will resurrect that stream, and an operator who never learns
    /// of it gets a fleet that disagrees with its log.
    pub fn sweep_idle(&self, max_idle: u64) -> Vec<StreamId> {
        let _gate = self.gate_read();
        self.flush();
        let now = self.shared.push_seq.load(Ordering::Relaxed);
        let mut evicted = Vec::new();
        for s in &self.shared.shards {
            let mut streams = s.streams.lock().expect("shard stream table poisoned");
            let idle: Vec<StreamId> = streams
                .iter_live()
                .map(|(id, slot)| (id, slot.last_seq))
                .chain(streams.iter_tombs().map(|(id, tomb)| (id, tomb.last_seq)))
                .filter(|&(_, last)| now.saturating_sub(last) > max_idle)
                .map(|(id, _)| id)
                .collect();
            for id in idle {
                if let Some(Removed::Hibernated(_)) = streams.remove(id) {
                    if let Some(spill) = self.shared.spill.as_ref() {
                        spill.lock().expect("spill store poisoned").delete(id);
                    }
                }
                evicted.push(id);
            }
        }
        evicted.sort_unstable();
        for &id in &evicted {
            self.shared.obs.evictions.inc();
            self.shared.obs.events.push(Some(id), EventKind::StreamEvicted { idle: true });
            if let Some(d) = self.shared.durability.as_ref() {
                match d.append_evict(id) {
                    Ok(_) => {
                        d.records_since_ckpt.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.shared.obs.wal_failures.inc();
                        let kind = EventKind::WalAppendFailed { kind: 2 };
                        self.shared.obs.events.push(Some(id), kind);
                    }
                }
            }
        }
        evicted
    }

    /// Spills streams idle for more than `max_idle` push attempts to the
    /// hibernation store, leaving only a small resident tombstone. The next
    /// sample for a hibernated stream restores its serving stack
    /// bit-identically; [`stream_info`](Self::stream_info) answers from the
    /// tombstone without waking it. Returns the newly hibernated ids.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] without
    /// [`FleetConfig::spill_dir`] and [`FleetError::Durability`] if a spill
    /// write fails — the affected stream stays live (losing serving state to
    /// save memory is never the right trade).
    pub fn hibernate_idle(&self, max_idle: u64) -> Result<Vec<StreamId>> {
        hibernate_idle_inner(&self.shared, max_idle)
    }

    /// Flushes, then serializes one stream's complete serving state for
    /// migration to another engine: `(next_minute, snapshot_bytes)`. The
    /// bytes are the same LARPSNAP encoding checkpoints inline, so
    /// [`import_stream`](Self::import_stream) restores them bit-identically.
    /// Hibernated streams export their spill blob directly (a blob *is* a
    /// snapshot) without waking.
    ///
    /// The stream stays registered here — the caller owns eviction timing
    /// (a migration fence evicts only after the destination acknowledges).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownStream`] if `id` is not registered and
    /// [`FleetError::Checkpoint`] if a hibernated stream's spill blob is
    /// missing or unreadable.
    pub fn export_stream(&self, id: StreamId) -> Result<(u64, Vec<u8>)> {
        self.flush();
        let shard = &self.shared.shards[self.shard_for(id)];
        let mut table = shard.streams.lock().expect("shard stream table poisoned");
        let (next_minute, bytes) = if let Some(slot) = table.get_live_mut(id) {
            (slot.next_minute, slot.guarded.to_snapshot_bytes())
        } else {
            let tomb = table.tombstone(id).ok_or(FleetError::UnknownStream(id))?;
            let next_minute = tomb.next_minute;
            let spill =
                self.shared.spill.as_ref().expect("hibernated stream implies a spill store");
            let bytes = match spill.lock().expect("spill store poisoned").get(id) {
                Ok(Some(b)) => b,
                Ok(None) => {
                    return Err(FleetError::Checkpoint(format!(
                        "hibernated stream {id} has no spill blob"
                    )))
                }
                Err(e) => {
                    return Err(FleetError::Checkpoint(format!(
                        "hibernated stream {id}: spill read failed: {e}"
                    )))
                }
            };
            (next_minute, bytes)
        };
        drop(table);
        self.shared.obs.stream_exports.inc();
        let kind = EventKind::StreamExported { bytes: bytes.len() as u64 };
        self.shared.obs.events.push(Some(id), kind);
        Ok((next_minute, bytes))
    }

    /// Restores one exported stream bit-identically (the migration receive
    /// path): the inverse of [`export_stream`](Self::export_stream).
    ///
    /// With durability on, a registration record is WAL-logged so recovery
    /// at least knows the stream exists — but the imported *model state* is
    /// only durable once the next checkpoint covers it (a crash in between
    /// recovers a fresh stream with default tuning). Cluster nodes take a
    /// durable checkpoint right after a migration or failover wave to close
    /// that window.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::DuplicateStream`] if `id` is already
    /// registered, [`FleetError::Checkpoint`] for undecodable snapshot
    /// bytes, and [`FleetError::Durability`] if the WAL append fails (the
    /// import is rolled back).
    pub fn import_stream(&self, id: StreamId, next_minute: u64, bytes: &[u8]) -> Result<()> {
        let _gate = self.gate_read();
        if self.contains(id) {
            return Err(FleetError::DuplicateStream(id));
        }
        let guarded = GuardedLarp::from_snapshot_bytes(bytes)
            .map_err(|e| FleetError::Checkpoint(format!("stream {id}: snapshot decode: {e}")))?;
        let tuning = RegisterTuning {
            train_size: self.default_stream.train_size as u32,
            qa_window: self.default_stream.qa_window as u32,
            qa_period: self.default_stream.qa_period as u32,
            qa_threshold: guarded.online().qa().threshold(),
            f32_history: guarded.online().resilience().f32_history,
        };
        self.insert_restored(id, guarded, next_minute);
        if let Some(d) = self.shared.durability.as_ref() {
            if let Err(e) = d.store.append_register(id, &tuning) {
                let shard = &self.shared.shards[self.shard_for(id)];
                shard.streams.lock().expect("shard stream table poisoned").remove(id);
                self.shared.obs.wal_failures.inc();
                let kind = EventKind::WalAppendFailed { kind: 1 };
                self.shared.obs.events.push(Some(id), kind);
                return Err(e.into());
            }
            d.records_since_ckpt.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.obs.stream_imports.inc();
        let kind = EventKind::StreamImported { bytes: bytes.len() as u64 };
        self.shared.obs.events.push(Some(id), kind);
        Ok(())
    }

    /// Snapshots every stream whose state advanced since the caller's last
    /// export — the warm-standby feeder's delta source. `seen` is the
    /// caller's cursor (stream → `next_minute` at its last export), updated
    /// in place; entries for streams that no longer exist are pruned. The
    /// first call with an empty cursor exports everything.
    ///
    /// Returns `(covered_seq, deltas)` where `covered_seq` is the highest
    /// WAL sequence the snapshots cover (0 without durability): a standby
    /// holding these snapshots needs only WAL records *after* it. Producers
    /// are quiesced for the cut (durability gate + queue drain), so every
    /// snapshot and `covered_seq` describe one consistent state.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] if a hibernated stream's spill
    /// blob is missing or unreadable.
    #[allow(clippy::type_complexity)]
    pub fn export_dirty(
        &self,
        seen: &mut HashMap<StreamId, u64>,
    ) -> Result<(u64, Vec<(StreamId, u64, Vec<u8>)>)> {
        let _gate = self
            .shared
            .durability
            .as_ref()
            .map(|d| d.gate.write().expect("durability gate poisoned"));
        self.shared.flush_shards();
        let covered_seq = self
            .shared
            .durability
            .as_ref()
            .map(|d| d.store.next_seq().saturating_sub(1))
            .unwrap_or(0);
        let mut deltas = Vec::new();
        let mut alive: HashSet<StreamId> = HashSet::new();
        for s in &self.shared.shards {
            let table = s.streams.lock().expect("shard stream table poisoned");
            for (id, slot) in table.iter_live() {
                alive.insert(id);
                if seen.get(&id) != Some(&slot.next_minute) {
                    deltas.push((id, slot.next_minute, slot.guarded.to_snapshot_bytes()));
                }
            }
            for (id, tomb) in table.iter_tombs() {
                alive.insert(id);
                if seen.get(&id) == Some(&tomb.next_minute) {
                    continue;
                }
                let spill =
                    self.shared.spill.as_ref().expect("hibernated stream implies a spill store");
                match spill.lock().expect("spill store poisoned").get(id) {
                    Ok(Some(bytes)) => deltas.push((id, tomb.next_minute, bytes)),
                    Ok(None) => {
                        return Err(FleetError::Checkpoint(format!(
                            "hibernated stream {id} has no spill blob"
                        )))
                    }
                    Err(e) => {
                        return Err(FleetError::Checkpoint(format!(
                            "hibernated stream {id}: spill read failed: {e}"
                        )))
                    }
                }
            }
        }
        deltas.sort_unstable_by_key(|(id, _, _)| *id);
        seen.retain(|id, _| alive.contains(id));
        for (id, next_minute, _) in &deltas {
            seen.insert(*id, *next_minute);
        }
        Ok((covered_seq, deltas))
    }

    /// The directory holding this engine's WAL segments, when durability is
    /// on — the path a warm-standby feeder tails with [`store::read_tail`]
    /// and a failover heir scans after the owner dies.
    pub fn wal_dir(&self) -> Option<std::path::PathBuf> {
        self.shared.durability.as_ref().map(|d| d.config.dir.clone())
    }

    /// Highest WAL sequence assigned so far (0 fresh or without durability).
    pub fn wal_last_seq(&self) -> u64 {
        self.shared.durability.as_ref().map(|d| d.store.next_seq().saturating_sub(1)).unwrap_or(0)
    }

    /// A point-in-time view of one stream. Hibernated streams answer from
    /// their resident tombstone — an info probe never forces a wake.
    ///
    /// Reading counts as activity: the probe refreshes the stream's idle
    /// clock, so a predict-only consumer polling forecasts does not lose its
    /// stream to [`sweep_idle`](Self::sweep_idle) mid-use.
    ///
    /// Call [`flush`](Self::flush) first for an up-to-date view.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownStream`] if `id` is not registered.
    pub fn stream_info(&self, id: StreamId) -> Result<StreamInfo> {
        let shard = self.shard_for(id);
        let now = self.shared.push_seq.load(Ordering::Relaxed);
        let mut streams =
            self.shared.shards[shard].streams.lock().expect("shard stream table poisoned");
        if let Some(slot) = streams.get_live_mut(id) {
            slot.last_seq = slot.last_seq.max(now);
            return Ok(StreamInfo {
                id,
                shard,
                steps: slot.steps,
                forecasts: slot.forecasts,
                next_minute: slot.next_minute,
                health: slot.last_health,
                last_forecast: slot.last_forecast,
                retrains: slot.guarded.online().retrain_count(),
            });
        }
        let tomb = streams.tombstone_mut(id).ok_or(FleetError::UnknownStream(id))?;
        tomb.last_seq = tomb.last_seq.max(now);
        Ok(StreamInfo {
            id,
            shard,
            steps: tomb.steps,
            forecasts: tomb.forecasts,
            next_minute: tomb.next_minute,
            health: tomb.last_health,
            last_forecast: tomb.last_forecast,
            retrains: tomb.retrains,
        })
    }

    /// Aggregates the fleet health rollup. Does not flush; queue depths
    /// reflect in-flight work.
    pub fn health(&self) -> FleetHealth {
        let mut health = FleetHealth {
            pushes: PushReport {
                accepted: self.shared.obs.push_accepted.get(),
                rejected: self.shared.obs.push_rejected.get(),
                dropped: self.shared.obs.push_dropped.get(),
                wal_failed: self.shared.obs.wal_failures.get() > 0,
            },
            ..FleetHealth::default()
        };
        for (i, s) in self.shared.shards.iter().enumerate() {
            let queue_depth = s.queue.lock().expect("shard queue poisoned").items.len();
            let streams = s.streams.lock().expect("shard stream table poisoned");
            let mut sh = ShardHealth {
                shard: i,
                queue_depth,
                streams: streams.len(),
                hibernated: streams.hibernated_len(),
                unknown_dropped: s.unknown_dropped.get(),
                ..ShardHealth::default()
            };
            for (_, slot) in streams.iter_live() {
                if slot.last_health != HealthState::Healthy {
                    sh.degraded_streams += 1;
                }
                let online = slot.guarded.online();
                if !online.quarantined().is_empty() {
                    sh.quarantined_streams += 1;
                }
                health.steps += slot.steps;
                health.forecasts += slot.forecasts;
                health.nonfinite_forecasts += slot.nonfinite;
                health.retrains += online.retrain_count() as u64;
                merge_counters(&mut health.counters, online.counters());
            }
            for (_, tomb) in streams.iter_tombs() {
                if tomb.last_health != HealthState::Healthy {
                    sh.degraded_streams += 1;
                }
                health.steps += tomb.steps;
                health.forecasts += tomb.forecasts;
                health.nonfinite_forecasts += tomb.nonfinite;
                health.retrains += tomb.retrains as u64;
                // Fault counters travel inside the spilled snapshot and
                // rejoin the rollup when the stream wakes.
            }
            health.streams += sh.streams;
            health.hibernated += sh.hibernated;
            health.shards.push(sh);
        }
        health
    }

    /// Fleet-wide memory accounting: what every stream's serving state costs
    /// resident, with interned PCA bases deduplicated (DESIGN.md §11). Call
    /// [`flush`](Self::flush) first for a settled view.
    pub fn mem_report(&self) -> FleetMemReport {
        let mut report = FleetMemReport::default();
        let mut seen_bases = HashSet::new();
        for s in &self.shared.shards {
            let table = s.streams.lock().expect("shard stream table poisoned");
            report.live_streams += table.live_len();
            report.hibernated_streams += table.hibernated_len();
            report.table_bytes += table.heap_bytes();
            for (_, slot) in table.iter_live() {
                report.stream.accumulate(&slot.guarded.mem_report());
                if let Some(pca) = slot.guarded.pca_shared() {
                    if seen_bases.insert(Arc::as_ptr(pca) as usize) {
                        report.pca_unique_bytes += pca.heap_bytes();
                    }
                    report.pca_handles += 1;
                }
            }
        }
        if let Some(spill) = self.shared.spill.as_ref() {
            let blob = spill.lock().expect("spill store poisoned");
            report.spill_live_bytes = blob.live_bytes();
            report.spill_dead_bytes = blob.dead_bytes();
        }
        report.resident_bytes = process_resident_bytes();
        report
    }

    /// Test hook: make the next WAL eviction/registration append fail as if
    /// the store errored. Returns `false` (and arms nothing) without
    /// durability.
    #[doc(hidden)]
    pub fn debug_fail_next_wal_append(&self) -> bool {
        match self.shared.durability.as_ref() {
            Some(d) => {
                d.fail_next_append.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Flushes, then serializes every stream's full serving state —
    /// hibernated streams included (their spill blobs are inlined, so the
    /// bytes are independent of which streams happen to be cold).
    ///
    /// The bytes depend only on the fleet's logical state (streams are sorted
    /// by id), not on the shard count, so a checkpoint taken on 8 shards
    /// restores cleanly onto 2 — see [`restore`](Self::restore).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] if a hibernated stream's spill
    /// blob is missing or unreadable.
    pub fn checkpoint(&self) -> Result<Vec<u8>> {
        self.flush();
        let (bytes, streams) = self.shared.checkpoint_payload()?;
        self.shared.obs.checkpoints.inc();
        let kind = EventKind::CheckpointSave { streams, bytes: bytes.len() as u64 };
        self.shared.obs.events.push(None, kind);
        Ok(bytes)
    }

    /// Warm-starts a fleet from checkpoint bytes: every stream resumes with
    /// its trained model, sanitizer memory, QA window and quarantine clocks
    /// intact — no retraining. `config` may use a different shard count than
    /// the checkpointing engine; streams are re-sharded by the pure hash.
    ///
    /// Per-stream serving tallies ([`StreamInfo::steps`] etc.) restart at
    /// zero; model-level state (retrain counts, fault counters) is preserved
    /// inside each stream's snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] for malformed bytes and
    /// [`FleetError::InvalidConfig`] for an invalid `config`.
    pub fn restore(config: FleetConfig, bytes: &[u8]) -> Result<Self> {
        let streams = checkpoint::decode(bytes)?;
        let engine = Self::new(config)?;
        let restored = streams.len() as u64;
        for st in streams {
            engine.insert_restored(st.id, st.guarded, st.next_minute);
        }
        engine.shared.obs.restores.inc();
        let kind = EventKind::CheckpointRestore { streams: restored, bytes: bytes.len() as u64 };
        engine.shared.obs.events.push(None, kind);
        Ok(engine)
    }

    /// The metric registry backing this engine's instrumentation. Exposes
    /// the fleet-wide `fleet_*` and `larp_*` metric sets (DESIGN.md §5).
    pub fn registry(&self) -> &Registry {
        &self.shared.obs.registry
    }

    /// The engine's bounded event ring (selector decisions, quarantine and
    /// backpressure transitions, checkpoints, evictions).
    pub fn events(&self) -> &EventRing {
        &self.shared.obs.events
    }

    /// Prometheus text exposition of the current metrics plus the ring's
    /// meta-counters.
    pub fn prometheus(&self) -> String {
        expo::prometheus(&self.shared.obs.registry, Some(&self.shared.obs.events))
    }

    /// JSON dump of the current metrics and the retained events.
    pub fn obs_json(&self) -> String {
        expo::json(&self.shared.obs.registry, Some(&self.shared.obs.events))
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        // Stop the background maintenance thread first so no checkpoint or
        // hibernation sweep races the worker shutdown.
        if let Some(handle) = self.maintenance.take() {
            self.shared.maint_stop.store(true, Ordering::Relaxed);
            handle.thread().unpark();
            let _ = handle.join();
        }
        for s in &self.shared.shards {
            let mut q = s.queue.lock().expect("shard queue poisoned");
            q.shutdown = true;
            drop(q);
            s.not_empty.notify_all();
            s.space.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Stop the retrain pool after the shard workers are gone: a worker
        // blocked in a cell's resolve is waiting on a fit a pool thread has
        // already taken, and workers finish taken fits before exiting. (The
        // steal path makes even the reverse order safe, but this keeps the
        // dependency one-directional.)
        if let Some(pool) = &self.shared.retrain {
            pool.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet(shards: usize) -> FleetEngine {
        FleetEngine::new(FleetConfig { shards, ..FleetConfig::default() }).unwrap()
    }

    #[test]
    fn register_push_flush_and_inspect() {
        let engine = small_fleet(2);
        engine.register(7).unwrap();
        engine.register(8).unwrap();
        assert_eq!(engine.stream_count(), 2);

        let mut report = PushReport::default();
        for m in 0..120u64 {
            let v = 50.0 + (m as f64 * 0.3).sin() * 8.0;
            report.merge(engine.push_batch(&[(7, v), (8, v + 5.0)]));
        }
        engine.flush();
        assert_eq!(report.accepted, 240);
        assert_eq!(report.rejected + report.dropped, 0);

        for id in [7u64, 8] {
            let info = engine.stream_info(id).unwrap();
            assert_eq!(info.steps, 120);
            assert_eq!(info.next_minute, 120);
            assert!(info.retrains >= 1, "stream {id} should have trained");
            assert!(info.forecasts > 0);
            assert!(info.last_forecast.unwrap().is_finite());
        }

        let health = engine.health();
        assert_eq!(health.streams, 2);
        assert_eq!(health.steps, 240);
        assert_eq!(health.nonfinite_forecasts, 0);
        assert_eq!(health.pushes.accepted, 240);
    }

    #[test]
    fn lifecycle_errors() {
        let engine = small_fleet(1);
        engine.register(1).unwrap();
        assert_eq!(engine.register(1), Err(FleetError::DuplicateStream(1)));
        assert_eq!(engine.evict(2), Err(FleetError::UnknownStream(2)));
        assert_eq!(engine.stream_info(2), Err(FleetError::UnknownStream(2)));
        engine.evict(1).unwrap();
        assert!(!engine.contains(1));
        // Re-registering after eviction is fine.
        engine.register(1).unwrap();
    }

    #[test]
    fn unknown_stream_samples_are_counted_not_lost_silently() {
        let engine = small_fleet(1);
        engine.push_batch(&[(99, 1.0), (99, 2.0)]);
        engine.flush();
        assert_eq!(engine.health().unknown_dropped(), 2);
    }

    #[test]
    fn reject_new_backpressure() {
        // No registered streams, so the worker drains instantly; stall it by
        // never starting it: use capacity 2 and push 5 in one locked batch.
        let engine = FleetEngine::new(FleetConfig {
            shards: 1,
            queue_capacity: 2,
            backpressure: BackpressurePolicy::RejectNew,
            ..FleetConfig::default()
        })
        .unwrap();
        let report = engine.push_batch(&[(1, 1.0), (1, 2.0), (1, 3.0), (1, 4.0), (1, 5.0)]);
        // The worker may drain concurrently, so at least 2 are accepted and
        // accepted + rejected always accounts for all 5.
        assert_eq!(report.accepted + report.rejected, 5);
        assert!(report.accepted >= 2);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn drop_oldest_backpressure_keeps_freshest() {
        let engine = FleetEngine::new(FleetConfig {
            shards: 1,
            queue_capacity: 2,
            backpressure: BackpressurePolicy::DropOldest,
            ..FleetConfig::default()
        })
        .unwrap();
        let report = engine.push_batch(&[(1, 1.0), (1, 2.0), (1, 3.0), (1, 4.0), (1, 5.0)]);
        assert_eq!(report.accepted, 5);
        assert_eq!(report.rejected, 0);
        // Dropped count depends on how fast the worker drains; it can never
        // exceed the overflow.
        assert!(report.dropped <= 3);
    }

    #[test]
    fn block_backpressure_is_lossless() {
        let engine = FleetEngine::new(FleetConfig {
            shards: 1,
            queue_capacity: 4,
            backpressure: BackpressurePolicy::Block,
            ..FleetConfig::default()
        })
        .unwrap();
        engine.register(1).unwrap();
        let mut report = PushReport::default();
        for m in 0..200u64 {
            report.merge(engine.push(1, 40.0 + (m as f64 * 0.2).cos() * 3.0));
        }
        engine.flush();
        assert_eq!(report.accepted, 200);
        assert_eq!(report.rejected + report.dropped, 0);
        assert_eq!(engine.stream_info(1).unwrap().steps, 200);
    }

    #[test]
    fn block_backpressure_survives_batches_larger_than_the_queue() {
        // Regression: a single push_batch overfilling a queue used to
        // deadlock under `Block` — the producer parked on `space` before
        // the group's `not_empty` notify ever woke the worker. Concurrent
        // producers widen the window, so use two.
        let engine = std::sync::Arc::new(
            FleetEngine::new(FleetConfig {
                shards: 2,
                queue_capacity: 8,
                backpressure: BackpressurePolicy::Block,
                ..FleetConfig::default()
            })
            .unwrap(),
        );
        for id in 0..6 {
            engine.register(id).unwrap();
        }
        let batch: Vec<(StreamId, f64)> =
            (0..500).map(|i| (i % 6, 40.0 + (i as f64 * 0.01).sin())).collect();
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let batch = batch.clone();
                std::thread::spawn(move || engine.push_batch(&batch))
            })
            .collect();
        let mut report = PushReport::default();
        for p in producers {
            report.merge(p.join().expect("producer must not deadlock"));
        }
        engine.flush();
        assert_eq!(report.accepted, 1000);
        assert_eq!(report.rejected + report.dropped, 0);
        assert_eq!(engine.health().steps, 1000);
    }

    #[test]
    fn single_batch_overflow_counts_are_exact() {
        // `enqueue` holds the shard's queue lock for the whole batch, so one
        // push_batch against one shard sees deterministic policy outcomes:
        // the worker cannot drain mid-batch. Capacity 2, 5 samples.
        let batch: Vec<(StreamId, f64)> = (0..5).map(|i| (1u64, i as f64)).collect();

        let reject = FleetEngine::new(FleetConfig {
            shards: 1,
            queue_capacity: 2,
            backpressure: BackpressurePolicy::RejectNew,
            ..FleetConfig::default()
        })
        .unwrap();
        let r = reject.push_batch(&batch);
        assert_eq!((r.accepted, r.rejected, r.dropped), (2, 3, 0));
        reject.flush();
        let h = reject.health();
        // Exactly-once: the engine-wide counters equal the per-call report,
        // and every accepted sample reached a worker (here: all unroutable).
        assert_eq!(h.pushes, r);
        assert_eq!(h.unknown_dropped(), 2);
        let events = reject.events().recent();
        assert!(
            events
                .iter()
                .any(|e| e.kind == obs::EventKind::BackpressureReject { shard: 0, count: 3 }),
            "one reject event with the per-call count: {events:?}"
        );

        let drop_oldest = FleetEngine::new(FleetConfig {
            shards: 1,
            queue_capacity: 2,
            backpressure: BackpressurePolicy::DropOldest,
            ..FleetConfig::default()
        })
        .unwrap();
        let r = drop_oldest.push_batch(&batch);
        assert_eq!((r.accepted, r.rejected, r.dropped), (5, 0, 3));
        drop_oldest.flush();
        let h = drop_oldest.health();
        assert_eq!(h.pushes, r);
        // accepted = enqueued, not retained: 3 of the 5 were evicted before
        // a worker saw them, so only 2 reached the unknown-stream counter.
        assert_eq!(h.unknown_dropped(), 2);
        assert!(drop_oldest
            .events()
            .recent()
            .iter()
            .any(|e| e.kind == obs::EventKind::BackpressureDrop { shard: 0, count: 3 }));
    }

    #[test]
    fn sweep_idle_evicts_only_stale_streams() {
        let engine = small_fleet(2);
        engine.register(1).unwrap();
        engine.register(2).unwrap();
        // Stream 1 gets traffic; stream 2 stays idle.
        for m in 0..50u64 {
            engine.push(1, 30.0 + m as f64 * 0.1);
        }
        let evicted = engine.sweep_idle(25);
        assert_eq!(evicted, vec![2]);
        assert!(engine.contains(1));
        assert!(!engine.contains(2));
        // A generous horizon evicts nothing.
        assert!(engine.sweep_idle(u64::MAX).is_empty());
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_allocating_path() {
        // The reuse_scratch knob trades allocation for none — never results.
        // Drive the same workload through both arms and compare every
        // stream's serving outcome exactly.
        let run = |reuse_scratch: bool| {
            let engine = FleetEngine::new(FleetConfig {
                shards: 2,
                backpressure: BackpressurePolicy::Block,
                reuse_scratch,
                ..FleetConfig::default()
            })
            .unwrap();
            for id in 0..6u64 {
                engine.register(id).unwrap();
            }
            for m in 0..120u64 {
                let batch: Vec<(StreamId, f64)> = (0..6)
                    .map(|id| (id, 40.0 + ((m * 7 + id) as f64 * 0.23).sin() * 9.0))
                    .collect();
                engine.push_batch(&batch);
            }
            engine.flush();
            (0..6).map(|id| engine.stream_info(id).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fleet-durable-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(dir: &std::path::Path, shards: usize) -> FleetConfig {
        FleetConfig {
            shards,
            backpressure: BackpressurePolicy::Block,
            durability: Some(DurabilityConfig::new(dir)),
            ..FleetConfig::default()
        }
    }

    /// Drives a deterministic workload; returns the per-stream infos.
    fn drive(engine: &FleetEngine, streams: u64, minutes: u64) -> Vec<StreamInfo> {
        for m in 0..minutes {
            let batch: Vec<(StreamId, f64)> = (0..streams)
                .map(|id| (id, 40.0 + ((m * 13 + id * 7) as f64 * 0.21).sin() * 9.0))
                .collect();
            engine.push_batch(&batch);
        }
        engine.flush();
        (0..streams).map(|id| engine.stream_info(id).unwrap()).collect()
    }

    #[test]
    fn durable_engine_logs_and_recovers_bit_identically() {
        let dir = temp_store_dir("roundtrip");
        let engine = FleetEngine::new(durable_config(&dir, 2)).unwrap();
        for id in 0..4u64 {
            engine.register(id).unwrap();
        }
        let before = drive(&engine, 4, 150);
        let report = engine.push(0, 41.5);
        assert!(!report.wal_failed);
        engine.flush();
        let before0 = engine.stream_info(0).unwrap();
        // Simulate a crash: drop without checkpointing.
        drop(engine);

        let (back, summary) =
            FleetEngine::recover(durable_config(&dir, 2), StreamConfig::default()).unwrap();
        assert!(summary.clean(), "clean log must recover cleanly: {summary:?}");
        assert_eq!(summary.checkpoint_seq, 0);
        assert_eq!(summary.replayed_samples, 4 * 150 + 1);
        back.flush();
        for (id, want) in before.iter().enumerate().skip(1) {
            assert_eq!(&back.stream_info(id as u64).unwrap(), want, "stream {id}");
        }
        assert_eq!(back.stream_info(0).unwrap(), before0);
        // The recovery event is visible.
        assert!(back
            .events()
            .recent()
            .iter()
            .any(|e| matches!(e.kind, obs::EventKind::WalRecovery { gaps: 0, .. })));
        drop(back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_checkpoint_truncates_and_recovery_replays_only_the_tail() {
        let dir = temp_store_dir("ckpt");
        let engine = FleetEngine::new(durable_config(&dir, 2)).unwrap();
        for id in 0..3u64 {
            engine.register(id).unwrap();
        }
        drive(&engine, 3, 100);
        let seq = engine.checkpoint_durable().unwrap();
        assert_eq!(seq, 3 + 100, "3 register records + 100 batch records");
        drive(&engine, 3, 20);
        let expected = drive(&engine, 3, 0);
        drop(engine);

        let (back, summary) =
            FleetEngine::recover(durable_config(&dir, 2), StreamConfig::default()).unwrap();
        assert_eq!(summary.checkpoint_seq, seq);
        assert_eq!(summary.checkpoint_streams, 3);
        assert_eq!(summary.replayed_records, 20, "only the tail replays");
        assert!(summary.clean());
        back.flush();
        for id in 0..3u64 {
            let got = back.stream_info(id).unwrap();
            let want = &expected[id as usize];
            // Steps/forecast tallies restart at a checkpoint restore, but the
            // serving outcome must match exactly.
            assert_eq!(got.next_minute, want.next_minute, "stream {id}");
            assert_eq!(got.last_forecast, want.last_forecast, "stream {id}");
            assert_eq!(got.health, want.health, "stream {id}");
        }
        // The tiered archive survived via the sidecar: a 5-minute query over
        // the full range answers.
        assert!(back.trace_archive(0, 0, 120, 5).is_some());
        drop(back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_onto_different_shard_count_is_bit_identical() {
        let dir = temp_store_dir("reshard");
        let engine = FleetEngine::new(durable_config(&dir, 4)).unwrap();
        for id in 0..6u64 {
            engine.register(id).unwrap();
        }
        drive(&engine, 6, 80);
        engine.checkpoint_durable().unwrap();
        drive(&engine, 6, 40);
        let want = drive(&engine, 6, 0);
        drop(engine);

        // Recover onto 1 shard: re-sharding composes with WAL replay.
        let (back, summary) =
            FleetEngine::recover(durable_config(&dir, 1), StreamConfig::default()).unwrap();
        assert!(summary.clean());
        back.flush();
        for id in 0..6u64 {
            let got = back.stream_info(id).unwrap();
            assert_eq!(got.next_minute, want[id as usize].next_minute, "stream {id}");
            assert_eq!(got.last_forecast, want[id as usize].last_forecast, "stream {id}");
        }
        drop(back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evictions_and_explicit_minutes_replay() {
        let dir = temp_store_dir("lifecycle");
        let engine = FleetEngine::new(durable_config(&dir, 2)).unwrap();
        engine.register(1).unwrap();
        engine.register(2).unwrap();
        for m in 0..60u64 {
            engine.push_at(1, m * 2, 30.0 + (m as f64 * 0.4).cos() * 5.0);
            engine.push(2, 55.0);
        }
        engine.evict(2).unwrap();
        engine.flush();
        let want = engine.stream_info(1).unwrap();
        drop(engine);

        let (back, summary) =
            FleetEngine::recover(durable_config(&dir, 2), StreamConfig::default()).unwrap();
        assert!(summary.clean());
        back.flush();
        assert_eq!(back.stream_info(1).unwrap(), want);
        assert!(!back.contains(2), "eviction must replay");
        drop(back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_durable_engine_refuses_an_occupied_dir() {
        let dir = temp_store_dir("occupied");
        let engine = FleetEngine::new(durable_config(&dir, 1)).unwrap();
        engine.register(1).unwrap();
        drop(engine);
        assert!(matches!(
            FleetEngine::new(durable_config(&dir, 1)),
            Err(FleetError::Durability(_))
        ));
        // recover() on a missing dir is also an error.
        let missing = temp_store_dir("missing");
        assert!(matches!(
            FleetEngine::recover(durable_config(&missing, 1), StreamConfig::default()),
            Err(FleetError::Durability(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpointer_fires_and_truncates() {
        let dir = temp_store_dir("auto");
        let mut config = durable_config(&dir, 1);
        if let Some(d) = config.durability.as_mut() {
            d.auto_checkpoint_records = 50;
        }
        let engine = FleetEngine::new(config).unwrap();
        engine.register(1).unwrap();
        for m in 0..200u64 {
            engine.push(1, 20.0 + m as f64 * 0.05);
        }
        engine.flush();
        // Wait (bounded) for the background checkpointer to land one.
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.shared.obs.checkpoints.get() == 0 {
            assert!(Instant::now() < deadline, "auto checkpoint never fired");
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(engine);
        let (back, summary) =
            FleetEngine::recover(durable_config(&dir, 1), StreamConfig::default()).unwrap();
        assert!(summary.checkpoint_seq > 0, "recovery starts from the auto checkpoint");
        assert!(summary.clean());
        drop(back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn push_seq_is_engine_wide() {
        let engine = small_fleet(4);
        for id in 0..8u64 {
            engine.register(id).unwrap();
        }
        for round in 0..10u64 {
            let batch: Vec<(StreamId, f64)> = (0..8).map(|id| (id, 20.0 + round as f64)).collect();
            engine.push_batch(&batch);
        }
        engine.flush();
        // All streams were active through the last batch: nothing expires at
        // a one-batch horizon.
        assert!(engine.sweep_idle(8).is_empty());
    }
}
