//! Fleet engine and per-stream configuration.

use larp::{GuardedLarp, IngestConfig, LarpConfig, OnlineLarp, QualityAssuror, ResilienceConfig};

use crate::{FleetError, Result};

/// What a shard does when a sample arrives and its queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Reject the new sample (the caller sees it in
    /// [`crate::PushReport::rejected`]). Freshness-preserving for the samples
    /// already queued; the default.
    #[default]
    RejectNew,
    /// Drop the oldest queued sample to make room. Latency-preserving: the
    /// queue always holds the freshest data.
    DropOldest,
    /// Block the pushing thread until the worker frees space. Lossless, at
    /// the cost of coupling producer latency to worker throughput.
    Block,
}

/// Engine-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of shards = number of worker threads. Stream→shard assignment
    /// is a pure hash, so results are deterministic given seed + shard count.
    pub shards: usize,
    /// Bounded capacity of each shard's ingest queue, in samples.
    pub queue_capacity: usize,
    /// Policy when a shard queue is full.
    pub backpressure: BackpressurePolicy,
    /// Seed for the shard-assignment hash (and, by convention, for the
    /// per-stream trace generators driving the fleet in tests and benches).
    pub fleet_seed: u64,
    /// Maximum samples a worker drains from its queue per lock acquisition.
    pub batch_drain: usize,
    /// Capacity of the engine's bounded event-trace ring
    /// ([`crate::FleetEngine::events`]); overflow evicts the oldest events
    /// and counts them.
    pub event_capacity: usize,
    /// Reuse one scratch arena per shard worker across every stream it
    /// serves, making the steady-state feed path allocation-free. `false`
    /// reverts to per-sample allocation — kept only as the control arm for
    /// A/B throughput measurement (`fleet_throughput --ab`).
    pub reuse_scratch: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            backpressure: BackpressurePolicy::RejectNew,
            fleet_seed: 2007,
            batch_drain: 64,
            event_capacity: 1024,
            reuse_scratch: true,
        }
    }
}

impl FleetConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for zero shards, capacity or
    /// drain size.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(FleetError::InvalidConfig("shards must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(FleetError::InvalidConfig("queue_capacity must be >= 1".into()));
        }
        if self.batch_drain == 0 {
            return Err(FleetError::InvalidConfig("batch_drain must be >= 1".into()));
        }
        if self.event_capacity == 0 {
            return Err(FleetError::InvalidConfig("event_capacity must be >= 1".into()));
        }
        Ok(())
    }
}

/// Per-stream serving configuration: everything needed to build one
/// [`GuardedLarp`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Ingestion sanitization policy.
    pub ingest: IngestConfig,
    /// LARPredictor configuration.
    pub larp: LarpConfig,
    /// Samples per (re)training window.
    pub train_size: usize,
    /// QA rolling-MSE retrain threshold (normalized units).
    pub qa_threshold: f64,
    /// QA audit window length.
    pub qa_window: usize,
    /// QA audit period.
    pub qa_period: usize,
    /// Fault-tolerance policy.
    pub resilience: ResilienceConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            ingest: IngestConfig::default(),
            larp: LarpConfig::default(),
            train_size: 40,
            qa_threshold: 2.0,
            qa_window: 8,
            qa_period: 4,
            resilience: ResilienceConfig::default(),
        }
    }
}

impl StreamConfig {
    /// Builds the guarded serving stack for one stream.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the larp layers.
    pub fn build(&self) -> Result<GuardedLarp> {
        let qa = QualityAssuror::new(self.qa_threshold, self.qa_window, self.qa_period)?;
        let online = OnlineLarp::with_resilience(
            self.larp.clone(),
            self.train_size,
            qa,
            self.resilience.clone(),
        )?;
        Ok(GuardedLarp::from_parts(self.ingest.clone(), online)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_build() {
        FleetConfig::default().validate().unwrap();
        StreamConfig::default().build().unwrap();
    }

    #[test]
    fn zero_values_rejected() {
        assert!(FleetConfig { shards: 0, ..FleetConfig::default() }.validate().is_err());
        assert!(FleetConfig { queue_capacity: 0, ..FleetConfig::default() }.validate().is_err());
        assert!(FleetConfig { batch_drain: 0, ..FleetConfig::default() }.validate().is_err());
        assert!(FleetConfig { event_capacity: 0, ..FleetConfig::default() }.validate().is_err());
    }

    #[test]
    fn bad_stream_config_propagates() {
        let bad = StreamConfig { train_size: 1, ..StreamConfig::default() };
        assert!(bad.build().is_err());
        let bad = StreamConfig { qa_threshold: -1.0, ..StreamConfig::default() };
        assert!(bad.build().is_err());
    }
}
