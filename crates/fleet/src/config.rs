//! Fleet engine and per-stream configuration.

use std::path::PathBuf;

use larp::{GuardedLarp, IngestConfig, LarpConfig, OnlineLarp, QualityAssuror, ResilienceConfig};
use store::FsyncPolicy;

use crate::{FleetError, Result};

/// What a shard does when a sample arrives and its queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Reject the new sample (the caller sees it in
    /// [`crate::PushReport::rejected`]). Freshness-preserving for the samples
    /// already queued; the default.
    #[default]
    RejectNew,
    /// Drop the oldest queued sample to make room. Latency-preserving: the
    /// queue always holds the freshest data.
    DropOldest,
    /// Block the pushing thread until the worker frees space. Lossless, at
    /// the cost of coupling producer latency to worker throughput.
    Block,
}

/// Durable-ingestion configuration: where the engine's trace store lives
/// and how aggressively it syncs.
///
/// With durability enabled every accepted push is appended to a write-ahead
/// log *before* the push call returns — the ack implies the sample is
/// recoverable. [`crate::FleetEngine::recover`] rebuilds the serving state
/// from the newest durable checkpoint plus the WAL tail.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Directory holding the WAL segments, archive sidecar, and checkpoint
    /// file. Created if missing; must not already hold a WAL when starting
    /// fresh (use [`crate::FleetEngine::recover`] for an existing one).
    pub dir: PathBuf,
    /// When the WAL fsyncs. The default (`OnRotate`) survives process
    /// crashes — `kill -9` loses nothing the OS accepted — but trades
    /// power-loss durability for append latency.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Keep WAL segments after a durable checkpoint covers them instead of
    /// deleting them (e.g. for offline replay or audits).
    pub retain_segments: bool,
    /// Raw samples retained per stream in the store's memtable.
    pub memtable_rows: usize,
    /// Take a durable checkpoint automatically after this many WAL records
    /// (0 disables the background checkpointer; call
    /// [`crate::FleetEngine::checkpoint_durable`] yourself).
    pub auto_checkpoint_records: u64,
}

impl DurabilityConfig {
    /// Durability under `dir` with default knobs (crash-safe `OnRotate`
    /// fsync, 8 MiB segments, manual checkpointing).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::OnRotate,
            segment_bytes: 8 << 20,
            retain_segments: false,
            memtable_rows: 256,
            auto_checkpoint_records: 0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for zero-sized knobs.
    pub fn validate(&self) -> Result<()> {
        if self.segment_bytes == 0 {
            return Err(FleetError::InvalidConfig("durability segment_bytes must be >= 1".into()));
        }
        if self.memtable_rows == 0 {
            return Err(FleetError::InvalidConfig("durability memtable_rows must be >= 1".into()));
        }
        Ok(())
    }
}

/// Engine-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of shards = number of worker threads. Stream→shard assignment
    /// is a pure hash, so results are deterministic given seed + shard count.
    pub shards: usize,
    /// Bounded capacity of each shard's ingest queue, in samples.
    pub queue_capacity: usize,
    /// Policy when a shard queue is full.
    pub backpressure: BackpressurePolicy,
    /// Seed for the shard-assignment hash (and, by convention, for the
    /// per-stream trace generators driving the fleet in tests and benches).
    pub fleet_seed: u64,
    /// Maximum samples a worker drains from its queue per lock acquisition.
    pub batch_drain: usize,
    /// Capacity of the engine's bounded event-trace ring
    /// ([`crate::FleetEngine::events`]); overflow evicts the oldest events
    /// and counts them.
    pub event_capacity: usize,
    /// Reuse one scratch arena per shard worker across every stream it
    /// serves, making the steady-state feed path allocation-free. `false`
    /// reverts to per-sample allocation — kept only as the control arm for
    /// A/B throughput measurement (`fleet_throughput --ab`).
    pub reuse_scratch: bool,
    /// Durable ingestion (WAL-before-ack + checkpoint/recovery). `None`
    /// keeps the engine purely in-memory, the previous behavior.
    pub durability: Option<DurabilityConfig>,
    /// Directory for the cold-stream hibernation spill file (DESIGN.md §11).
    /// When set, [`crate::FleetEngine::hibernate_idle`] can move idle
    /// streams' serving state out of memory; the next sample restores it
    /// bit-identically. The spill file is a cache: it never participates in
    /// recovery and is truncated on every engine start. `None` disables
    /// hibernation.
    pub spill_dir: Option<PathBuf>,
    /// Automatic hibernation policy: streams idle (no accepted push) for at
    /// least this long are hibernated by the engine's background maintenance
    /// thread, without any [`crate::FleetEngine::hibernate_idle`] calls from
    /// the application. Requires `spill_dir`. `None` (the default) keeps
    /// hibernation manual.
    pub auto_hibernate_idle: Option<std::time::Duration>,
    /// Worker threads in the off-worker retrain pool. `0` (the default)
    /// retrains inline on the shard worker, the previous behavior. With a
    /// pool, a shard worker arms a retrain request, keeps serving off the old
    /// model, and installs the fitted model before the stream's next sample —
    /// the forecast sequence is bit-identical either way (a test and
    /// `fleet_throughput --ab-retrain` pin this); only tail latency of pushes
    /// that land on a retrain step changes.
    pub retrain_threads: usize,
    /// Retrain fits slower than this (µs) bump `larp_slow_retrains_total`
    /// and emit a `slow_retrain` trace event.
    pub slow_retrain_us: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            backpressure: BackpressurePolicy::RejectNew,
            fleet_seed: 2007,
            batch_drain: 64,
            event_capacity: 1024,
            reuse_scratch: true,
            durability: None,
            spill_dir: None,
            auto_hibernate_idle: None,
            retrain_threads: 0,
            slow_retrain_us: larp::LarpObs::DEFAULT_SLOW_RETRAIN_US,
        }
    }
}

impl FleetConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for zero shards, capacity or
    /// drain size.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(FleetError::InvalidConfig("shards must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(FleetError::InvalidConfig("queue_capacity must be >= 1".into()));
        }
        if self.batch_drain == 0 {
            return Err(FleetError::InvalidConfig("batch_drain must be >= 1".into()));
        }
        if self.event_capacity == 0 {
            return Err(FleetError::InvalidConfig("event_capacity must be >= 1".into()));
        }
        if let Some(d) = &self.durability {
            d.validate()?;
        }
        if let Some(idle) = self.auto_hibernate_idle {
            if self.spill_dir.is_none() {
                return Err(FleetError::InvalidConfig(
                    "auto_hibernate_idle requires spill_dir".into(),
                ));
            }
            if idle.is_zero() {
                return Err(FleetError::InvalidConfig("auto_hibernate_idle must be > 0".into()));
            }
        }
        Ok(())
    }
}

/// Per-stream serving configuration: everything needed to build one
/// [`GuardedLarp`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Ingestion sanitization policy.
    pub ingest: IngestConfig,
    /// LARPredictor configuration.
    pub larp: LarpConfig,
    /// Samples per (re)training window.
    pub train_size: usize,
    /// QA rolling-MSE retrain threshold (normalized units).
    pub qa_threshold: f64,
    /// QA audit window length.
    pub qa_window: usize,
    /// QA audit period.
    pub qa_period: usize,
    /// Fault-tolerance policy.
    pub resilience: ResilienceConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            ingest: IngestConfig::default(),
            larp: LarpConfig::default(),
            train_size: 40,
            qa_threshold: 2.0,
            qa_window: 8,
            qa_period: 4,
            resilience: ResilienceConfig::default(),
        }
    }
}

impl StreamConfig {
    /// Builds the guarded serving stack for one stream.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the larp layers.
    pub fn build(&self) -> Result<GuardedLarp> {
        let qa = QualityAssuror::new(self.qa_threshold, self.qa_window, self.qa_period)?;
        let online = OnlineLarp::with_resilience(
            self.larp.clone(),
            self.train_size,
            qa,
            self.resilience.clone(),
        )?;
        Ok(GuardedLarp::from_parts(self.ingest.clone(), online)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_build() {
        FleetConfig::default().validate().unwrap();
        StreamConfig::default().build().unwrap();
    }

    #[test]
    fn zero_values_rejected() {
        assert!(FleetConfig { shards: 0, ..FleetConfig::default() }.validate().is_err());
        assert!(FleetConfig { queue_capacity: 0, ..FleetConfig::default() }.validate().is_err());
        assert!(FleetConfig { batch_drain: 0, ..FleetConfig::default() }.validate().is_err());
        assert!(FleetConfig { event_capacity: 0, ..FleetConfig::default() }.validate().is_err());
    }

    #[test]
    fn durability_knobs_validate() {
        let good = DurabilityConfig::new("/tmp/ignored");
        assert!(good.validate().is_ok());
        let bad = DurabilityConfig { segment_bytes: 0, ..DurabilityConfig::new("/tmp/ignored") };
        let cfg = FleetConfig { durability: Some(bad), ..FleetConfig::default() };
        assert!(cfg.validate().is_err());
        let bad = DurabilityConfig { memtable_rows: 0, ..DurabilityConfig::new("/tmp/ignored") };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn auto_hibernate_requires_spill_dir_and_nonzero_idle() {
        let idle = Some(std::time::Duration::from_secs(60));
        let bad = FleetConfig { auto_hibernate_idle: idle, ..FleetConfig::default() };
        assert!(bad.validate().is_err());
        let bad = FleetConfig {
            auto_hibernate_idle: Some(std::time::Duration::ZERO),
            spill_dir: Some("/tmp/ignored".into()),
            ..FleetConfig::default()
        };
        assert!(bad.validate().is_err());
        let good = FleetConfig {
            auto_hibernate_idle: idle,
            spill_dir: Some("/tmp/ignored".into()),
            ..FleetConfig::default()
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn bad_stream_config_propagates() {
        let bad = StreamConfig { train_size: 1, ..StreamConfig::default() };
        assert!(bad.build().is_err());
        let bad = StreamConfig { qa_threshold: -1.0, ..StreamConfig::default() };
        assert!(bad.build().is_err());
    }
}
