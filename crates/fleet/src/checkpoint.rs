//! Fleet checkpoint codec.
//!
//! A checkpoint captures every registered stream's complete serving state —
//! trained model, sanitizer memory, quarantine clocks, QA window — so a fleet
//! can be killed and restored warm, without retraining a single model.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   8 bytes  b"FLEETCKP"
//! version u32      1
//! count   u64      number of streams
//! then per stream, sorted by ascending StreamId:
//!   id          u64
//!   next_minute u64
//!   len         u64   length of the guarded snapshot
//!   bytes       len   larp::snapshot encoding of the GuardedLarp
//! ```
//!
//! Sorting by id makes the bytes a pure function of the fleet's logical state:
//! two fleets serving the same streams checkpoint identically even when run
//! with different shard counts.

use larp::GuardedLarp;

use crate::{FleetError, Result, StreamId};

const MAGIC: [u8; 8] = *b"FLEETCKP";
const VERSION: u32 = 1;

/// One stream's checkpointed state, decoded.
pub(crate) struct StreamCheckpoint {
    pub(crate) id: StreamId,
    pub(crate) next_minute: u64,
    pub(crate) guarded: GuardedLarp,
}

fn err(msg: impl Into<String>) -> FleetError {
    FleetError::Checkpoint(msg.into())
}

/// Encodes streams (already sorted by id) into checkpoint bytes.
pub(crate) fn encode(streams: &[(StreamId, u64, Vec<u8>)]) -> Vec<u8> {
    debug_assert!(streams.windows(2).all(|w| w[0].0 < w[1].0), "streams must be sorted by id");
    let body: usize = streams.iter().map(|(_, _, b)| 24 + b.len()).sum();
    let mut out = Vec::with_capacity(20 + body);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(streams.len() as u64).to_le_bytes());
    for (id, next_minute, bytes) in streams {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&next_minute.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Decodes checkpoint bytes back into per-stream state.
///
/// Rejects malformed input (bad magic/version, truncation, trailing bytes,
/// duplicate or unsorted ids) with [`FleetError::Checkpoint`] — never panics.
pub(crate) fn decode(bytes: &[u8]) -> Result<Vec<StreamCheckpoint>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        let end = pos.checked_add(n).ok_or_else(|| err("length overflow"))?;
        if end > bytes.len() {
            return Err(err(format!(
                "truncated checkpoint: need {end} bytes, have {}",
                bytes.len()
            )));
        }
        let s = &bytes[*pos..end];
        *pos = end;
        Ok(s)
    };
    let take_u64 = |pos: &mut usize| -> Result<u64> {
        let s = take(pos, 8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("slice is 8 bytes")))
    };

    if take(&mut pos, 8)? != MAGIC {
        return Err(err("bad magic: not a fleet checkpoint"));
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("slice is 4 bytes"));
    if version != VERSION {
        return Err(err(format!("unsupported checkpoint version {version}")));
    }
    let count = take_u64(&mut pos)?;
    // Each stream costs at least 24 header bytes: an OOM guard for corrupt counts.
    if (count as u128) * 24 > (bytes.len() - pos) as u128 {
        return Err(err(format!("corrupt stream count {count}")));
    }

    let mut out = Vec::with_capacity(count as usize);
    let mut prev: Option<StreamId> = None;
    for _ in 0..count {
        let id = take_u64(&mut pos)?;
        if prev.is_some_and(|p| p >= id) {
            return Err(err(format!("stream ids not strictly ascending at {id}")));
        }
        prev = Some(id);
        let next_minute = take_u64(&mut pos)?;
        let len = take_u64(&mut pos)?;
        let snap =
            take(&mut pos, usize::try_from(len).map_err(|_| err("snapshot length overflow"))?)?;
        let guarded =
            GuardedLarp::from_snapshot_bytes(snap).map_err(|e| err(format!("stream {id}: {e}")))?;
        out.push(StreamCheckpoint { id, next_minute, guarded });
    }
    if pos != bytes.len() {
        return Err(err(format!("{} trailing bytes after checkpoint", bytes.len() - pos)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamConfig;

    fn guarded_bytes() -> Vec<u8> {
        let mut g = StreamConfig::default().build().unwrap();
        for m in 0..60u64 {
            g.ingest(m, 40.0 + (m as f64 * 0.4).sin() * 5.0);
        }
        g.to_snapshot_bytes()
    }

    #[test]
    fn empty_fleet_round_trips() {
        let bytes = encode(&[]);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn streams_round_trip() {
        let snap = guarded_bytes();
        let bytes = encode(&[(3, 60, snap.clone()), (9, 12, snap.clone())]);
        let streams = decode(&bytes).unwrap();
        assert_eq!(streams.len(), 2);
        assert_eq!((streams[0].id, streams[0].next_minute), (3, 60));
        assert_eq!((streams[1].id, streams[1].next_minute), (9, 12));
        assert_eq!(streams[0].guarded.to_snapshot_bytes(), snap);
    }

    #[test]
    fn malformed_bytes_error_instead_of_panicking() {
        assert!(decode(b"").is_err());
        assert!(decode(b"NOTACKPT").is_err());
        let good = encode(&[(1, 5, guarded_bytes())]);
        for cut in [0, 7, 8, 11, 12, 19, 20, 27, 35, good.len() - 1] {
            assert!(decode(&good[..cut]).is_err(), "truncation at {cut} must fail");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_err());
        // Corrupt the count field to something absurd: must be rejected, not
        // allocated.
        let mut huge = good;
        huge[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&huge).is_err());
    }

    #[test]
    fn unsorted_ids_rejected() {
        let snap = guarded_bytes();
        let sorted = encode(&[(2, 0, snap.clone()), (7, 0, snap)]);
        let mut swapped = sorted;
        // Swap the two id fields (offsets 20 and 20+24+snap_len).
        let first_id = 20;
        let snap_len =
            u64::from_le_bytes(swapped[first_id + 16..first_id + 24].try_into().unwrap()) as usize;
        let second_id = first_id + 24 + snap_len;
        swapped[first_id..first_id + 8].copy_from_slice(&7u64.to_le_bytes());
        swapped[second_id..second_id + 8].copy_from_slice(&2u64.to_le_bytes());
        assert!(decode(&swapped).is_err());
    }
}
