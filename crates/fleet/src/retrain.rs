//! Off-worker retrain pool (DESIGN.md §13).
//!
//! Shard workers used to fit models inline: a push landing on a retrain step
//! paid the full training cost (~100× a serving step) on the ingest path.
//! With `FleetConfig::retrain_threads > 0` the worker instead *arms* a
//! [`RetrainRequest`] — an owned copy of the training window, stamped with
//! the model generation — and hands it to this pool. The old model keeps
//! serving; the fitted model installs before the stream's next sample.
//!
//! # Why bit-identity holds
//!
//! The fit is pure (window copy + config in, model out) and the install
//! point is pinned by contract: an armed request resolves before the next
//! `push` of its stream, whether a pool worker fitted it, the shard worker
//! collected it pre-feed, or the push's own backstop ran it inline. Both
//! modes therefore observe the same (window, install-point) pairs and the
//! forecast sequence is bit-identical — `engine::tests` and
//! `fleet_throughput --ab-retrain` pin this.
//!
//! # Why this cannot deadlock
//!
//! A [`RetrainCell`] is work-stealing: [`RetrainCell::resolve`] only *waits*
//! if a pool worker has already taken the job (that worker always finishes
//! and notifies — workers never abandon a taken fit, even during shutdown);
//! otherwise the resolver steals the input and fits on the calling thread.
//! No resolver ever depends on pool liveness, so shutdown ordering and pool
//! sizing cannot wedge a shard worker or a checkpoint fence.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use larp::{LarpConfig, RetrainOutcome, RetrainRequest};
use obs::{Counter, Gauge, Registry};

/// The job a cell carries until someone fits it.
struct CellInput {
    request: RetrainRequest,
    config: LarpConfig,
    queued: Instant,
}

/// One in-flight retrain: filled by [`RetrainPool::submit`], fitted by a pool
/// worker (or stolen by the resolver), drained exactly once by
/// [`RetrainCell::resolve`].
pub(crate) struct RetrainCell {
    state: Mutex<CellState>,
    done: Condvar,
}

struct CellState {
    input: Option<CellInput>,
    output: Option<RetrainOutcome>,
}

impl RetrainCell {
    fn new(request: RetrainRequest, config: LarpConfig) -> Self {
        Self {
            state: Mutex::new(CellState {
                input: Some(CellInput { request, config, queued: Instant::now() }),
                output: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Runs the fit, splitting elapsed time into queue wait and fit proper.
    fn fit(input: CellInput) -> RetrainOutcome {
        let started = Instant::now();
        let queue_wait_us = started.duration_since(input.queued).as_micros() as u64;
        let model = input.request.fit(&input.config);
        RetrainOutcome {
            generation: input.request.generation(),
            model,
            queue_wait_us,
            fit_us: started.elapsed().as_micros() as u64,
        }
    }

    /// Pool-worker side: fit the job unless the owner already stole it.
    fn run(&self) {
        let taken = self.state.lock().expect("retrain cell poisoned").input.take();
        let Some(input) = taken else { return };
        let outcome = Self::fit(input);
        let mut state = self.state.lock().expect("retrain cell poisoned");
        state.output = Some(outcome);
        self.done.notify_all();
    }

    /// Owner side: the outcome, fitted here and now if no worker beat us to
    /// the input (so this never blocks on the pool being alive or sized).
    pub(crate) fn resolve(&self) -> RetrainOutcome {
        let mut state = self.state.lock().expect("retrain cell poisoned");
        if let Some(input) = state.input.take() {
            drop(state);
            return Self::fit(input);
        }
        loop {
            if let Some(outcome) = state.output.take() {
                return outcome;
            }
            state = self.done.wait(state).expect("retrain cell poisoned");
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<RetrainCell>>>,
    not_empty: Condvar,
    stop: AtomicBool,
    /// Cells currently queued (not yet picked up by a worker).
    depth: Gauge,
}

/// Fixed-size thread pool fitting [`RetrainCell`]s in submission order.
pub(crate) struct RetrainPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    jobs: Counter,
    /// Outcomes whose generation no longer matched at install (counted by
    /// the installing shard worker, owned here so `shard.rs` needs no extra
    /// plumbing).
    pub(crate) stale: Counter,
}

impl RetrainPool {
    /// Spawns `threads` fit workers (callers guarantee `threads >= 1`).
    pub(crate) fn start(threads: usize, registry: &Registry) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            stop: AtomicBool::new(false),
            depth: registry.gauge("fleet_retrain_queue_depth"),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fleet-retrain-{i}"))
                    .spawn(move || loop {
                        let cell = {
                            let mut q = shared.queue.lock().expect("retrain queue poisoned");
                            loop {
                                if let Some(cell) = q.pop_front() {
                                    shared.depth.set(q.len() as f64);
                                    break cell;
                                }
                                if shared.stop.load(Ordering::Acquire) {
                                    return;
                                }
                                q = shared.not_empty.wait(q).expect("retrain queue poisoned");
                            }
                        };
                        cell.run();
                    })
                    .expect("spawn retrain worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
            jobs: registry.counter("fleet_retrain_jobs_total"),
            stale: registry.counter("fleet_retrain_stale_total"),
        }
    }

    /// Enqueues one fit; the returned cell is the handle the stream's slot
    /// holds until install.
    pub(crate) fn submit(&self, request: RetrainRequest, config: LarpConfig) -> Arc<RetrainCell> {
        let cell = Arc::new(RetrainCell::new(request, config));
        {
            let mut q = self.shared.queue.lock().expect("retrain queue poisoned");
            q.push_back(Arc::clone(&cell));
            self.shared.depth.set(q.len() as f64);
        }
        self.jobs.inc();
        self.shared.not_empty.notify_one();
        cell
    }

    /// Stops and joins the workers. Cells still queued keep their input and
    /// are fitted by whoever resolves them; a fit already taken by a worker
    /// completes before that worker exits.
    pub(crate) fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
        let handles: Vec<_> =
            self.workers.lock().expect("retrain worker list poisoned").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larp::{LarpConfig, OnlineLarp, QualityAssuror};

    /// Drives an online instance in external mode until it arms a request.
    fn armed_request() -> (OnlineLarp, RetrainRequest) {
        let qa = QualityAssuror::new(0.5, 4, 2).unwrap();
        let mut online = OnlineLarp::new(LarpConfig::default(), 40, qa).unwrap();
        online.set_deferred_retrain(true);
        for t in 0..60 {
            online.push((t as f64 * 0.2).sin() * 0.1);
        }
        let mut t = 0u64;
        loop {
            online.push(if t.is_multiple_of(2) { 50.0 } else { -50.0 });
            t += 1;
            if let Some(request) = online.take_retrain_request() {
                return (online, request);
            }
            assert!(t < 200, "QA never ordered a retrain");
        }
    }

    #[test]
    fn pool_fits_and_owner_installs() {
        let registry = Registry::new();
        let pool = RetrainPool::start(2, &registry);
        let (mut online, request) = armed_request();
        let before = online.retrain_count();
        let cell = pool.submit(request, online.config().clone());
        let outcome = cell.resolve();
        assert!(online.install_retrain(outcome), "generation still current");
        assert_eq!(online.retrain_count(), before + 1);
        assert_eq!(pool.jobs.get(), 1);
        pool.shutdown();
    }

    #[test]
    fn resolve_steals_when_pool_is_stopped() {
        let registry = Registry::new();
        let pool = RetrainPool::start(1, &registry);
        pool.shutdown();
        // Submitted after shutdown: no worker will ever run it, so resolve
        // must fit on the calling thread rather than block.
        let (mut online, request) = armed_request();
        let cell = pool.submit(request, online.config().clone());
        let outcome = cell.resolve();
        assert!(outcome.model.is_some(), "steal path fits the window");
        assert!(online.install_retrain(outcome));
    }

    #[test]
    fn stale_generation_is_discarded() {
        let registry = Registry::new();
        let pool = RetrainPool::start(1, &registry);
        let (mut online, request) = armed_request();
        let cell = pool.submit(request, online.config().clone());
        let outcome = cell.resolve();
        // The model moves on before the outcome lands: keep pushing until the
        // push backstop resolves a newer retrain inline, bumping the
        // generation, so the pooled outcome must be rejected.
        let generation = online.generation();
        for t in 0u64..300 {
            online.push(if t.is_multiple_of(2) { 80.0 } else { -80.0 });
            if online.generation() > generation {
                break;
            }
        }
        assert!(online.generation() > generation, "no newer model ever installed");
        let count = online.retrain_count();
        assert!(!online.install_retrain(outcome), "stale outcome must be discarded");
        assert_eq!(online.retrain_count(), count, "discard changes nothing");
        pool.shutdown();
    }
}
