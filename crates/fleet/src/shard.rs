//! Shard assignment and per-shard serving state.
//!
//! Each shard owns a bounded ingest queue (std `Mutex` + `Condvar`s — no
//! external dependencies) and a map of the streams assigned to it. Exactly
//! one worker thread drains each shard, so samples of one stream are always
//! processed in enqueue order — the property that makes fleet runs
//! reproducible.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

use larp::{GuardedLarp, HealthState, OnlineStep, Scratch};
use obs::{Counter, Gauge, Registry};
use simrng::{Rng64, SplitMix64};

use crate::StreamId;

/// Assigns a stream to a shard: a pure hash of `(fleet_seed, stream_id)`.
///
/// Stable across runs and registration order; only `shards` itself changes
/// the layout. The double SplitMix64 pass gives full avalanche over the
/// typically small consecutive stream ids, keeping the assignment balanced.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_of(fleet_seed: u64, stream_id: StreamId, shards: usize) -> usize {
    assert!(shards > 0, "shard_of requires at least one shard");
    let whitened = SplitMix64::new(fleet_seed).next_u64();
    let h = SplitMix64::new(whitened ^ stream_id).next_u64();
    (h % shards as u64) as usize
}

/// One queued sample.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub(crate) stream: StreamId,
    /// Explicit sample minute; `None` auto-advances the stream's clock.
    pub(crate) minute: Option<u64>,
    pub(crate) value: f64,
    /// Engine-wide push sequence number at enqueue, for idle-expiry.
    pub(crate) seq: u64,
}

/// Mutex-protected queue interior.
pub(crate) struct QueueInner {
    pub(crate) items: VecDeque<Job>,
    /// Set once at engine drop; workers exit after draining.
    pub(crate) shutdown: bool,
    /// True while the worker is processing a drained batch — `flush` must
    /// wait for this, not just for an empty queue.
    pub(crate) busy: bool,
}

/// Serving state of one stream within its shard.
pub(crate) struct StreamSlot {
    pub(crate) guarded: GuardedLarp,
    /// Minute assigned to the next auto-clocked sample.
    pub(crate) next_minute: u64,
    /// Engine push sequence of the most recently processed sample.
    pub(crate) last_seq: u64,
    /// Clean samples that reached the predictor.
    pub(crate) steps: u64,
    /// Forecasts served.
    pub(crate) forecasts: u64,
    /// Non-finite forecasts that escaped the serving stack (must stay 0; the
    /// fleet counts rather than trusts).
    pub(crate) nonfinite: u64,
    /// Health of the most recent step.
    pub(crate) last_health: HealthState,
    /// Most recent forecast.
    pub(crate) last_forecast: Option<f64>,
}

impl StreamSlot {
    pub(crate) fn new(guarded: GuardedLarp, next_minute: u64) -> Self {
        Self {
            guarded,
            next_minute,
            last_seq: 0,
            steps: 0,
            forecasts: 0,
            nonfinite: 0,
            last_health: HealthState::Healthy,
            last_forecast: None,
        }
    }

    /// Feeds one sample through the guarded stack, allocating per call.
    /// The control arm for A/B measurement; serving workers use
    /// [`feed_with`](Self::feed_with).
    pub(crate) fn feed(&mut self, job: &Job) {
        let minute = self.clock(job);
        for step in self.guarded.ingest(minute, job.value) {
            self.absorb(&step);
        }
    }

    /// Feeds one sample through the guarded stack reusing the worker's
    /// scratch arena and step buffer — the allocation-free serving path.
    pub(crate) fn feed_with(
        &mut self,
        job: &Job,
        scratch: &mut Scratch,
        steps: &mut Vec<OnlineStep>,
    ) {
        let minute = self.clock(job);
        self.guarded.ingest_into(minute, job.value, scratch, steps);
        for step in steps.iter() {
            self.absorb(step);
        }
    }

    /// Advances the stream clock for `job`, returning the sample minute.
    fn clock(&mut self, job: &Job) -> u64 {
        let minute = job.minute.unwrap_or(self.next_minute);
        self.next_minute = self.next_minute.max(minute.saturating_add(1));
        self.last_seq = job.seq;
        minute
    }

    /// Folds one serving step into the slot's tallies.
    fn absorb(&mut self, step: &OnlineStep) {
        self.steps += 1;
        self.last_health = step.health;
        if let Some(f) = step.forecast {
            self.forecasts += 1;
            self.last_forecast = Some(f);
            if !f.is_finite() {
                self.nonfinite += 1;
            }
        }
    }
}

/// One shard: bounded queue + stream map + wakeup plumbing.
pub(crate) struct ShardState {
    pub(crate) queue: Mutex<QueueInner>,
    /// Signalled when samples are enqueued or shutdown is ordered.
    pub(crate) not_empty: Condvar,
    /// Signalled when the worker frees queue space.
    pub(crate) space: Condvar,
    /// Signalled when the queue is empty and the worker idle.
    pub(crate) drained: Condvar,
    pub(crate) streams: Mutex<HashMap<StreamId, StreamSlot>>,
    /// Samples addressed to unregistered streams (dropped, counted).
    pub(crate) unknown_dropped: Counter,
    /// Samples currently waiting in this shard's queue.
    pub(crate) queue_depth: Gauge,
}

impl ShardState {
    pub(crate) fn new(index: usize, registry: &Registry) -> Self {
        Self {
            queue: Mutex::new(QueueInner { items: VecDeque::new(), shutdown: false, busy: false }),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            drained: Condvar::new(),
            streams: Mutex::new(HashMap::new()),
            unknown_dropped: registry.counter(&format!("fleet_shard{index}_unknown_dropped_total")),
            queue_depth: registry.gauge(&format!("fleet_shard{index}_queue_depth")),
        }
    }

    /// The worker loop: drain up to `batch_drain` samples, feed them, repeat
    /// until shutdown with an empty queue.
    ///
    /// With `reuse_scratch` the worker owns one scratch arena and step buffer
    /// shared across every stream it serves — slots only borrow them for the
    /// duration of one sample, so the steady-state loop never allocates.
    pub(crate) fn worker_loop(&self, batch_drain: usize, reuse_scratch: bool) {
        let mut batch: Vec<Job> = Vec::with_capacity(batch_drain);
        let mut scratch = Scratch::new();
        let mut steps: Vec<OnlineStep> = Vec::new();
        loop {
            {
                let mut q = self.queue.lock().expect("shard queue poisoned");
                while q.items.is_empty() && !q.shutdown {
                    q = self.not_empty.wait(q).expect("shard queue poisoned");
                }
                if q.items.is_empty() {
                    // Shutdown with nothing left to do.
                    q.busy = false;
                    self.drained.notify_all();
                    return;
                }
                q.busy = true;
                let n = q.items.len().min(batch_drain);
                batch.extend(q.items.drain(..n));
                self.queue_depth.set(q.items.len() as f64);
            }
            self.space.notify_all();

            {
                let mut streams = self.streams.lock().expect("shard stream map poisoned");
                for job in &batch {
                    match streams.get_mut(&job.stream) {
                        Some(slot) if reuse_scratch => {
                            slot.feed_with(job, &mut scratch, &mut steps);
                        }
                        Some(slot) => slot.feed(job),
                        None => {
                            self.unknown_dropped.inc();
                        }
                    }
                }
            }
            batch.clear();

            let mut q = self.queue.lock().expect("shard queue poisoned");
            if q.items.is_empty() {
                q.busy = false;
                self.drained.notify_all();
                if q.shutdown {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for id in 0..500u64 {
            let s = shard_of(42, id, 7);
            assert!(s < 7);
            assert_eq!(s, shard_of(42, id, 7), "assignment must be pure");
        }
    }

    #[test]
    fn shard_of_depends_on_seed() {
        let moved = (0..200u64).filter(|&id| shard_of(1, id, 8) != shard_of(2, id, 8)).count();
        assert!(moved > 100, "only {moved}/200 streams moved between seeds");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        shard_of(0, 0, 0);
    }
}
