//! Shard assignment and per-shard serving state.
//!
//! Each shard owns a bounded ingest queue (std `Mutex` + `Condvar`s — no
//! external dependencies) and a [`StreamTable`] of the streams assigned to
//! it. Exactly one worker thread drains each shard, so samples of one stream
//! are always processed in enqueue order — the property that makes fleet
//! runs reproducible.
//!
//! # Stream storage (DESIGN.md §11)
//!
//! Streams used to live directly in a `HashMap<StreamId, StreamSlot>`. A
//! [`StreamSlot`] is large (it embeds the whole guarded serving stack), so
//! every empty hash bucket wasted a full slot of capacity and every resize
//! moved megabytes. The table now splits storage into two dense slabs with
//! free lists — one of live [`StreamSlot`]s, one of small [`Tombstone`]s for
//! hibernated streams — and a `HashMap<StreamId, SlotRef>` index whose
//! buckets are 12 bytes instead of hundreds. Hibernating a stream moves it
//! from the live slab to the tombstone slab; its serving state is spilled to
//! the engine's blob store and only the tallies a health probe needs stay
//! resident.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use larp::{GuardedLarp, HealthState, OnlineStep, Scratch};
use obs::{Counter, Gauge, Registry};
use simrng::{Rng64, SplitMix64};

use crate::retrain::{RetrainCell, RetrainPool};
use crate::StreamId;

/// Assigns a stream to a shard: a pure hash of `(fleet_seed, stream_id)`.
///
/// Stable across runs and registration order; only `shards` itself changes
/// the layout. The double SplitMix64 pass gives full avalanche over the
/// typically small consecutive stream ids, keeping the assignment balanced.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_of(fleet_seed: u64, stream_id: StreamId, shards: usize) -> usize {
    assert!(shards > 0, "shard_of requires at least one shard");
    let whitened = SplitMix64::new(fleet_seed).next_u64();
    let h = SplitMix64::new(whitened ^ stream_id).next_u64();
    (h % shards as u64) as usize
}

/// One queued sample.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub(crate) stream: StreamId,
    /// Explicit sample minute; `None` auto-advances the stream's clock.
    pub(crate) minute: Option<u64>,
    pub(crate) value: f64,
    /// Engine-wide push sequence number at enqueue, for idle-expiry.
    pub(crate) seq: u64,
}

/// Mutex-protected queue interior.
pub(crate) struct QueueInner {
    pub(crate) items: VecDeque<Job>,
    /// Set once at engine drop; workers exit after draining.
    pub(crate) shutdown: bool,
    /// True while the worker is processing a drained batch — `flush` must
    /// wait for this, not just for an empty queue.
    pub(crate) busy: bool,
}

/// Serving state of one stream within its shard.
pub(crate) struct StreamSlot {
    pub(crate) guarded: GuardedLarp,
    /// Minute assigned to the next auto-clocked sample.
    pub(crate) next_minute: u64,
    /// Engine push sequence of the most recently processed sample (or
    /// info-probe — reads count as activity so predict-only streams are not
    /// swept mid-use).
    pub(crate) last_seq: u64,
    /// Clean samples that reached the predictor.
    pub(crate) steps: u64,
    /// Forecasts served.
    pub(crate) forecasts: u64,
    /// Non-finite forecasts that escaped the serving stack (must stay 0; the
    /// fleet counts rather than trusts).
    pub(crate) nonfinite: u64,
    /// Health of the most recent step.
    pub(crate) last_health: HealthState,
    /// Most recent forecast.
    pub(crate) last_forecast: Option<f64>,
    /// A retrain handed to the off-worker pool and not yet installed.
    /// Runtime-only: every snapshot/hibernate/migrate path settles it first.
    pub(crate) pending_retrain: Option<Arc<RetrainCell>>,
}

impl StreamSlot {
    pub(crate) fn new(guarded: GuardedLarp, next_minute: u64) -> Self {
        Self {
            guarded,
            next_minute,
            last_seq: 0,
            steps: 0,
            forecasts: 0,
            nonfinite: 0,
            last_health: HealthState::Healthy,
            last_forecast: None,
            pending_retrain: None,
        }
    }

    /// Rebuilds a slot from a restored serving stack and the tallies its
    /// tombstone kept resident while the stream was hibernated.
    pub(crate) fn wake_from(guarded: GuardedLarp, tomb: &Tombstone) -> Self {
        Self {
            guarded,
            next_minute: tomb.next_minute,
            last_seq: tomb.last_seq,
            steps: tomb.steps,
            forecasts: tomb.forecasts,
            nonfinite: tomb.nonfinite,
            last_health: tomb.last_health,
            last_forecast: tomb.last_forecast,
            pending_retrain: None,
        }
    }

    /// Resolves every outstanding retrain of this stream: first the cell the
    /// pool holds (install, discarding if stale), then any armed-but-untaken
    /// request (direct feed paths like WAL replay never meet a worker's
    /// launch hook, so the fence fits them inline). After this the slot's
    /// serving state carries no retrain debt and is safe to snapshot.
    pub(crate) fn settle_retrain(&mut self, stale: &Counter) {
        if let Some(cell) = self.pending_retrain.take() {
            let outcome = cell.resolve();
            if !self.guarded.online_mut().install_retrain(outcome) {
                stale.inc();
            }
        }
        self.guarded.online_mut().settle_retrain_now();
    }

    /// Hands an armed retrain request (if any) to the pool, holding the cell
    /// until [`settle_retrain`](Self::settle_retrain) installs it before
    /// this stream's next sample.
    pub(crate) fn launch_retrain(&mut self, pool: &RetrainPool) {
        if let Some(request) = self.guarded.online_mut().take_retrain_request() {
            let config = self.guarded.online().config().clone();
            self.pending_retrain = Some(pool.submit(request, config));
        }
    }

    /// Feeds one sample through the guarded stack, allocating per call.
    /// The control arm for A/B measurement; serving workers use
    /// [`feed_with`](Self::feed_with).
    pub(crate) fn feed(&mut self, job: &Job) {
        let minute = self.clock(job);
        for step in self.guarded.ingest(minute, job.value) {
            self.absorb(&step);
        }
    }

    /// Feeds one sample through the guarded stack reusing the worker's
    /// scratch arena and step buffer — the allocation-free serving path.
    pub(crate) fn feed_with(
        &mut self,
        job: &Job,
        scratch: &mut Scratch,
        steps: &mut Vec<OnlineStep>,
    ) {
        let minute = self.clock(job);
        self.guarded.ingest_into(minute, job.value, scratch, steps);
        for step in steps.iter() {
            self.absorb(step);
        }
    }

    /// Advances the stream clock for `job`, returning the sample minute.
    fn clock(&mut self, job: &Job) -> u64 {
        let minute = job.minute.unwrap_or(self.next_minute);
        self.next_minute = self.next_minute.max(minute.saturating_add(1));
        // Monotonic: an info probe may have refreshed the idle clock past
        // this (queued, therefore older) sample's sequence number.
        self.last_seq = self.last_seq.max(job.seq);
        minute
    }

    /// Folds one serving step into the slot's tallies.
    fn absorb(&mut self, step: &OnlineStep) {
        self.steps += 1;
        self.last_health = step.health;
        if let Some(f) = step.forecast {
            self.forecasts += 1;
            self.last_forecast = Some(f);
            if !f.is_finite() {
                self.nonfinite += 1;
            }
        }
    }
}

/// The resident remains of a hibernated stream: everything a health rollup
/// or [`crate::FleetEngine::stream_info`] probe needs, and nothing else
/// (~80 bytes). The full serving state lives in the engine's spill store
/// until the next sample wakes the stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Tombstone {
    pub(crate) next_minute: u64,
    pub(crate) last_seq: u64,
    pub(crate) steps: u64,
    pub(crate) forecasts: u64,
    pub(crate) nonfinite: u64,
    pub(crate) last_health: HealthState,
    pub(crate) last_forecast: Option<f64>,
    /// Retrain count at hibernation (the live value is inside the spilled
    /// snapshot; this keeps `stream_info` answerable without a wake).
    pub(crate) retrains: usize,
}

impl Tombstone {
    pub(crate) fn of(slot: &StreamSlot) -> Self {
        Self {
            next_minute: slot.next_minute,
            last_seq: slot.last_seq,
            steps: slot.steps,
            forecasts: slot.forecasts,
            nonfinite: slot.nonfinite,
            last_health: slot.last_health,
            last_forecast: slot.last_forecast,
            retrains: slot.guarded.online().retrain_count(),
        }
    }
}

/// Where a registered stream currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotRef {
    /// Index into the live slab.
    Live(u32),
    /// Index into the tombstone slab; serving state is spilled.
    Hibernated(u32),
}

/// What [`StreamTable::remove`] evicted. The payloads exist so removal
/// *moves* the state out (dropping it at the call site, outside the table
/// lock when the caller chooses) — current callers only match on the
/// variant.
pub(crate) enum Removed {
    /// The stream was live; here is its serving state.
    Live(#[allow(dead_code)] Box<StreamSlot>),
    /// The stream was hibernated; the caller must also drop its spill blob.
    Hibernated(#[allow(dead_code)] Tombstone),
}

/// Slab-backed stream storage: a small index over two dense slabs.
#[derive(Default)]
pub(crate) struct StreamTable {
    index: HashMap<StreamId, SlotRef>,
    live: Vec<Option<StreamSlot>>,
    live_free: Vec<u32>,
    tombs: Vec<Option<Tombstone>>,
    tomb_free: Vec<u32>,
}

impl StreamTable {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registered streams, live + hibernated.
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    pub(crate) fn live_len(&self) -> usize {
        self.live.len() - self.live_free.len()
    }

    pub(crate) fn hibernated_len(&self) -> usize {
        self.tombs.len() - self.tomb_free.len()
    }

    pub(crate) fn contains(&self, id: StreamId) -> bool {
        self.index.contains_key(&id)
    }

    pub(crate) fn kind(&self, id: StreamId) -> Option<SlotRef> {
        self.index.get(&id).copied()
    }

    /// Inserts a live stream; `false` (slot dropped) if the id exists.
    pub(crate) fn insert(&mut self, id: StreamId, slot: StreamSlot) -> bool {
        if self.index.contains_key(&id) {
            return false;
        }
        let at = match self.live_free.pop() {
            Some(i) => {
                self.live[i as usize] = Some(slot);
                i
            }
            None => {
                self.live.push(Some(slot));
                (self.live.len() - 1) as u32
            }
        };
        self.index.insert(id, SlotRef::Live(at));
        true
    }

    pub(crate) fn get_live_mut(&mut self, id: StreamId) -> Option<&mut StreamSlot> {
        match self.index.get(&id)? {
            SlotRef::Live(i) => self.live[*i as usize].as_mut(),
            SlotRef::Hibernated(_) => None,
        }
    }

    pub(crate) fn tombstone(&self, id: StreamId) -> Option<&Tombstone> {
        match self.index.get(&id)? {
            SlotRef::Hibernated(i) => self.tombs[*i as usize].as_ref(),
            SlotRef::Live(_) => None,
        }
    }

    pub(crate) fn tombstone_mut(&mut self, id: StreamId) -> Option<&mut Tombstone> {
        match self.index.get(&id)? {
            SlotRef::Hibernated(i) => self.tombs[*i as usize].as_mut(),
            SlotRef::Live(_) => None,
        }
    }

    /// Unregisters a stream entirely.
    pub(crate) fn remove(&mut self, id: StreamId) -> Option<Removed> {
        match self.index.remove(&id)? {
            SlotRef::Live(i) => {
                let slot = self.live[i as usize].take().expect("index points at a full live slot");
                self.live_free.push(i);
                Some(Removed::Live(Box::new(slot)))
            }
            SlotRef::Hibernated(i) => {
                let tomb = self.tombs[i as usize].take().expect("index points at a full tomb");
                self.tomb_free.push(i);
                Some(Removed::Hibernated(tomb))
            }
        }
    }

    /// Moves a live stream to the tombstone slab, returning its slot so the
    /// caller can spill the serving state. `None` if absent or already
    /// hibernated.
    pub(crate) fn hibernate(&mut self, id: StreamId) -> Option<StreamSlot> {
        let SlotRef::Live(i) = *self.index.get(&id)? else { return None };
        let slot = self.live[i as usize].take().expect("index points at a full live slot");
        self.live_free.push(i);
        let tomb = Tombstone::of(&slot);
        let at = match self.tomb_free.pop() {
            Some(t) => {
                self.tombs[t as usize] = Some(tomb);
                t
            }
            None => {
                self.tombs.push(Some(tomb));
                (self.tombs.len() - 1) as u32
            }
        };
        self.index.insert(id, SlotRef::Hibernated(at));
        Some(slot)
    }

    /// Moves a hibernated stream back to the live slab around its restored
    /// serving stack. `None` if absent or not hibernated.
    pub(crate) fn wake(&mut self, id: StreamId, guarded: GuardedLarp) -> Option<&mut StreamSlot> {
        let SlotRef::Hibernated(i) = *self.index.get(&id)? else { return None };
        let tomb = self.tombs[i as usize].take().expect("index points at a full tomb");
        self.tomb_free.push(i);
        let slot = StreamSlot::wake_from(guarded, &tomb);
        let at = match self.live_free.pop() {
            Some(l) => {
                self.live[l as usize] = Some(slot);
                l
            }
            None => {
                self.live.push(Some(slot));
                (self.live.len() - 1) as u32
            }
        };
        self.index.insert(id, SlotRef::Live(at));
        self.live[at as usize].as_mut()
    }

    /// Iterates live streams (arbitrary order).
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = (StreamId, &StreamSlot)> + '_ {
        self.index.iter().filter_map(|(id, r)| match r {
            SlotRef::Live(i) => Some((*id, self.live[*i as usize].as_ref()?)),
            SlotRef::Hibernated(_) => None,
        })
    }

    /// Visits every live stream mutably (arbitrary order) — the
    /// retrain-settling fences run this under the shard's streams lock.
    pub(crate) fn for_each_live_mut(&mut self, mut f: impl FnMut(StreamId, &mut StreamSlot)) {
        let Self { index, live, .. } = self;
        for (id, r) in index.iter() {
            if let SlotRef::Live(i) = r {
                if let Some(slot) = live[*i as usize].as_mut() {
                    f(*id, slot);
                }
            }
        }
    }

    /// Iterates tombstones of hibernated streams (arbitrary order).
    pub(crate) fn iter_tombs(&self) -> impl Iterator<Item = (StreamId, &Tombstone)> + '_ {
        self.index.iter().filter_map(|(id, r)| match r {
            SlotRef::Hibernated(i) => Some((*id, self.tombs[*i as usize].as_ref()?)),
            SlotRef::Live(_) => None,
        })
    }

    /// Resident bytes of the table's own structures (index + slab storage,
    /// excluding heap owned by the slots' serving stacks).
    pub(crate) fn heap_bytes(&self) -> usize {
        // SwissTable buckets: key + value + 1 control byte each.
        let bucket = std::mem::size_of::<(StreamId, SlotRef)>() + 1;
        self.index.capacity() * bucket
            + self.live.capacity() * std::mem::size_of::<Option<StreamSlot>>()
            + self.live_free.capacity() * std::mem::size_of::<u32>()
            + self.tombs.capacity() * std::mem::size_of::<Option<Tombstone>>()
            + self.tomb_free.capacity() * std::mem::size_of::<u32>()
    }
}

/// One shard: bounded queue + stream table + wakeup plumbing.
pub(crate) struct ShardState {
    pub(crate) queue: Mutex<QueueInner>,
    /// Signalled when samples are enqueued or shutdown is ordered.
    pub(crate) not_empty: Condvar,
    /// Signalled when the worker frees queue space.
    pub(crate) space: Condvar,
    /// Signalled when the queue is empty and the worker idle.
    pub(crate) drained: Condvar,
    pub(crate) streams: Mutex<StreamTable>,
    /// Samples addressed to unregistered streams (dropped, counted).
    pub(crate) unknown_dropped: Counter,
    /// Samples currently waiting in this shard's queue.
    pub(crate) queue_depth: Gauge,
}

impl ShardState {
    pub(crate) fn new(index: usize, registry: &Registry) -> Self {
        Self {
            queue: Mutex::new(QueueInner { items: VecDeque::new(), shutdown: false, busy: false }),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            drained: Condvar::new(),
            streams: Mutex::new(StreamTable::new()),
            unknown_dropped: registry.counter(&format!("fleet_shard{index}_unknown_dropped_total")),
            queue_depth: registry.gauge(&format!("fleet_shard{index}_queue_depth")),
        }
    }

    /// The worker loop: drain up to `batch_drain` samples, feed them, repeat
    /// until shutdown with an empty queue.
    ///
    /// With `reuse_scratch` the worker owns one scratch arena and step buffer
    /// shared across every stream it serves — slots only borrow them for the
    /// duration of one sample, so the steady-state loop never allocates.
    ///
    /// `wake` restores a hibernated stream's serving stack from the engine's
    /// spill store (deserialize + re-attach observability); `None` means the
    /// spilled state is unreadable and the stream is dropped (counted as an
    /// unknown-stream sample).
    /// With a `retrain` pool, each job first settles the stream's outstanding
    /// retrain (install before the next sample — the deferred contract),
    /// feeds, then launches any newly armed request onto the pool.
    pub(crate) fn worker_loop(
        &self,
        batch_drain: usize,
        reuse_scratch: bool,
        wake: &dyn Fn(StreamId, &Tombstone) -> Option<GuardedLarp>,
        retrain: Option<&RetrainPool>,
    ) {
        let mut batch: Vec<Job> = Vec::with_capacity(batch_drain);
        let mut scratch = Scratch::new();
        let mut steps: Vec<OnlineStep> = Vec::new();
        loop {
            {
                let mut q = self.queue.lock().expect("shard queue poisoned");
                while q.items.is_empty() && !q.shutdown {
                    q = self.not_empty.wait(q).expect("shard queue poisoned");
                }
                if q.items.is_empty() {
                    // Shutdown with nothing left to do.
                    q.busy = false;
                    self.drained.notify_all();
                    return;
                }
                q.busy = true;
                let n = q.items.len().min(batch_drain);
                batch.extend(q.items.drain(..n));
                self.queue_depth.set(q.items.len() as f64);
            }
            self.space.notify_all();

            {
                let mut streams = self.streams.lock().expect("shard stream table poisoned");
                for job in &batch {
                    if let Some(SlotRef::Hibernated(_)) = streams.kind(job.stream) {
                        let woken = {
                            let tomb = streams.tombstone(job.stream).expect("ref says hibernated");
                            wake(job.stream, tomb)
                        };
                        match woken {
                            Some(guarded) => {
                                streams.wake(job.stream, guarded);
                            }
                            // Spilled state unreadable: the stream cannot
                            // serve again; drop it rather than serving from
                            // a half-reset stack.
                            None => {
                                streams.remove(job.stream);
                            }
                        }
                    }
                    match streams.get_live_mut(job.stream) {
                        Some(slot) => {
                            if let Some(pool) = retrain {
                                slot.settle_retrain(&pool.stale);
                            }
                            if reuse_scratch {
                                slot.feed_with(job, &mut scratch, &mut steps);
                            } else {
                                slot.feed(job);
                            }
                            if let Some(pool) = retrain {
                                slot.launch_retrain(pool);
                            }
                        }
                        None => {
                            self.unknown_dropped.inc();
                        }
                    }
                }
            }
            batch.clear();

            let mut q = self.queue.lock().expect("shard queue poisoned");
            if q.items.is_empty() {
                q.busy = false;
                self.drained.notify_all();
                if q.shutdown {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for id in 0..500u64 {
            let s = shard_of(42, id, 7);
            assert!(s < 7);
            assert_eq!(s, shard_of(42, id, 7), "assignment must be pure");
        }
    }

    #[test]
    fn shard_of_depends_on_seed() {
        let moved = (0..200u64).filter(|&id| shard_of(1, id, 8) != shard_of(2, id, 8)).count();
        assert!(moved > 100, "only {moved}/200 streams moved between seeds");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        shard_of(0, 0, 0);
    }

    fn slot() -> StreamSlot {
        StreamSlot::new(StreamConfig::default().build().unwrap(), 0)
    }

    #[test]
    fn table_insert_get_remove() {
        let mut t = StreamTable::new();
        assert!(t.insert(7, slot()));
        assert!(!t.insert(7, slot()), "duplicate rejected");
        assert!(t.contains(7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.live_len(), 1);
        assert!(t.get_live_mut(7).is_some());
        assert!(t.get_live_mut(8).is_none());
        assert!(matches!(t.remove(7), Some(Removed::Live(_))));
        assert!(t.remove(7).is_none());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn table_free_list_reuses_slab_entries() {
        let mut t = StreamTable::new();
        for id in 0..8u64 {
            t.insert(id, slot());
        }
        let slab = t.live.len();
        for id in 0..4u64 {
            t.remove(id);
        }
        for id in 10..14u64 {
            t.insert(id, slot());
        }
        assert_eq!(t.live.len(), slab, "freed entries must be reused, not appended");
        assert_eq!(t.live_len(), 8);
    }

    #[test]
    fn table_hibernate_and_wake_round_trip() {
        let mut t = StreamTable::new();
        t.insert(3, slot());
        {
            let s = t.get_live_mut(3).unwrap();
            s.steps = 42;
            s.forecasts = 9;
            s.last_seq = 77;
            s.next_minute = 100;
            s.last_forecast = Some(1.25);
        }
        let spilled = t.hibernate(3).expect("live stream hibernates");
        assert_eq!(spilled.steps, 42);
        assert!(t.contains(3));
        assert_eq!(t.live_len(), 0);
        assert_eq!(t.hibernated_len(), 1);
        assert!(t.get_live_mut(3).is_none());
        let tomb = t.tombstone(3).unwrap();
        assert_eq!((tomb.steps, tomb.forecasts, tomb.last_seq), (42, 9, 77));
        assert_eq!(tomb.last_forecast, Some(1.25));
        // Hibernating again is a no-op.
        assert!(t.hibernate(3).is_none());

        let woken = t.wake(3, spilled.guarded).expect("tombstoned stream wakes");
        assert_eq!(woken.steps, 42);
        assert_eq!(woken.next_minute, 100);
        assert_eq!(t.hibernated_len(), 0);
        assert_eq!(t.live_len(), 1);
    }

    #[test]
    fn table_remove_reports_hibernated() {
        let mut t = StreamTable::new();
        t.insert(1, slot());
        t.hibernate(1).unwrap();
        assert!(matches!(t.remove(1), Some(Removed::Hibernated(_))));
        assert!(!t.contains(1));
    }

    #[test]
    fn tombstone_is_small() {
        // The point of hibernation: the resident remains must be tiny
        // compared to a live slot.
        assert!(
            std::mem::size_of::<Tombstone>() <= 96,
            "tombstone grew to {} bytes",
            std::mem::size_of::<Tombstone>()
        );
        assert!(std::mem::size_of::<Tombstone>() * 4 < std::mem::size_of::<StreamSlot>());
    }
}
