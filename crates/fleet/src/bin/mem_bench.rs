//! Diagnostic: per-stream resident memory under the diet serving config.
//!
//! Default mode builds a steady-state fleet the way the memory budget
//! (DESIGN.md §11) prescribes for large deployments: `--streams` diet
//! streams (f32 history rings, 64-sample retention, small training window)
//! pass through the engine in cohorts — registered, driven to a trained
//! steady state, then spilled cold via `hibernate_idle` — and finally a
//! `--hot` working set is woken with fresh traffic. The printed JSON report
//! carries the headline `bytes_per_stream` (accounted heap over all
//! registered streams, hot and cold) plus the component-wise breakdown of
//! one live stream's stack (history ring, model, interned PCA share, QA
//! window, tracker, sanitizer mirror, slab/table overhead) and the process
//! RSS from `/proc/self/statm` as the honesty cross-check.
//! `results/BENCH_mem.json` commits this report; `scripts/ci.sh`
//! regenerates it and fails if `bytes_per_stream` grows past 120% of the
//! committed baseline.
//!
//! `--smoke1m` is the same cohort cycle at proof scale: one million
//! registered streams, only one cohort's serving stacks ever resident, RSS
//! sampled after every cohort against `--rss-cap-mb`. The binary exits
//! non-zero the moment RSS crosses the cap, and finishes by waking a
//! hibernated probe stream to show the cold fleet still serves.
//!
//! Run with:
//! `cargo run --release -p fleet --bin mem_bench -- --streams 20000`
//! `cargo run --release -p fleet --bin mem_bench -- --smoke1m --rss-cap-mb 1200`

use fleet::{
    process_resident_bytes, BackpressurePolicy, FleetConfig, FleetEngine, FleetMemReport,
    StreamConfig, StreamId,
};
use larp::{IngestConfig, LarpConfig, ResilienceConfig};

/// Samples per `push_batch` call.
const PUSH_CHUNK: usize = 256;

struct Args {
    streams: u64,
    hot: u64,
    rounds: u64,
    shards: usize,
    seed: u64,
    smoke1m: bool,
    cohort: u64,
    rss_cap_mb: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 20_000,
        hot: 2_000,
        rounds: 64,
        shards: 4,
        seed: 2007,
        smoke1m: false,
        cohort: 4_000,
        rss_cap_mb: 1200,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} expects an unsigned integer"))
        };
        match flag.as_str() {
            "--streams" => args.streams = take("--streams"),
            "--hot" => args.hot = take("--hot"),
            "--rounds" => args.rounds = take("--rounds"),
            "--shards" => args.shards = take("--shards") as usize,
            "--seed" => args.seed = take("--seed"),
            "--cohort" => args.cohort = take("--cohort"),
            "--rss-cap-mb" => args.rss_cap_mb = take("--rss-cap-mb"),
            "--smoke1m" => args.smoke1m = true,
            other => panic!(
                "unknown flag {other}; supported: --streams --hot --rounds --shards --seed \
                 --cohort --rss-cap-mb --smoke1m"
            ),
        }
    }
    assert!(args.cohort > 0, "--cohort must be >= 1");
    args
}

/// The million-stream diet (DESIGN.md §11): f32 rings, 64 retained samples,
/// the paper's m=5 window with a 24-sample training set, and a lean
/// sanitizer footprint. Every knob trades warmup breadth for bytes; the
/// serving semantics (quantize-once, deterministic restore) are unchanged.
fn diet_config() -> StreamConfig {
    StreamConfig {
        ingest: IngestConfig { robust_window: 16, ..IngestConfig::default() },
        larp: LarpConfig::paper(5),
        train_size: 24,
        qa_threshold: 2.0,
        qa_window: 8,
        qa_period: 4,
        resilience: ResilienceConfig {
            max_history: 64,
            f32_history: true,
            ..ResilienceConfig::default()
        },
    }
}

/// Deterministic heterogeneous per-stream signal: cheap enough to generate
/// inline for a million streams (no per-stream generator allocation).
fn sample(seed: u64, stream: StreamId, round: u64) -> f64 {
    let level = 30.0 + (seed ^ stream).wrapping_mul(0x9e37_79b9) as u32 as f64 % 170.0;
    let phase = stream as f64 * 0.61;
    level + (round as f64 * 0.22 + phase).sin() * level * 0.15
}

/// Pushes `rounds` per-minute samples to every stream in `ids`, chunked.
fn drive(engine: &FleetEngine, seed: u64, ids: std::ops::Range<u64>, rounds: u64) {
    let mut batch = Vec::with_capacity(PUSH_CHUNK);
    for round in 0..rounds {
        for chunk_start in ids.clone().step_by(PUSH_CHUNK) {
            batch.clear();
            for id in chunk_start..(chunk_start + PUSH_CHUNK as u64).min(ids.end) {
                batch.push((id, sample(seed, id, round)));
            }
            engine.push_batch(&batch);
        }
    }
    engine.flush();
}

/// Registers `total` diet streams cohort by cohort, driving each cohort to
/// steady state and hibernating it before the next one starts, so only one
/// cohort's serving stacks are ever resident. `watch` runs after every
/// cohort; returning `false` aborts the cycle (RSS cap breach).
fn cohort_cycle(
    engine: &FleetEngine,
    args: &Args,
    total: u64,
    watch: &mut dyn FnMut(u64) -> bool,
) -> bool {
    let diet = diet_config();
    let mut cohort_start = 0u64;
    while cohort_start < total {
        let cohort_end = (cohort_start + args.cohort).min(total);
        for id in cohort_start..cohort_end {
            engine.register_with(id, &diet).expect("fresh stream id");
        }
        drive(engine, args.seed, cohort_start..cohort_end, args.rounds);
        engine.hibernate_idle(0).expect("spill configured");
        if !watch(cohort_end) {
            return false;
        }
        cohort_start = cohort_end;
    }
    true
}

fn report_json(report: &FleetMemReport, elapsed_sec: f64, extra: &str) -> String {
    let n = (report.live_streams + report.hibernated_streams).max(1);
    let per = |bytes: usize| bytes as f64 / report.live_streams.max(1) as f64;
    let s = &report.stream;
    format!(
        "{{\n  \"live_streams\": {},\n  \"hibernated_streams\": {},\n  \
         \"elapsed_sec\": {:.3},\n  \"bytes_per_stream\": {:.0},\n  \
         \"heap_total_bytes\": {},\n  \"resident_bytes\": {},\n  \
         \"per_live_stream\": {{\n    \"history\": {:.1},\n    \"norm\": {:.1},\n    \
         \"model\": {:.1},\n    \"pca_shared\": {:.1},\n    \"qa\": {:.1},\n    \
         \"tracker\": {:.1},\n    \"sanitizer\": {:.1}\n  }},\n  \
         \"table_bytes\": {},\n  \
         \"pca\": {{\"handles\": {}, \"unique_bytes\": {}}},\n  \
         \"spill\": {{\"live_bytes\": {}, \"dead_bytes\": {}}}{}\n}}",
        report.live_streams,
        report.hibernated_streams,
        elapsed_sec,
        report.heap_total() as f64 / n as f64,
        report.heap_total(),
        report.resident_bytes.map_or_else(|| "null".into(), |b| b.to_string()),
        per(s.history_bytes),
        per(s.norm_bytes),
        per(s.model_bytes),
        report.pca_unique_bytes as f64 / report.live_streams.max(1) as f64,
        per(s.qa_bytes),
        per(s.tracker_bytes),
        per(s.sanitizer_bytes),
        report.table_bytes,
        report.pca_handles,
        report.pca_unique_bytes,
        report.spill_live_bytes,
        report.spill_dead_bytes,
        extra,
    )
}

fn rss_mb() -> u64 {
    process_resident_bytes().unwrap_or(0) >> 20
}

fn spill_engine(args: &Args, spill: &std::path::Path) -> FleetEngine {
    FleetEngine::new(FleetConfig {
        shards: args.shards,
        fleet_seed: args.seed,
        backpressure: BackpressurePolicy::Block,
        spill_dir: Some(spill.to_path_buf()),
        ..FleetConfig::default()
    })
    .expect("valid fleet config")
}

/// Default mode: the steady-state fleet — a hot working set live, the cold
/// majority hibernated — and the honest bytes/stream over all of it.
fn run_steady(args: &Args) {
    let spill = std::env::temp_dir().join(format!("mem-bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let engine = spill_engine(args, &spill);
    let start = std::time::Instant::now();
    cohort_cycle(&engine, args, args.streams, &mut |_| true);
    // Wake the working set: fresh traffic restores each hot stream from its
    // spill blob bit-identically, then keeps it live.
    let hot = args.hot.min(args.streams);
    drive(&engine, args.seed, 0..hot, args.rounds);
    let elapsed = start.elapsed().as_secs_f64();
    let health = engine.health();
    assert_eq!(health.nonfinite_forecasts, 0, "diet streams must serve finite forecasts");
    assert!(health.retrains >= args.streams, "every stream should have trained");
    let report = engine.mem_report();
    let extra = format!(
        ",\n  \"streams\": {},\n  \"hot\": {},\n  \"rounds\": {},\n  \"shards\": {},\n  \
         \"seed\": {},\n  \"forecasts\": {},\n  \"retrains\": {}",
        args.streams, hot, args.rounds, args.shards, args.seed, health.forecasts, health.retrains
    );
    println!("{}", report_json(&report, elapsed, &extra));
    drop(engine);
    let _ = std::fs::remove_dir_all(&spill);
}

/// `--smoke1m`: a million registered streams under an RSS cap.
fn run_smoke(args: &Args) {
    const TOTAL: u64 = 1_000_000;
    let spill = std::env::temp_dir().join(format!("mem-bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let engine = spill_engine(args, &spill);
    let start = std::time::Instant::now();
    let mut peak_rss_mb = 0u64;
    let breached = !cohort_cycle(&engine, args, TOTAL, &mut |done| {
        let rss = rss_mb();
        peak_rss_mb = peak_rss_mb.max(rss);
        if rss > args.rss_cap_mb {
            eprintln!("RSS cap breached at {done} streams: {rss} MiB > {} MiB", args.rss_cap_mb);
            return false;
        }
        if done % (args.cohort * 4) == 0 || done == TOTAL {
            eprintln!("{done:>9} streams, rss {rss:>5} MiB (cap {})", args.rss_cap_mb);
        }
        true
    });
    let elapsed = start.elapsed().as_secs_f64();
    // A woken probe proves the cold fleet still serves: one fresh sample
    // restores a hibernated stream and its forecast comes back.
    let probe: StreamId = 0;
    engine.push(probe, sample(args.seed, probe, args.rounds));
    engine.flush();
    let probe_woken =
        !breached && engine.stream_info(probe).expect("probe registered").last_forecast.is_some();
    let report = engine.mem_report();
    let health = engine.health();
    let extra = format!(
        ",\n  \"streams_total\": {},\n  \"rounds\": {},\n  \"cohort\": {},\n  \
         \"rss_cap_mb\": {},\n  \"peak_rss_mb\": {},\n  \"rss_cap_ok\": {},\n  \
         \"probe_woken\": {}",
        health.streams,
        args.rounds,
        args.cohort,
        args.rss_cap_mb,
        peak_rss_mb,
        !breached,
        probe_woken,
    );
    println!("{}", report_json(&report, elapsed, &extra));
    drop(engine);
    let _ = std::fs::remove_dir_all(&spill);
    if breached {
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    if args.smoke1m {
        run_smoke(&args);
    } else {
        run_steady(&args);
    }
}
