//! Diagnostic: drive a small fault-injected fleet and dump the engine's
//! observability surface — the registry-backed metrics plus the structured
//! event trace — in either exposition format.
//!
//! Run with:
//! `cargo run --release -p fleet --bin obs_dump -- --streams 16 --samples 240 --shards 2 --format json`
//!
//! `--format json` (default) emits the self-validating JSON dump;
//! `--format prometheus` emits the Prometheus text format. The binary
//! checkpoints the fleet before dumping so the trace also exercises the
//! checkpoint events, and validates its own JSON output before printing.

use fleet::{BackpressurePolicy, FleetConfig, FleetEngine};
use vmsim::{fleet_trace, FaultConfig, FaultInjector};

struct Args {
    streams: u64,
    samples: usize,
    shards: usize,
    seed: u64,
    format: String,
}

fn parse_args() -> Args {
    let mut args =
        Args { streams: 16, samples: 240, shards: 2, seed: 2007, format: "json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} expects a value"));
        let parse = |name: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|_| panic!("{name} expects an unsigned integer"))
        };
        match flag.as_str() {
            "--streams" => args.streams = parse("--streams", take("--streams")),
            "--samples" => args.samples = parse("--samples", take("--samples")) as usize,
            "--shards" => args.shards = parse("--shards", take("--shards")) as usize,
            "--seed" => args.seed = parse("--seed", take("--seed")),
            "--format" => args.format = take("--format"),
            other => panic!(
                "unknown flag {other}; supported: --streams --samples --shards --seed --format"
            ),
        }
    }
    assert!(
        args.format == "json" || args.format == "prometheus",
        "--format must be json or prometheus"
    );
    args
}

fn main() {
    let args = parse_args();
    let engine = FleetEngine::new(FleetConfig {
        shards: args.shards,
        fleet_seed: args.seed,
        // Lossless so the dump reflects every injected fault reaching its
        // sanitizer; drop/reject paths are covered by the fleet tests.
        backpressure: BackpressurePolicy::Block,
        ..FleetConfig::default()
    })
    .expect("valid fleet config");

    // Deterministic per-stream corrupted traces: drops, gaps, NaNs,
    // sentinels, spikes — so the larp_* fault counters have work to count.
    let mut corrupted: Vec<Vec<(u64, f64)>> = Vec::new();
    for id in 0..args.streams {
        engine.register(id).expect("fresh stream id");
        let clean = fleet_trace(args.seed, id, args.samples);
        let mut injector =
            FaultInjector::new(FaultConfig::uniform(0.08), 9000 + id).expect("valid fault config");
        corrupted.push(injector.corrupt_series(&clean, 0));
    }
    let max_len = corrupted.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..max_len {
        for (id, trace) in corrupted.iter().enumerate() {
            if let Some(&(minute, value)) = trace.get(i) {
                engine.push_at(id as u64, minute, value);
            }
        }
    }
    engine.flush();
    // Exercise the checkpoint path so its event shows up in the trace.
    let _ = engine.checkpoint();

    match args.format.as_str() {
        "prometheus" => print!("{}", engine.prometheus()),
        _ => {
            let dump = engine.obs_json();
            obs::expo::validate_json(&dump)
                .unwrap_or_else(|e| panic!("obs_dump produced invalid JSON: {e}"));
            println!("{dump}");
        }
    }
}
