//! Diagnostic: fleet serving throughput on synthetic multi-VM traces.
//!
//! Registers `--streams` heterogeneous vmsim workloads (per-stream seeds via
//! `vmsim::fleet`), drives `--samples` rounds of batched pushes through a
//! `--shards`-worker engine with lossless (Block) backpressure, then reports
//! throughput, push-latency percentiles and the fleet health rollup as one
//! JSON object on stdout. With `--duration SECONDS` the run is time-boxed
//! instead: full rounds are pushed until the budget elapses (at least one
//! round always runs, and rounds finish once started — sample accounting
//! stays exact). With `--ab` the binary instead runs interleaved pairs of
//! scratch-reuse and allocating engines (the `reuse_scratch` config knob) and
//! reports the per-arm throughputs plus the median speedup. With
//! `--ab-durability` the pairs are durability-on (WAL behind every ack,
//! default `OnRotate` fsync) versus durability-off engines, reporting the
//! throughput retained by the durable path — the WAL's full serving-path tax.
//! With `--ab-retrain` the pairs are pool-retraining (`--retrain-threads`,
//! default 2) versus inline engines; because the pool is contractually a pure
//! scheduling change, the mode also checkpoints both arms and reports (and
//! asserts) `bit_identical` — any serving divergence fails the run.
//!
//! Push-latency percentiles cover the *steady-state* rounds only: the first
//! `train_size` rounds per stream are warmup (ring fills, initial fits) whose
//! one-off costs would smear the tail. Warmup and steady call counts are
//! reported alongside so the exclusion is auditable.
//!
//! Run with:
//! `cargo run --release -p fleet --bin fleet_throughput -- --streams 1000 --samples 60 --shards 4`

use std::time::Instant;

use fleet::{
    BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine, StreamConfig, StreamId,
};
use obs::percentile_sorted;
use vmsim::fleet_signal;

/// Samples per timed `push_batch` call.
const PUSH_CHUNK: usize = 256;

struct Args {
    streams: u64,
    samples: u64,
    shards: usize,
    seed: u64,
    /// Wall-clock budget in seconds; caps the run at round granularity.
    duration: Option<f64>,
    /// Interleaved A/B: alternate scratch-reuse and allocating engines.
    ab: bool,
    /// Interleaved A/B: alternate durability-on and durability-off engines.
    ab_durability: bool,
    /// Interleaved A/B: alternate pool-retraining and inline engines.
    ab_retrain: bool,
    /// Off-worker retrain pool size (0 = retrain inline on shard workers).
    retrain_threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 1000,
        samples: 60,
        shards: 4,
        seed: 2007,
        duration: None,
        ab: false,
        ab_durability: false,
        ab_retrain: false,
        retrain_threads: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} expects an unsigned integer"))
        };
        match flag.as_str() {
            "--streams" => args.streams = take("--streams"),
            "--samples" => args.samples = take("--samples"),
            "--shards" => args.shards = take("--shards") as usize,
            "--seed" => args.seed = take("--seed"),
            "--ab" => args.ab = true,
            "--ab-durability" => args.ab_durability = true,
            "--ab-retrain" => args.ab_retrain = true,
            "--retrain-threads" => args.retrain_threads = take("--retrain-threads") as usize,
            "--duration" => {
                let v = it.next().unwrap_or_else(|| panic!("--duration expects a value"));
                let secs = v
                    .parse::<f64>()
                    .ok()
                    .filter(|d| d.is_finite() && *d > 0.0)
                    .unwrap_or_else(|| panic!("--duration expects positive seconds, got {v}"));
                args.duration = Some(secs);
            }
            other => panic!(
                "unknown flag {other}; supported: --streams --samples --shards --seed --duration \
                 --ab --ab-durability --ab-retrain --retrain-threads"
            ),
        }
    }
    args
}

/// One complete lossless run with the given scratch policy and optional
/// durability; returns samples/sec. Used by the interleaved A/B modes,
/// where per-push latency tracking would only add noise to the comparison.
fn run_arm_with(args: &Args, reuse_scratch: bool, durability: Option<DurabilityConfig>) -> f64 {
    let durable = durability.is_some();
    let engine = FleetEngine::new(FleetConfig {
        shards: args.shards,
        backpressure: BackpressurePolicy::Block,
        queue_capacity: 8192,
        fleet_seed: args.seed,
        reuse_scratch,
        durability,
        retrain_threads: args.retrain_threads,
        ..FleetConfig::default()
    })
    .expect("valid fleet config");
    let mut signals: Vec<_> = (0..args.streams)
        .map(|id| {
            engine.register(id).expect("fresh stream id");
            fleet_signal(args.seed, id)
        })
        .collect();
    let started = Instant::now();
    let mut batch: Vec<(StreamId, f64)> = Vec::with_capacity(PUSH_CHUNK);
    for minute in 0..args.samples {
        for (id, signal) in signals.iter_mut().enumerate() {
            batch.push((id as StreamId, signal.sample(minute)));
            if batch.len() == PUSH_CHUNK {
                engine.push_batch(&batch);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            engine.push_batch(&batch);
            batch.clear();
        }
    }
    if durable {
        // The durable arm pays its whole bill inside the timed region: the
        // drain ends with a WAL fsync.
        engine.flush_durable().expect("durable drain");
    } else {
        engine.flush();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total = args.streams * args.samples;
    let health = engine.health();
    assert_eq!(health.pushes.accepted, total, "Block backpressure must be lossless");
    assert_eq!(health.nonfinite_forecasts, 0, "non-finite forecast escaped the fleet");
    if durable {
        assert_eq!(
            engine.registry().counter("fleet_wal_failures_total").get(),
            0,
            "durable arm dropped WAL appends"
        );
    }
    total as f64 / elapsed
}

fn run_arm(args: &Args, reuse_scratch: bool) -> f64 {
    run_arm_with(args, reuse_scratch, None)
}

/// Interleaved A/B: alternate reuse/alloc engines so scheduler drift and
/// thermal state land on both arms equally, then compare medians.
fn run_ab(args: &Args) {
    const PAIRS: usize = 3;
    let mut reuse = Vec::with_capacity(PAIRS);
    let mut alloc = Vec::with_capacity(PAIRS);
    for _ in 0..PAIRS {
        reuse.push(run_arm(args, true));
        alloc.push(run_arm(args, false));
    }
    let median = |xs: &[f64]| {
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
        s[s.len() / 2]
    };
    let (reuse_med, alloc_med) = (median(&reuse), median(&alloc));
    let join = |xs: &[f64]| xs.iter().map(|v| format!("{v:.0}")).collect::<Vec<_>>().join(", ");
    println!("{{");
    println!("  \"mode\": \"ab\",");
    println!("  \"streams\": {},", args.streams);
    println!("  \"samples_per_stream\": {},", args.samples);
    println!("  \"shards\": {},", args.shards);
    println!("  \"seed\": {},", args.seed);
    println!("  \"pairs\": {PAIRS},");
    println!("  \"reuse_scratch_sps\": [{}],", join(&reuse));
    println!("  \"alloc_sps\": [{}],", join(&alloc));
    println!("  \"reuse_scratch_median_sps\": {reuse_med:.0},");
    println!("  \"alloc_median_sps\": {alloc_med:.0},");
    println!("  \"speedup\": {:.3}", reuse_med / alloc_med);
    println!("}}");
}

/// Interleaved A/B: durability-on versus durability-off. The headline
/// number is `durable_retained` — the fraction of in-memory throughput the
/// WAL-backed serving path keeps.
fn run_ab_durability(args: &Args) {
    const PAIRS: usize = 3;
    let base = std::env::temp_dir().join(format!("fleet-ab-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut durable = Vec::with_capacity(PAIRS);
    let mut plain = Vec::with_capacity(PAIRS);
    for pair in 0..PAIRS {
        let dir = base.join(format!("pair{pair}"));
        durable.push(run_arm_with(args, true, Some(DurabilityConfig::new(dir))));
        plain.push(run_arm_with(args, true, None));
    }
    let _ = std::fs::remove_dir_all(&base);
    let median = |xs: &[f64]| {
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
        s[s.len() / 2]
    };
    let (durable_med, plain_med) = (median(&durable), median(&plain));
    let join = |xs: &[f64]| xs.iter().map(|v| format!("{v:.0}")).collect::<Vec<_>>().join(", ");
    println!("{{");
    println!("  \"mode\": \"ab_durability\",");
    println!("  \"streams\": {},", args.streams);
    println!("  \"samples_per_stream\": {},", args.samples);
    println!("  \"shards\": {},", args.shards);
    println!("  \"seed\": {},", args.seed);
    println!("  \"pairs\": {PAIRS},");
    println!("  \"durable_sps\": [{}],", join(&durable));
    println!("  \"plain_sps\": [{}],", join(&plain));
    println!("  \"durable_median_sps\": {durable_med:.0},");
    println!("  \"plain_median_sps\": {plain_med:.0},");
    println!("  \"durable_retained\": {:.3}", durable_med / plain_med);
    println!("}}");
}

/// One lossless run with the given retrain-pool size; returns samples/sec
/// plus the end-of-run checkpoint bytes, serialized *outside* the timed
/// region, so the A/B can prove the pool changed scheduling and nothing else.
fn run_retrain_arm(args: &Args, retrain_threads: usize) -> (f64, Vec<u8>) {
    let engine = FleetEngine::new(FleetConfig {
        shards: args.shards,
        backpressure: BackpressurePolicy::Block,
        queue_capacity: 8192,
        fleet_seed: args.seed,
        retrain_threads,
        ..FleetConfig::default()
    })
    .expect("valid fleet config");
    let mut signals: Vec<_> = (0..args.streams)
        .map(|id| {
            engine.register(id).expect("fresh stream id");
            fleet_signal(args.seed, id)
        })
        .collect();
    let started = Instant::now();
    let mut batch: Vec<(StreamId, f64)> = Vec::with_capacity(PUSH_CHUNK);
    for minute in 0..args.samples {
        for (id, signal) in signals.iter_mut().enumerate() {
            batch.push((id as StreamId, signal.sample(minute)));
            if batch.len() == PUSH_CHUNK {
                engine.push_batch(&batch);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            engine.push_batch(&batch);
            batch.clear();
        }
    }
    engine.flush();
    let elapsed = started.elapsed().as_secs_f64();
    let total = args.streams * args.samples;
    let health = engine.health();
    assert_eq!(health.pushes.accepted, total, "Block backpressure must be lossless");
    assert_eq!(health.nonfinite_forecasts, 0, "non-finite forecast escaped the fleet");
    let checkpoint = engine.checkpoint().expect("checkpoint after drain");
    (total as f64 / elapsed, checkpoint)
}

/// Interleaved A/B: pool-retraining versus inline engines. Beyond the
/// throughput comparison, every pair's checkpoints must be byte-equal — the
/// pool's bit-identity contract (DESIGN.md §13), checked on real fleet
/// workload at full scale, under whichever kernel dispatch `LARP_KERNELS`
/// selected.
fn run_ab_retrain(args: &Args) {
    const PAIRS: usize = 3;
    let threads = if args.retrain_threads > 0 { args.retrain_threads } else { 2 };
    let mut pooled = Vec::with_capacity(PAIRS);
    let mut inline = Vec::with_capacity(PAIRS);
    let mut bit_identical = true;
    for _ in 0..PAIRS {
        let (pool_sps, pool_ckp) = run_retrain_arm(args, threads);
        let (inline_sps, inline_ckp) = run_retrain_arm(args, 0);
        pooled.push(pool_sps);
        inline.push(inline_sps);
        bit_identical &= pool_ckp == inline_ckp;
    }
    let median = |xs: &[f64]| {
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
        s[s.len() / 2]
    };
    let (pooled_med, inline_med) = (median(&pooled), median(&inline));
    let join = |xs: &[f64]| xs.iter().map(|v| format!("{v:.0}")).collect::<Vec<_>>().join(", ");
    println!("{{");
    println!("  \"mode\": \"ab_retrain\",");
    println!("  \"streams\": {},", args.streams);
    println!("  \"samples_per_stream\": {},", args.samples);
    println!("  \"shards\": {},", args.shards);
    println!("  \"seed\": {},", args.seed);
    println!("  \"retrain_threads\": {threads},");
    println!("  \"pairs\": {PAIRS},");
    println!("  \"pooled_sps\": [{}],", join(&pooled));
    println!("  \"inline_sps\": [{}],", join(&inline));
    println!("  \"pooled_median_sps\": {pooled_med:.0},");
    println!("  \"inline_median_sps\": {inline_med:.0},");
    println!("  \"speedup\": {:.3},", pooled_med / inline_med);
    println!("  \"bit_identical\": {bit_identical}");
    println!("}}");
    assert!(bit_identical, "retrain pool changed serving outcomes — checkpoint bytes diverged");
}

fn main() {
    let args = parse_args();
    if args.ab {
        run_ab(&args);
        return;
    }
    if args.ab_durability {
        run_ab_durability(&args);
        return;
    }
    if args.ab_retrain {
        run_ab_retrain(&args);
        return;
    }
    let engine = FleetEngine::new(FleetConfig {
        shards: args.shards,
        // Lossless under sustained overload: the producer stalls instead of
        // dropping samples, so the measured rate is the true serving rate.
        backpressure: BackpressurePolicy::Block,
        queue_capacity: 8192,
        fleet_seed: args.seed,
        retrain_threads: args.retrain_threads,
        ..FleetConfig::default()
    })
    .expect("valid fleet config");

    let mut signals: Vec<_> = (0..args.streams)
        .map(|id| {
            engine.register(id).expect("fresh stream id");
            fleet_signal(args.seed, id)
        })
        .collect();

    let started = Instant::now();
    let deadline = args.duration.map(|d| started + std::time::Duration::from_secs_f64(d));
    // Rounds before every ring holds `train_size` samples are warmup: they
    // carry the one-off initial fits, whose latency says nothing about the
    // steady serving path. Percentiles below come from steady rounds only.
    let warmup_rounds = StreamConfig::default().train_size as u64;
    let mut push_us: Vec<f64> = Vec::with_capacity(
        (args.streams * args.samples) as usize / PUSH_CHUNK + args.samples as usize,
    );
    let mut warmup_us: Vec<f64> = Vec::new();
    let mut batch: Vec<(StreamId, f64)> = Vec::with_capacity(PUSH_CHUNK);
    let mut rounds = 0u64;
    for minute in 0..args.samples {
        // Time-boxing cuts between rounds, never inside one, so every
        // registered stream sees the same number of samples.
        if minute > 0 && deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        rounds += 1;
        let sink = if minute < warmup_rounds { &mut warmup_us } else { &mut push_us };
        for (id, signal) in signals.iter_mut().enumerate() {
            batch.push((id as StreamId, signal.sample(minute)));
            if batch.len() == PUSH_CHUNK {
                let t = Instant::now();
                engine.push_batch(&batch);
                sink.push(t.elapsed().as_secs_f64() * 1e6);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            let t = Instant::now();
            engine.push_batch(&batch);
            sink.push(t.elapsed().as_secs_f64() * 1e6);
            batch.clear();
        }
    }
    engine.flush();
    let elapsed = started.elapsed().as_secs_f64();

    let health = engine.health();
    let total_samples = args.streams * rounds;
    let mut all_finite = true;
    for id in 0..args.streams {
        let info = engine.stream_info(id).expect("registered stream");
        if info.last_forecast.is_some_and(|f| !f.is_finite()) {
            all_finite = false;
        }
    }
    // A run shorter than the warmup window has no steady rounds; fall back
    // to the warmup measurements rather than reporting zeros.
    let steady_calls = push_us.len();
    let warmup_calls = warmup_us.len();
    if push_us.is_empty() {
        std::mem::swap(&mut push_us, &mut warmup_us);
    }
    push_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    println!("{{");
    println!("  \"streams\": {},", args.streams);
    println!("  \"samples_per_stream\": {rounds},");
    println!("  \"shards\": {},", args.shards);
    println!("  \"seed\": {},", args.seed);
    println!("  \"retrain_threads\": {},", args.retrain_threads);
    println!("  \"elapsed_sec\": {:.3},", elapsed);
    println!("  \"samples_per_sec\": {:.0},", total_samples as f64 / elapsed);
    println!("  \"streams_per_sec\": {:.1},", args.streams as f64 / elapsed);
    println!("  \"push_batch_size\": {PUSH_CHUNK},");
    // Ceil-rank percentiles (obs::percentile_sorted): the tail estimate
    // never understates — p99 of 100 samples is the maximum, not the 99th
    // smallest as the old nearest-rank rounding reported.
    println!("  \"push_p50_us\": {:.1},", percentile_sorted(&push_us, 0.50).unwrap_or(0.0));
    println!("  \"push_p99_us\": {:.1},", percentile_sorted(&push_us, 0.99).unwrap_or(0.0));
    println!("  \"push_warmup_rounds\": {},", rounds.min(warmup_rounds));
    println!("  \"push_warmup_calls\": {warmup_calls},");
    println!("  \"push_steady_calls\": {steady_calls},");
    println!("  \"accepted\": {},", health.pushes.accepted);
    println!("  \"rejected\": {},", health.pushes.rejected);
    println!("  \"dropped\": {},", health.pushes.dropped);
    println!("  \"steps\": {},", health.steps);
    println!("  \"forecasts\": {},", health.forecasts);
    println!("  \"nonfinite_forecasts\": {},", health.nonfinite_forecasts);
    println!("  \"retrains\": {},", health.retrains);
    println!("  \"degraded_streams\": {},", health.degraded_streams());
    println!("  \"quarantined_streams\": {},", health.quarantined_streams());
    println!("  \"all_forecasts_finite\": {all_finite},");
    // The registry-backed metric dump (events omitted to keep the artifact
    // small); the full exposition lives in the obs_dump binary.
    println!("  \"obs\": {}", obs::expo::json(engine.registry(), None));
    println!("}}");

    assert_eq!(health.pushes.accepted, total_samples, "Block backpressure must be lossless");
    assert_eq!(health.nonfinite_forecasts, 0, "non-finite forecast escaped the fleet");
    assert!(all_finite, "non-finite last forecast observed");
}
