//! SplitMix64 — a tiny, fast 64-bit generator (Steele, Lea & Flood 2014).
//!
//! Its main role here is seed expansion: turning a single `u64` seed into the
//! 256-bit state [`crate::Xoshiro256pp`] requires, as recommended by the xoshiro
//! authors. It is also a perfectly serviceable generator for low-stakes uses.

use crate::Rng64;

/// The SplitMix64 generator. One `u64` of state; period 2⁶⁴.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        // Reference constants from the published algorithm.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // First three outputs for seed 1234567, from the reference C
        // implementation (Vigna, prng.di.unimi.it).
        let mut rng = SplitMix64::new(1234567);
        let got = [rng.next_u64(), rng.next_u64(), rng.next_u64()];
        assert_eq!(got, [6457827717110365317, 3203168211198807973, 9817491932198370423]);
    }

    #[test]
    fn streams_with_different_seeds_differ() {
        let mut a = SplitMix64::new(0);
        let mut b = SplitMix64::new(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = SplitMix64::new(99);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
