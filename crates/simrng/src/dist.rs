//! Statistical distributions sampled from an [`Rng64`] stream.
//!
//! Each distribution is a small parameter struct with a fallible constructor
//! (parameters are validated once) and an infallible [`sample`](Normal::sample).
//! The samplers use textbook algorithms chosen for *determinism* rather than raw
//! speed: a given parameterisation always consumes the same number of `u64`s per
//! draw whenever possible, which keeps simulated traces stable under refactoring.

use crate::Rng64;

/// Error returned when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    /// Name of the distribution being constructed.
    pub dist: &'static str,
    /// Human-readable description of the violated constraint.
    pub reason: String,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.dist, self.reason)
    }
}

impl std::error::Error for ParamError {}

fn err(dist: &'static str, reason: String) -> ParamError {
    ParamError { dist, reason }
}

/// Gaussian distribution `N(mean, std_dev²)`, sampled with Box–Muller (polar form
/// rejected in favour of the trigonometric form for fixed consumption: exactly two
/// uniforms per pair of draws).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(err("Normal", format!("non-finite parameters ({mean}, {std_dev})")));
        }
        if std_dev < 0.0 {
            return Err(err("Normal", format!("std_dev must be >= 0, got {std_dev}")));
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, std_dev: 1.0 }
    }

    /// Draws one sample.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller, first branch only. Consumes exactly two uniforms per draw;
        // we deliberately discard the second variate to keep per-draw consumption
        // constant (determinism beats a 2x speedup here).
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std_dev * r * theta.cos()
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal with the given parameters of the underlying normal.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(Self { norm: Normal::new(mu, sigma).map_err(|e| err("LogNormal", e.reason))? })
    }

    /// Draws one sample (always positive).
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`), sampled by
/// inverse transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(err("Exponential", format!("rate must be > 0, got {lambda}")));
        }
        Ok(Self { lambda })
    }

    /// Creates an exponential distribution with the given mean (`1/lambda`).
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(err("Exponential", format!("mean must be > 0, got {mean}")));
        }
        Self::new(1.0 / mean)
    }

    /// Draws one sample (always non-negative).
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        -rng.next_f64_open().ln() / self.lambda
    }
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
///
/// Heavy-tailed; used for burst amplitudes and long-job service times in the VM
/// workload models, where occasional extreme values are essential to make traces
/// "peaky" in the sense of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `x_min > 0` and `alpha > 0` (both finite).
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, ParamError> {
        if !(x_min.is_finite() && x_min > 0.0) {
            return Err(err("Pareto", format!("x_min must be > 0, got {x_min}")));
        }
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(err("Pareto", format!("alpha must be > 0, got {alpha}")));
        }
        Ok(Self { x_min, alpha })
    }

    /// Draws one sample (always `>= x_min`).
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.x_min / rng.next_f64_open().powf(1.0 / self.alpha)
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Uses Knuth's multiplication method for `lambda <= 30` and a normal
/// approximation (rounded, clamped at zero) above — the workload models only use
/// small rates, the approximation path exists for robustness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(err("Poisson", format!("lambda must be > 0, got {lambda}")));
        }
        Ok(Self { lambda })
    }

    /// Draws one sample.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda <= 30.0 {
            let limit = (-self.lambda).exp();
            let mut product = rng.next_f64();
            let mut count = 0u64;
            while product > limit {
                product *= rng.next_f64();
                count += 1;
            }
            count
        } else {
            let n = Normal::new(self.lambda, self.lambda.sqrt())
                .expect("lambda validated at construction");
            n.sample(rng).round().max(0.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256pp;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let d = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn lognormal_is_positive_and_has_right_median() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        // Median of LogNormal(mu, sigma) is exp(mu).
        assert!((median - 1.0f64.exp()).abs() < 0.05, "median {median}");
    }

    #[test]
    fn exponential_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let d = Exponential::with_mean(2.5).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 2.5).abs() < 0.03, "mean {mean}");
        assert!((var - 6.25).abs() < 0.2, "var {var}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn exponential_rejects_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
    }

    #[test]
    fn pareto_respects_minimum_and_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let d = Pareto::new(1.0, 3.0).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        // Mean of Pareto(x_min=1, alpha=3) is alpha/(alpha-1) = 1.5.
        let (mean, _) = moments(&xs);
        assert!((mean - 1.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pareto_rejects_bad_params() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let d = Poisson::new(4.0).unwrap();
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_uses_gaussian_path() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let d = Poisson::new(100.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        assert!((var - 100.0).abs() < 3.0, "var {var}");
    }

    #[test]
    fn samples_are_reproducible() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut a = Xoshiro256pp::seed_from_u64(8);
        let mut b = Xoshiro256pp::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn param_error_displays_distribution_name() {
        let e = Normal::new(0.0, -1.0).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("Normal"), "{msg}");
    }
}
