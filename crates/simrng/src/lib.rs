//! Deterministic pseudo-random number generation for reproducible simulation.
//!
//! The VM trace simulator (crate `vmsim`) must produce *bit-identical* traces for a
//! given seed across library versions and platforms, because the reproduction
//! experiments (DESIGN.md) compare predictor rankings on fixed workloads. General
//! purpose RNG crates do not guarantee value stability across releases, so this crate
//! pins the exact algorithms:
//!
//! * [`SplitMix64`] — a tiny 64-bit generator used to expand seeds,
//! * [`Xoshiro256pp`] — the main generator (xoshiro256++ by Blackman & Vigna),
//! * [`dist`] — inverse-transform / Box–Muller style samplers for the distributions
//!   the workload models need (uniform, normal, log-normal, exponential, Pareto,
//!   Poisson, Bernoulli).
//!
//! All samplers consume randomness only through the [`Rng64`] trait, so any
//! deterministic `u64` source can be substituted in tests.
//!
//! # Example
//!
//! ```
//! use simrng::{Rng64, Xoshiro256pp, dist::Normal};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let gauss = Normal::new(0.0, 1.0).unwrap();
//! let x = gauss.sample(&mut rng);
//! assert!(x.is_finite());
//! // Same seed, same stream:
//! let mut rng2 = Xoshiro256pp::seed_from_u64(42);
//! assert_eq!(gauss.sample(&mut rng2), x);
//! ```
#![warn(missing_docs)]

pub mod dist;
mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// A deterministic source of 64-bit randomness.
///
/// Provided methods derive floats, bounded integers and shuffles from the raw
/// `u64` stream in a fixed, documented way so results never depend on the
/// implementing generator beyond its `next_u64` sequence.
pub trait Rng64 {
    /// Returns the next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the top 53 bits of `next_u64`, which yields every representable
    /// multiple of 2⁻⁵³ with equal probability.
    fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f64` in the open interval `(0, 1]`.
    ///
    /// Useful for samplers that take `ln` of the value (e.g. exponential).
    fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method; unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire 2018: fast unbiased bounded integers.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is non-finite.
    fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low <= high,
            "uniform: invalid range [{low}, {high})"
        );
        low + (high - low) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if it is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter "generator" for testing derived methods deterministically.
    struct Counter(u64);
    impl Rng64 for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            self.0
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn next_f64_open_never_zero() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::MAX] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        rng.next_below(0);
    }

    #[test]
    fn next_below_small_bound_covers_all_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        for _ in 0..1000 {
            let x = rng.uniform(-3.5, 8.25);
            assert!((-3.5..8.25).contains(&x));
        }
    }

    #[test]
    fn uniform_degenerate_range_returns_low() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        for _ in 0..100 {
            assert!(!rng.bernoulli(0.0));
            assert!(rng.bernoulli(1.0));
        }
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(0);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Counter(0);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(rng.choose(&v).unwrap()));
        }
    }
}
