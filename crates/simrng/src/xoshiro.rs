//! xoshiro256++ — the workspace's main generator (Blackman & Vigna 2019).
//!
//! 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush, and is extremely fast.
//! A [`jump`](Xoshiro256pp::jump) function provides 2¹²⁸ non-overlapping
//! subsequences so parallel workers can each own an independent stream derived
//! from one master seed.

use crate::{Rng64, SplitMix64};

/// The xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one inadmissible state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must be nonzero");
        Self { s }
    }

    /// Expands a 64-bit seed into a full state via [`SplitMix64`], per the
    /// xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // SplitMix64 output is equidistributed, so an all-zero expansion is
        // impossible in practice; assert anyway for safety.
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }

    /// Advances the generator by 2¹²⁸ steps.
    ///
    /// Calling `jump` n times on clones of one generator produces n + 1 streams
    /// that will not overlap for 2¹²⁸ draws each — enough to hand one stream to
    /// every parallel simulation worker.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] =
            [0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C];
        let mut acc = [0u64; 4];
        for &word in &JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Returns a child generator for worker `index`, leaving `self` untouched.
    ///
    /// Equivalent to cloning and jumping `index + 1` times; streams for
    /// different indices are non-overlapping.
    pub fn stream(&self, index: usize) -> Self {
        let mut child = self.clone();
        for _ in 0..=index {
            child.jump();
        }
        child
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Outputs for state {1, 2, 3, 4}, cross-checked against an independent
        // implementation of the published algorithm.
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "state must be nonzero")]
    fn zero_state_panics() {
        Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_changes_stream() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = a.clone();
        b.jump();
        let overlap = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn stream_indices_produce_distinct_generators() {
        let master = Xoshiro256pp::seed_from_u64(99);
        let mut s0 = master.stream(0);
        let mut s1 = master.stream(1);
        let mut s2 = master.stream(2);
        let a: Vec<u64> = (0..100).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..100).map(|_| s1.next_u64()).collect();
        let c: Vec<u64> = (0..100).map(|_| s2.next_u64()).collect();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_pure() {
        let master = Xoshiro256pp::seed_from_u64(5);
        let mut x = master.stream(3);
        let mut y = master.stream(3);
        assert_eq!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn mean_of_unit_floats_is_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
