//! In-process cluster integration: live drain migration over the wire,
//! and warm-standby failover taking over a dead peer's streams — both
//! bit-identical to an uninterrupted single-engine reference, f32-mode
//! streams included.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cluster::{ClusterClient, ClusterClientConfig, ClusterNode, NodeConfig, NodeInfo, Ring};
use fleet::{BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine, StreamConfig};
use larp::ResilienceConfig;
use netserve::{Client, ClientConfig, ServerConfig};
use obs::EventKind;
use vmsim::fleet_signal;

const SEED: u64 = 2032;
const STREAMS: u64 = 16;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cluster-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fleet_config(wal_dir: Option<PathBuf>) -> FleetConfig {
    FleetConfig {
        shards: 2,
        fleet_seed: SEED,
        backpressure: BackpressurePolicy::Block,
        durability: wal_dir.map(DurabilityConfig::new),
        ..FleetConfig::default()
    }
}

fn start_node(name: &str, root: &Path, standby_interval: Duration, peers: &[&str]) -> ClusterNode {
    let mut peer_wal_dirs = HashMap::new();
    for peer in peers {
        peer_wal_dirs.insert(peer.to_string(), root.join(peer));
    }
    ClusterNode::start(NodeConfig {
        name: name.into(),
        server: ServerConfig { http_addr: None, ..ServerConfig::default() },
        fleet: fleet_config(Some(root.join(name))),
        standby_interval,
        peer_wal_dirs,
    })
    .expect("node starts")
}

fn two_node_ring(a: &ClusterNode, b: &ClusterNode) -> Ring {
    Ring::new(
        1,
        32,
        vec![
            NodeInfo { name: "a".into(), addr: a.addr().to_string() },
            NodeInfo { name: "b".into(), addr: b.addr().to_string() },
        ],
    )
    .expect("ring")
}

fn cluster_client(ring: &Ring) -> ClusterClient {
    let seeds: Vec<String> = ring.nodes().iter().map(|n| n.addr.clone()).collect();
    ClusterClient::connect(
        &seeds,
        ClusterClientConfig {
            route_attempts: 20,
            retry_pause: Duration::from_millis(100),
            ..ClusterClientConfig::default()
        },
    )
    .expect("cluster client connects")
}

/// Registers the fleet on cluster and control alike: stream `f32_id` in
/// f32-history mode (via the owning engine — a server-side knob), the
/// rest over the wire with engine defaults.
fn register_fleet(
    client: &mut ClusterClient,
    control: &FleetEngine,
    f32_id: u64,
    f32_owner: &ClusterNode,
) {
    let f32_config = StreamConfig {
        resilience: ResilienceConfig { f32_history: true, ..ResilienceConfig::default() },
        ..StreamConfig::default()
    };
    for id in 0..STREAMS {
        if id == f32_id {
            f32_owner.engine().register_with(id, &f32_config).expect("register f32 stream");
            control.register_with(id, &f32_config).expect("control f32");
        } else {
            client.register(id).expect("register via ring");
            control.register(id).expect("control register");
        }
    }
}

/// One minute of every stream's deterministic signal.
fn minute_batch(minute: u64) -> Vec<(u64, f64)> {
    (0..STREAMS)
        .map(|id| {
            let mut signal = fleet_signal(SEED, id);
            (id, signal.sample(minute))
        })
        .collect()
}

fn drive(client: &mut ClusterClient, control: &FleetEngine, from: u64, to: u64) -> (u64, u64) {
    let mut accepted = 0;
    let mut deduped = 0;
    for minute in from..to {
        let batch = minute_batch(minute);
        let stats = client.push(&batch).expect("cluster push");
        accepted += stats.accepted;
        deduped += stats.deduped;
        control.push_batch(&batch);
    }
    (accepted, deduped)
}

/// What must stay bit-identical wherever a stream lands. Serving tallies
/// (steps, forecasts) restart on a restored engine by design; predictor
/// state and the clock must not.
fn fingerprint(engine: &FleetEngine, id: u64) -> (u64, usize, Option<u64>) {
    let info = engine.stream_info(id).expect("stream info");
    (info.next_minute, info.retrains, info.last_forecast.map(f64::to_bits))
}

fn owned_by(ring: &Ring, name: &str) -> Vec<u64> {
    (0..STREAMS).filter(|&id| ring.owner_of(id).name == name).collect()
}

#[test]
fn live_drain_migrates_streams_and_redirects_clients() {
    let root = temp_dir("drain");
    // Standby interval effectively off: this test isolates the migration
    // path from the failover path.
    let mut node_a = start_node("a", &root, Duration::from_secs(3600), &[]);
    let mut node_b = start_node("b", &root, Duration::from_secs(3600), &[]);
    let ring1 = two_node_ring(&node_a, &node_b);
    node_a.install_ring(&ring1).expect("install on a");
    node_b.install_ring(&ring1).expect("install on b");

    let a_owned = owned_by(&ring1, "a");
    let b_owned = owned_by(&ring1, "b");
    assert!(!a_owned.is_empty() && !b_owned.is_empty(), "both nodes own streams");

    let control = FleetEngine::new(fleet_config(None)).expect("control");
    let mut client = cluster_client(&ring1);
    register_fleet(&mut client, &control, a_owned[0], &node_a);

    let (accepted, deduped) = drive(&mut client, &control, 0, 100);
    assert_eq!(accepted, 100 * STREAMS, "warmup fully acked");
    assert_eq!(deduped, 0, "no retries expected during warmup");

    // Coordinator drains node a: per-stream MigrateOut → MigrateIn →
    // Evict, all over the wire, while the cluster keeps serving.
    let coord_config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(10),
        ..ClientConfig::default()
    };
    let mut coord_a = Client::connect(node_a.addr(), coord_config.clone()).expect("coord a");
    let mut coord_b = Client::connect(node_b.addr(), coord_config).expect("coord b");
    let b_addr = node_b.addr().to_string();
    for &id in &a_owned {
        let (next_minute, floor, snapshot) = coord_a.migrate_out(id, &b_addr).expect("out");
        assert_eq!(next_minute, 100);
        assert_eq!(floor, 100, "floor counts applied samples");
        coord_b.migrate_in(id, next_minute, floor, snapshot.clone()).expect("in");
        // A coordinator retry after a lost ack is idempotent.
        coord_b.migrate_in(id, next_minute, floor, snapshot).expect("retried in");
        coord_a.evict(id).expect("evict on loser");
    }
    assert_eq!(node_a.engine().stream_count(), 0, "loser fully drained");

    // The client still routes by ring v1: its pushes hit the loser's
    // fence, follow the NotOwner redirect to the gainer, and land —
    // before any ring update is published.
    let (accepted, deduped) = drive(&mut client, &control, 100, 110);
    assert_eq!(accepted, 10 * STREAMS, "every sample landed through redirects");
    assert_eq!(deduped, 0);

    // Publish ring v2 (a drained into b); the client adopts it.
    let mut ring2 = ring1.clone();
    ring2.reassign("a", "b").expect("drain a");
    node_a.install_ring(&ring2).expect("v2 on a");
    node_b.install_ring(&ring2).expect("v2 on b");
    assert!(client.refresh_ring(), "client adopts the newer ring");
    assert_eq!(client.ring().owner_of(a_owned[0]).name, "b");

    let (accepted, _) = drive(&mut client, &control, 110, 160);
    assert_eq!(accepted, 50 * STREAMS);

    node_b.engine().flush();
    control.flush();
    for id in 0..STREAMS {
        assert_eq!(
            fingerprint(node_b.engine(), id),
            fingerprint(&control, id),
            "stream {id} diverged across the drain"
        );
    }
    // Forecasts keep flowing through the client, bit-identical.
    let reply = client.predict(a_owned[0]).expect("predict after drain");
    let expect = control.stream_info(a_owned[0]).expect("control info").last_forecast;
    assert_eq!(reply.forecast.map(f64::to_bits), expect.map(f64::to_bits));

    node_a.shutdown();
    node_b.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn warm_standby_failover_takes_over_the_dead_peers_streams() {
    let root = temp_dir("failover");
    let mut node_a = start_node("a", &root, Duration::from_millis(50), &["b"]);
    let mut node_b = start_node("b", &root, Duration::from_millis(50), &["a"]);
    let ring1 = two_node_ring(&node_a, &node_b);
    node_a.install_ring(&ring1).expect("install on a");
    node_b.install_ring(&ring1).expect("install on b");

    let a_owned = owned_by(&ring1, "a");
    assert!(!a_owned.is_empty(), "node a owns streams");

    let control = FleetEngine::new(fleet_config(None)).expect("control");
    let mut client = cluster_client(&ring1);
    register_fleet(&mut client, &control, a_owned[0], &node_a);

    drive(&mut client, &control, 0, 120);

    // Wait until b's standby buffer holds a's whole fleet (the feed runs
    // every 50ms; the deadline is generous).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let covered = node_b
            .standby_summary()
            .iter()
            .find(|(source, _, _)| source == "a")
            .map(|(_, snapshots, _)| *snapshots)
            .unwrap_or(0);
        if covered >= a_owned.len() {
            break;
        }
        assert!(Instant::now() < deadline, "standby feed never covered node a's streams");
        std::thread::sleep(Duration::from_millis(20));
    }

    // More traffic after the snapshot cut: the tail the heir must close
    // from WAL records (buffered or read from a's directory).
    drive(&mut client, &control, 120, 140);

    // Node a dies. (Graceful here — the kill -9 variant runs in
    // cluster_bench where processes are real.) Its WAL survives on disk.
    node_a.shutdown();

    let mut ring2 = ring1.clone();
    let heir = ring2.fail_over("a").expect("fail over a");
    assert_eq!(heir, "b", "b is a's ring successor");
    node_b.install_ring(&ring2).expect("takeover install");

    // Takeover happened synchronously inside the install.
    node_b.engine().flush();
    control.flush();
    for id in 0..STREAMS {
        assert_eq!(
            fingerprint(node_b.engine(), id),
            fingerprint(&control, id),
            "stream {id} diverged across failover (f32 stream is {})",
            a_owned[0]
        );
    }
    let takeover_events: Vec<_> = node_b
        .engine()
        .events()
        .recent()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::FailoverTakeover { .. }))
        .collect();
    assert_eq!(takeover_events.len(), 1, "exactly one takeover ran");
    if let EventKind::FailoverTakeover { streams, .. } = takeover_events[0].kind {
        assert_eq!(streams, a_owned.len() as u64, "every a-owned stream materialized");
    }

    // The client rides the failure out: pushes to the dead node fail,
    // the ring refresh reroutes to the heir, sequenced dedup keeps the
    // handoff exactly-once.
    let (accepted, deduped) = drive(&mut client, &control, 140, 180);
    assert_eq!(accepted, 40 * STREAMS, "post-failover traffic fully acked");
    assert_eq!(deduped, 0, "no acked sample was resent");
    assert_eq!(client.ring().version(), ring2.version(), "client adopted the failover ring");

    node_b.engine().flush();
    control.flush();
    for id in 0..STREAMS {
        assert_eq!(
            fingerprint(node_b.engine(), id),
            fingerprint(&control, id),
            "stream {id} diverged after failover traffic"
        );
    }
    let reply = client.predict(a_owned[0]).expect("predict on the heir");
    let expect = control.stream_info(a_owned[0]).expect("control info").last_forecast;
    assert_eq!(reply.forecast.map(f64::to_bits), expect.map(f64::to_bits));

    node_b.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
