//! 3-node regression: a live drain (a→c) followed by a failover (b→c)
//! onto the *same* heir. The drain's `Drained` inheritance edge must not
//! trigger a takeover on install — replaying the drained node's WAL
//! (which ends in the drain's `Evict` records) would evict the freshly
//! migrated streams from the heir. The failover's `Failed` edge must.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use cluster::{ClusterClient, ClusterClientConfig, ClusterNode, NodeConfig, NodeInfo, Ring};
use fleet::{BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine};
use netserve::{Client, ClientConfig, ServerConfig};
use vmsim::fleet_signal;

const SEED: u64 = 2033;
const STREAMS: u64 = 36;

fn fleet_config(wal_dir: Option<PathBuf>) -> FleetConfig {
    FleetConfig {
        shards: 4,
        fleet_seed: SEED,
        backpressure: BackpressurePolicy::Block,
        durability: wal_dir.map(DurabilityConfig::new),
        ..FleetConfig::default()
    }
}

fn start_node(name: &str, root: &std::path::Path, peers: &[&str]) -> ClusterNode {
    let mut peer_wal_dirs = HashMap::new();
    for peer in peers {
        peer_wal_dirs.insert(peer.to_string(), root.join(peer));
    }
    ClusterNode::start(NodeConfig {
        name: name.into(),
        server: ServerConfig { http_addr: None, ..ServerConfig::default() },
        fleet: fleet_config(Some(root.join(name))),
        standby_interval: Duration::from_millis(50),
        peer_wal_dirs,
    })
    .expect("node starts")
}

fn minute_batch(minute: u64) -> Vec<(u64, f64)> {
    (0..STREAMS)
        .map(|id| {
            let mut signal = fleet_signal(SEED, id);
            (id, signal.sample(minute))
        })
        .collect()
}

#[test]
fn drained_edges_do_not_replay_the_losers_wal_on_the_heir() {
    let root = std::env::temp_dir().join(format!("cluster-repro3-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut node_a = start_node("a", &root, &["b", "c"]);
    let mut node_b = start_node("b", &root, &["a", "c"]);
    let mut node_c = start_node("c", &root, &["a", "b"]);
    let ring1 = Ring::new(
        1,
        64,
        vec![
            NodeInfo { name: "a".into(), addr: node_a.addr().to_string() },
            NodeInfo { name: "b".into(), addr: node_b.addr().to_string() },
            NodeInfo { name: "c".into(), addr: node_c.addr().to_string() },
        ],
    )
    .expect("ring v1");
    for node in [&node_a, &node_b, &node_c] {
        node.install_ring(&ring1).expect("install v1");
    }

    let control = FleetEngine::new(fleet_config(None)).expect("control");
    let seeds: Vec<String> =
        vec![node_a.addr().to_string(), node_b.addr().to_string(), node_c.addr().to_string()];
    let mut client = ClusterClient::connect(
        &seeds,
        ClusterClientConfig {
            route_attempts: 20,
            retry_pause: Duration::from_millis(100),
            ..ClusterClientConfig::default()
        },
    )
    .expect("client");
    for id in 0..STREAMS {
        client.register(id).expect("register");
        control.register(id).expect("control register");
    }
    for minute in 0..240 {
        let batch = minute_batch(minute);
        let stats = client.push(&batch).expect("warm push");
        assert_eq!(stats.accepted, STREAMS, "minute {minute}");
        control.push_batch(&batch);
    }

    let a_owned: Vec<u64> = (0..STREAMS).filter(|&id| ring1.owner_of(id).name == "a").collect();
    let coord_cfg =
        ClientConfig { request_timeout: Duration::from_secs(10), ..ClientConfig::default() };
    let mut coord_a = Client::connect(node_a.addr(), coord_cfg.clone()).expect("coord a");
    let mut coord_c = Client::connect(node_c.addr(), coord_cfg).expect("coord c");
    let c_addr = node_c.addr().to_string();
    for &id in &a_owned {
        let (next_minute, floor, snapshot) = coord_a.migrate_out(id, &c_addr).expect("out");
        coord_c.migrate_in(id, next_minute, floor, snapshot).expect("in");
        coord_a.evict(id).expect("evict");
    }
    let mut ring2 = ring1.clone();
    ring2.reassign("a", "c").expect("drain a");
    for node in [&node_a, &node_b, &node_c] {
        node.install_ring(&ring2).expect("install v2");
    }
    assert!(client.refresh_ring());
    for &id in &a_owned {
        assert!(node_c.engine().contains(id), "post-drain: c holds {id}");
    }

    for minute in 240..300 {
        let batch = minute_batch(minute);
        let stats = client.push(&batch).expect("mid push");
        assert_eq!(stats.accepted, STREAMS, "minute {minute}");
        control.push_batch(&batch);
    }

    // Wait for b's standby feed to cover its fleet on c.
    let b_owned: Vec<u64> = (0..STREAMS).filter(|&id| ring2.owner_of(id).name == "b").collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let covered = node_c
            .standby_summary()
            .iter()
            .find(|(source, _, _)| source == "b")
            .map(|(_, snapshots, _)| *snapshots)
            .unwrap_or(0);
        if covered >= b_owned.len() {
            break;
        }
        assert!(Instant::now() < deadline, "standby feed never covered b");
        std::thread::sleep(Duration::from_millis(20));
    }
    node_b.shutdown();
    let mut ring3 = ring2.clone();
    let heir = ring3.fail_over("b").expect("fail over b");
    assert_eq!(heir, "c");
    node_c.install_ring(&ring3).expect("install v3 on c");
    node_a.install_ring(&ring3).expect("install v3 on a");

    for &id in &a_owned {
        assert!(node_c.engine().contains(id), "post-takeover: c lost migrated stream {id}");
    }
    for &id in &b_owned {
        assert!(node_c.engine().contains(id), "post-takeover: c missing failed-over {id}");
    }

    for minute in 300..340 {
        let batch = minute_batch(minute);
        let stats = client.push(&batch).expect("post push");
        assert_eq!(stats.accepted + stats.deduped, STREAMS, "minute {minute}");
        control.push_batch(&batch);
    }
    node_c.engine().flush();
    control.flush();
    for id in 0..STREAMS {
        let info = node_c.engine().stream_info(id).expect("on heir");
        let expect = control.stream_info(id).expect("control");
        assert_eq!(
            (info.next_minute, info.retrains, info.last_forecast.map(f64::to_bits)),
            (expect.next_minute, expect.retrains, expect.last_forecast.map(f64::to_bits)),
            "stream {id} diverged"
        );
    }

    node_a.shutdown();
    node_c.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
