//! The warm-standby feed codec: what a node streams to its ring successor
//! so the successor can take over its streams with a bounded gap.
//!
//! Two chunk kinds travel inside `StandbyFeed` requests (opaque to
//! netserve):
//!
//! * **Snapshots** — LARPSNAP blobs of every stream whose state advanced
//!   since the previous cycle, stamped with the WAL sequence the cut
//!   covers. A standby holding these needs only WAL records *after* the
//!   cut.
//! * **WAL tail** — raw `(seq, record)` pairs appended since the previous
//!   cycle. At takeover the heir replays buffered records beyond the
//!   snapshot cut (merged with the dead node's on-disk tail, read via
//!   [`store::read_tail`]) to close the gap.
//!
//! Chunks are CRC-framed and the feeder splits them under
//! [`MAX_CHUNK_BYTES`], well below the wire's 1 MiB request cap.

use store::{RegisterTuning, Sample, WalRecord};

use crate::ClusterError;

/// Feed chunk magic ("LARPFEED").
pub const FEED_MAGIC: &[u8; 8] = b"LARPFEED";

/// Feed format version.
pub const FEED_FORMAT: u8 = 1;

/// Soft payload budget per chunk; the feeder starts a new chunk beyond it.
pub const MAX_CHUNK_BYTES: usize = 256 * 1024;

const KIND_SNAPSHOTS: u8 = 1;
const KIND_WAL_TAIL: u8 = 2;

const REC_SAMPLES: u8 = 1;
const REC_REGISTER: u8 = 2;
const REC_EVICT: u8 = 3;

/// One warm-standby feed chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedChunk {
    /// Snapshot deltas: streams whose state advanced since the last cut.
    Snapshots {
        /// Feeding node's name (the standby buffers per source).
        source: String,
        /// Highest WAL sequence these snapshots cover.
        covered_seq: u64,
        /// `(stream, next_minute, LARPSNAP blob)` per dirty stream.
        streams: Vec<(u64, u64, Vec<u8>)>,
    },
    /// WAL-tail records appended since the previous cycle.
    WalTail {
        /// Feeding node's name.
        source: String,
        /// `(seq, record)` pairs in sequence order.
        records: Vec<(u64, WalRecord)>,
    },
}

impl FeedChunk {
    /// Encodes the chunk: magic, format, kind, body, CRC-32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(FEED_MAGIC);
        out.push(FEED_FORMAT);
        match self {
            FeedChunk::Snapshots { source, covered_seq, streams } => {
                out.push(KIND_SNAPSHOTS);
                put_str(&mut out, source);
                out.extend_from_slice(&covered_seq.to_le_bytes());
                out.extend_from_slice(&(streams.len() as u32).to_le_bytes());
                for (id, next_minute, blob) in streams {
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&next_minute.to_le_bytes());
                    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                    out.extend_from_slice(blob);
                }
            }
            FeedChunk::WalTail { source, records } => {
                out.push(KIND_WAL_TAIL);
                put_str(&mut out, source);
                out.extend_from_slice(&(records.len() as u32).to_le_bytes());
                for (seq, record) in records {
                    out.extend_from_slice(&seq.to_le_bytes());
                    put_record(&mut out, record);
                }
            }
        }
        let crc = store::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes one chunk, validating magic, format, kind and CRC.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Node`] for truncation, bad magic/CRC, or an
    /// unknown kind — the receiving server surfaces it as a wire error.
    pub fn decode(bytes: &[u8]) -> Result<FeedChunk, ClusterError> {
        if bytes.len() < FEED_MAGIC.len() + 2 + 4 {
            return Err(bad("feed chunk truncated"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
        if store::crc32(body) != crc {
            return Err(bad("feed chunk CRC mismatch"));
        }
        let mut cur = Cur { buf: body, pos: 0 };
        if cur.take(FEED_MAGIC.len())? != FEED_MAGIC {
            return Err(bad("bad feed magic"));
        }
        let format = cur.u8()?;
        if format != FEED_FORMAT {
            return Err(bad(&format!("unsupported feed format {format}")));
        }
        let chunk = match cur.u8()? {
            KIND_SNAPSHOTS => {
                let source = cur.str()?;
                let covered_seq = cur.u64()?;
                let count = cur.u32()? as usize;
                let mut streams = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let id = cur.u64()?;
                    let next_minute = cur.u64()?;
                    let len = cur.u32()? as usize;
                    streams.push((id, next_minute, cur.take(len)?.to_vec()));
                }
                FeedChunk::Snapshots { source, covered_seq, streams }
            }
            KIND_WAL_TAIL => {
                let source = cur.str()?;
                let count = cur.u32()? as usize;
                let mut records = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let seq = cur.u64()?;
                    records.push((seq, take_record(&mut cur)?));
                }
                FeedChunk::WalTail { source, records }
            }
            other => return Err(bad(&format!("unknown feed chunk kind {other}"))),
        };
        if cur.pos != cur.buf.len() {
            return Err(bad("trailing bytes after feed chunk"));
        }
        Ok(chunk)
    }

    /// Approximate encoded size, used by the feeder to split chunks under
    /// [`MAX_CHUNK_BYTES`].
    pub fn approx_len(&self) -> usize {
        match self {
            FeedChunk::Snapshots { streams, .. } => {
                32 + streams.iter().map(|(_, _, b)| 20 + b.len()).sum::<usize>()
            }
            FeedChunk::WalTail { records, .. } => {
                32 + records
                    .iter()
                    .map(|(_, r)| match r {
                        WalRecord::Samples(v) => 16 + v.len() * 18,
                        _ => 48,
                    })
                    .sum::<usize>()
            }
        }
    }
}

fn bad(msg: &str) -> ClusterError {
    ClusterError::Node(msg.to_string())
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "node names are short");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_record(out: &mut Vec<u8>, record: &WalRecord) {
    match record {
        WalRecord::Samples(samples) => {
            out.push(REC_SAMPLES);
            out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
            for s in samples {
                out.extend_from_slice(&s.stream.to_le_bytes());
                match s.minute {
                    Some(m) => {
                        out.push(1);
                        out.extend_from_slice(&m.to_le_bytes());
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&s.value.to_bits().to_le_bytes());
            }
        }
        WalRecord::Register { id, tuning } => {
            out.push(REC_REGISTER);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&tuning.train_size.to_le_bytes());
            out.extend_from_slice(&tuning.qa_window.to_le_bytes());
            out.extend_from_slice(&tuning.qa_period.to_le_bytes());
            out.extend_from_slice(&tuning.qa_threshold.to_bits().to_le_bytes());
            out.push(tuning.f32_history as u8);
        }
        WalRecord::Evict { id } => {
            out.push(REC_EVICT);
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
}

fn take_record(cur: &mut Cur<'_>) -> Result<WalRecord, ClusterError> {
    match cur.u8()? {
        REC_SAMPLES => {
            let count = cur.u32()? as usize;
            let mut samples = Vec::with_capacity(count.min(65536));
            for _ in 0..count {
                let stream = cur.u64()?;
                let minute = match cur.u8()? {
                    0 => None,
                    1 => Some(cur.u64()?),
                    other => return Err(bad(&format!("bad minute flag {other}"))),
                };
                let value = f64::from_bits(cur.u64()?);
                samples.push(Sample { stream, minute, value });
            }
            Ok(WalRecord::Samples(samples))
        }
        REC_REGISTER => {
            let id = cur.u64()?;
            let tuning = RegisterTuning {
                train_size: cur.u32()?,
                qa_window: cur.u32()?,
                qa_period: cur.u32()?,
                qa_threshold: f64::from_bits(cur.u64()?),
                f32_history: cur.u8()? != 0,
            };
            Ok(WalRecord::Register { id, tuning })
        }
        REC_EVICT => Ok(WalRecord::Evict { id: cur.u64()? }),
        other => Err(bad(&format!("unknown wal record kind {other}"))),
    }
}

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ClusterError> {
        if self.buf.len() - self.pos < n {
            return Err(bad("feed chunk truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ClusterError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ClusterError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ClusterError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, ClusterError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")) as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| bad("non-UTF-8 feed string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kinds_round_trip() {
        let snap = FeedChunk::Snapshots {
            source: "a".into(),
            covered_seq: 412,
            streams: vec![(3, 120, vec![1, 2, 3, 255]), (9, 77, Vec::new())],
        };
        assert_eq!(FeedChunk::decode(&snap.encode()).expect("snapshots"), snap);

        let wal = FeedChunk::WalTail {
            source: "b".into(),
            records: vec![
                (
                    413,
                    WalRecord::Samples(vec![
                        Sample { stream: 3, minute: None, value: 1.5 },
                        Sample { stream: 9, minute: Some(78), value: f64::NAN },
                    ]),
                ),
                (
                    414,
                    WalRecord::Register {
                        id: 11,
                        tuning: RegisterTuning {
                            train_size: 40,
                            qa_window: 8,
                            qa_period: 4,
                            qa_threshold: 2.0,
                            f32_history: true,
                        },
                    },
                ),
                (415, WalRecord::Evict { id: 9 }),
            ],
        };
        let back = FeedChunk::decode(&wal.encode()).expect("wal tail");
        // NaN breaks PartialEq; compare through the encoder instead.
        assert_eq!(back.encode(), wal.encode());
    }

    #[test]
    fn corruption_and_truncation_are_rejected() {
        let chunk = FeedChunk::Snapshots {
            source: "a".into(),
            covered_seq: 1,
            streams: vec![(1, 2, vec![9; 64])],
        };
        let blob = chunk.encode();
        let mut bad = blob.clone();
        bad[20] ^= 0x40;
        assert!(FeedChunk::decode(&bad).is_err(), "CRC must catch flips");
        assert!(FeedChunk::decode(&blob[..blob.len() - 5]).is_err());
        assert!(FeedChunk::decode(b"short").is_err());
    }
}
