//! Cluster tier: consistent-hash placement, live stream migration, and
//! warm-standby failover for a fleet of [`netserve`] nodes.
//!
//! The fleet engine scales serving across threads; netserve across
//! machines behind one listener. This crate scales it across *nodes*
//! without a coordinator in the data path:
//!
//! * [`ring`] — a consistent-hash ring (virtual nodes, deterministic
//!   `StreamId → node` placement) shared verbatim by servers and clients.
//!   Rings are versioned, CRC-framed blobs; every node serves its copy
//!   through the `RingInfo` opcode and refuses stale installs, so the
//!   newest ring wins everywhere without consensus.
//! * [`client`] — [`ClusterClient`], a ring-aware client that routes
//!   register/push/predict to the owning node, follows `NotOwner`
//!   redirects while a migration fence is up, and retries sequenced
//!   pushes with at-least-once sends that the server-side dedup table
//!   turns into exactly-once ingestion.
//! * [`node`] — [`ClusterNode`], a netserve server plus the cluster
//!   plumbing: ring hooks for redirects, a warm-standby feeder thread
//!   streaming snapshot deltas and WAL-tail records to the ring
//!   successor, standby buffering for peers, and failover takeover that
//!   materializes a dead peer's streams from buffered state plus the
//!   dead node's on-disk WAL tail.
//! * [`feed`] — the standby feed codec ([`FeedChunk`]): snapshot-delta
//!   and WAL-tail chunks, CRC-framed, sized under the wire's request cap.
//!
//! Placement, migration and failover share one invariant: a stream's
//! state is bit-exact wherever it lands. Migration moves LARPSNAP blobs
//! over the wire and arms the gaining node's dedup floor; failover
//! restores the same blobs from standby and replays the WAL tail beyond
//! them; `cluster_bench` proves a `kill -9` mid-traffic loses no acked
//! sample and converges bit-identically with an uninterrupted
//! single-engine reference (DESIGN.md §12).
#![warn(missing_docs)]

pub mod client;
pub mod feed;
pub mod node;
pub mod ring;

pub use client::{ClusterClient, ClusterClientConfig, PushStats};
pub use feed::FeedChunk;
pub use node::{ClusterNode, NodeConfig};
pub use ring::{HandoffKind, NodeInfo, Ring};

/// Errors surfaced by the cluster tier.
#[derive(Debug)]
pub enum ClusterError {
    /// Ring construction, codec, or membership failure.
    Ring(String),
    /// A network operation failed terminally (after redirects/retries).
    Net(netserve::NetError),
    /// A local engine operation failed.
    Fleet(fleet::FleetError),
    /// Routing gave up: samples or requests left unacked after the retry
    /// budget, e.g. the owner stayed unreachable and no newer ring showed
    /// up.
    Routing(String),
    /// Node-side failure (feeder, standby, takeover).
    Node(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Ring(m) => write!(f, "ring: {m}"),
            ClusterError::Net(e) => write!(f, "net: {e}"),
            ClusterError::Fleet(e) => write!(f, "fleet: {e}"),
            ClusterError::Routing(m) => write!(f, "routing: {m}"),
            ClusterError::Node(m) => write!(f, "node: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<netserve::NetError> for ClusterError {
    fn from(e: netserve::NetError) -> Self {
        ClusterError::Net(e)
    }
}

impl From<fleet::FleetError> for ClusterError {
    fn from(e: fleet::FleetError) -> Self {
        ClusterError::Fleet(e)
    }
}
