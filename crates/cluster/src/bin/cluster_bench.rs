//! 3-node kill-test harness: proves the cluster tier end to end.
//!
//! The harness self-spawns (via `current_exe`) three child copies running
//! `--role node`, each a durable [`cluster::ClusterNode`] on an ephemeral
//! localhost port (address published through an addr-file). The parent
//! then plays coordinator and client:
//!
//! 1. installs ring v1 (all three nodes) and registers `--streams`
//!    streams through a [`cluster::ClusterClient`], mirrored into an
//!    in-process non-durable reference engine,
//! 2. drives warmup traffic (timed → aggregate samples/s),
//! 3. **live-drains node a**: per-stream `MigrateOut` → `MigrateIn` →
//!    `Evict` over the wire (timed → migration streams/s), then publishes
//!    ring v2 (`a` reassigned to `c`),
//! 4. **kills node b with SIGKILL mid-traffic** while a pusher thread
//!    keeps the client running; the parent publishes ring v3
//!    (`fail_over("b")` → heir `c`), whose install makes `c` materialize
//!    b's streams from its warm-standby buffer plus b's on-disk WAL tail,
//! 5. measures the client-visible outage as the largest gap between
//!    consecutive successful pushes, and
//! 6. verifies **zero acked-sample loss** (every stream's clock covers
//!    every acked minute) and **bit-identical forecasts** against the
//!    uninterrupted reference.
//!
//! Prints a one-object JSON report and writes it to `--out`
//! (default `results/BENCH_cluster.json`). Exits non-zero on any failure.
//!
//! Run with: `cargo run --release -p cluster --bin cluster_bench`

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cluster::{ClusterClient, ClusterClientConfig, ClusterNode, NodeConfig, NodeInfo, Ring};
use fleet::{BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine};
use netserve::{Client, ClientConfig, ServerConfig};
use vmsim::fleet_signal;

const NODES: [&str; 3] = ["a", "b", "c"];

struct Args {
    role: String,
    name: String,
    root: PathBuf,
    streams: u64,
    shards: usize,
    vnodes: u32,
    seed: u64,
    warmup: u64,
    mid: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        role: "harness".into(),
        name: String::new(),
        root: PathBuf::new(),
        streams: 36,
        shards: 4,
        vnodes: 64,
        seed: 2033,
        warmup: 240,
        mid: 60,
        out: "results/BENCH_cluster.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} expects a value"));
        let uint = |name: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|_| panic!("{name} expects an unsigned integer"))
        };
        match flag.as_str() {
            "--role" => args.role = take("--role"),
            "--name" => args.name = take("--name"),
            "--root" => args.root = PathBuf::from(take("--root")),
            "--streams" => args.streams = uint("--streams", take("--streams")),
            "--shards" => args.shards = uint("--shards", take("--shards")) as usize,
            "--vnodes" => args.vnodes = uint("--vnodes", take("--vnodes")) as u32,
            "--seed" => args.seed = uint("--seed", take("--seed")),
            "--warmup" => args.warmup = uint("--warmup", take("--warmup")),
            "--mid" => args.mid = uint("--mid", take("--mid")),
            "--out" => args.out = take("--out"),
            other => panic!(
                "unknown flag {other}; supported: --role --name --root --streams --shards \
                 --vnodes --seed --warmup --mid --out"
            ),
        }
    }
    assert!(args.streams >= NODES.len() as u64, "--streams must cover the nodes");
    assert!(args.warmup >= 50, "--warmup must be >= 50 (predictors need history)");
    args
}

/// The engine configuration every node and the reference must agree on
/// (same seed + shards ⇒ same stream→shard placement).
fn fleet_config(args: &Args, wal_dir: Option<PathBuf>) -> FleetConfig {
    FleetConfig {
        shards: args.shards,
        backpressure: BackpressurePolicy::Block,
        queue_capacity: 8192,
        fleet_seed: args.seed,
        // `DurabilityConfig::new` keeps auto-checkpointing off, so the
        // whole WAL stays readable for the heir's takeover tail-read.
        durability: wal_dir.map(DurabilityConfig::new),
        ..FleetConfig::default()
    }
}

/// Node role: serve one durable cluster node until killed. Never returns.
fn run_node(args: &Args) -> ! {
    let mut peer_wal_dirs = HashMap::new();
    for peer in NODES {
        if peer != args.name {
            peer_wal_dirs.insert(peer.to_string(), args.root.join("store").join(peer));
        }
    }
    let node = ClusterNode::start(NodeConfig {
        name: args.name.clone(),
        server: ServerConfig { http_addr: None, ..ServerConfig::default() },
        fleet: fleet_config(args, Some(args.root.join("store").join(&args.name))),
        standby_interval: Duration::from_millis(100),
        peer_wal_dirs,
    })
    .expect("cluster node starts");
    // Publish the ephemeral port atomically so the parent never reads a
    // half-written address.
    let addr_file = args.root.join(format!("addr_{}", args.name));
    let tmp = addr_file.with_extension("tmp");
    std::fs::write(&tmp, node.addr().to_string()).expect("write addr file");
    std::fs::rename(&tmp, &addr_file).expect("publish addr file");
    loop {
        std::thread::park();
    }
}

fn wait_for_addr(path: &Path, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let text = text.trim();
            if !text.is_empty() {
                return text.to_string();
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("node child exited early: {status}");
        }
        assert!(Instant::now() < deadline, "node child never published its address");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One minute of every stream's deterministic signal. A fresh signal
/// sampled once at `minute` is a pure function of `(seed, id, minute)`,
/// so the traffic thread and the later reference replay agree bit-for-bit.
fn minute_batch(seed: u64, streams: u64, minute: u64) -> Vec<(u64, f64)> {
    (0..streams)
        .map(|id| {
            let mut signal = fleet_signal(seed, id);
            (id, signal.sample(minute))
        })
        .collect()
}

fn owned_by(ring: &Ring, streams: u64, name: &str) -> Vec<u64> {
    (0..streams).filter(|&id| ring.owner_of(id).name == name).collect()
}

fn main() {
    let args = parse_args();
    if args.role == "node" {
        run_node(&args);
    }
    assert_eq!(args.role, "harness", "--role must be 'node' or 'harness'");

    let root = std::env::temp_dir().join(format!("cluster-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("store")).expect("create harness dir");

    // Spawn the three node processes and collect their addresses.
    let exe = std::env::current_exe().expect("current_exe");
    let mut children: Vec<(String, Child)> = NODES
        .iter()
        .map(|name| {
            let child = Command::new(&exe)
                .args([
                    "--role",
                    "node",
                    "--name",
                    name,
                    "--root",
                    root.to_str().expect("utf-8 path"),
                    "--streams",
                    &args.streams.to_string(),
                    "--shards",
                    &args.shards.to_string(),
                    "--seed",
                    &args.seed.to_string(),
                ])
                .stdin(Stdio::null())
                .spawn()
                .expect("spawn node child");
            (name.to_string(), child)
        })
        .collect();
    let addrs: Vec<String> = children
        .iter_mut()
        .map(|(name, child)| wait_for_addr(&root.join(format!("addr_{name}")), child))
        .collect();

    // Ring v1: all three nodes, installed over the wire on each.
    let ring1 = Ring::new(
        1,
        args.vnodes,
        NODES
            .iter()
            .zip(&addrs)
            .map(|(name, addr)| NodeInfo { name: name.to_string(), addr: addr.clone() })
            .collect(),
    )
    .expect("ring v1");
    let coord_cfg = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(15),
        client_name: "cluster-bench-coord".into(),
        ..ClientConfig::default()
    };
    let mut coords: Vec<Client> = addrs
        .iter()
        .map(|addr| Client::connect(addr, coord_cfg.clone()).expect("coordinator connects"))
        .collect();
    for coord in &mut coords {
        coord.ring_update(ring1.version(), ring1.encode()).expect("install ring v1");
    }

    // The uninterrupted single-engine reference, and the ring-aware client.
    let reference = FleetEngine::new(fleet_config(&args, None)).expect("reference engine");
    let mut client = ClusterClient::connect(
        &addrs,
        ClusterClientConfig {
            route_attempts: 80,
            retry_pause: Duration::from_millis(250),
            ..ClusterClientConfig::default()
        },
    )
    .expect("cluster client connects");
    for id in 0..args.streams {
        client.register(id).expect("register via ring");
        reference.register(id).expect("reference register");
    }

    // Phase 1: warmup traffic through ring v1, every sample must ack.
    let t = Instant::now();
    for minute in 0..args.warmup {
        let batch = minute_batch(args.seed, args.streams, minute);
        let stats = client.push(&batch).expect("warmup push");
        assert_eq!(stats.accepted, args.streams, "warmup minute fully acked");
        reference.push_batch(&batch);
    }
    let samples_per_sec = (args.warmup * args.streams) as f64 / t.elapsed().as_secs_f64();

    // Phase 2: live-drain node a into node c, stream by stream, over the
    // wire, while the fences + adopted set keep the cluster serving.
    let a_owned = owned_by(&ring1, args.streams, "a");
    let b_owned = owned_by(&ring1, args.streams, "b");
    assert!(!a_owned.is_empty() && !b_owned.is_empty(), "ring v1 spreads ownership");
    let c_addr = addrs[2].clone();
    let t = Instant::now();
    for &id in &a_owned {
        let (next_minute, floor, snapshot) = coords[0].migrate_out(id, &c_addr).expect("out");
        assert_eq!(next_minute, args.warmup, "drained stream's clock covers the warmup");
        coords[2].migrate_in(id, next_minute, floor, snapshot).expect("in");
        coords[0].evict(id).expect("evict on loser");
    }
    let migration_streams_per_sec = a_owned.len() as f64 / t.elapsed().as_secs_f64();
    let mut ring2 = ring1.clone();
    ring2.reassign("a", "c").expect("drain a");
    for coord in &mut coords {
        coord.ring_update(ring2.version(), ring2.encode()).expect("install ring v2");
    }
    assert!(client.refresh_ring(), "client adopts ring v2");

    // Phase 3: mid traffic on ring v2, then a pause so b's standby feed
    // (100ms cadence) snapshots its fleet into c's buffer.
    for minute in args.warmup..args.warmup + args.mid {
        let batch = minute_batch(args.seed, args.streams, minute);
        let stats = client.push(&batch).expect("mid push");
        assert_eq!(stats.accepted, args.streams, "mid minute fully acked");
        reference.push_batch(&batch);
    }
    std::thread::sleep(Duration::from_millis(1500));

    // Phase 4: SIGKILL node b mid-traffic; fail its range over to c.
    let stop = Arc::new(AtomicBool::new(false));
    let pusher = {
        let stop = Arc::clone(&stop);
        let (seed, streams, start) = (args.seed, args.streams, args.warmup + args.mid);
        std::thread::spawn(move || -> Result<_, String> {
            let mut minute = start;
            let mut acked_at: Vec<Instant> = vec![Instant::now()];
            let mut retries = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let batch = minute_batch(seed, streams, minute);
                let stats = client.push(&batch).map_err(|e| format!("minute {minute}: {e}"))?;
                if stats.accepted + stats.deduped != streams {
                    return Err(format!(
                        "minute {minute}: {} of {streams} samples landed",
                        stats.accepted + stats.deduped
                    ));
                }
                retries += stats.retries;
                acked_at.push(Instant::now());
                minute += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok((client, minute, acked_at, retries))
        })
    };
    std::thread::sleep(Duration::from_millis(300));
    let (_, child_b) = &mut children[1];
    child_b.kill().expect("SIGKILL node b"); // no destructors, no flush, no fsync
    child_b.wait().expect("reap node b");
    std::thread::sleep(Duration::from_millis(700));
    let mut ring3 = ring2.clone();
    let heir = ring3.fail_over("b").expect("fail over b");
    assert_eq!(heir, "c", "c is b's ring successor once a is drained");
    // Installing v3 on the heir runs the takeover synchronously: standby
    // snapshots first, then b's WAL tail read straight off the shared disk.
    let t = Instant::now();
    coords[2].ring_update(ring3.version(), ring3.encode()).expect("install ring v3 on heir");
    let takeover_ms = t.elapsed().as_secs_f64() * 1e3;
    coords[0].ring_update(ring3.version(), ring3.encode()).expect("install ring v3 on a");
    std::thread::sleep(Duration::from_millis(1500));
    stop.store(true, Ordering::Relaxed);
    let (mut client, total_minutes, acked_at, push_retries) =
        pusher.join().expect("pusher thread").unwrap_or_else(|e| panic!("pusher failed: {e}"));
    assert!(push_retries > 0, "the kill window must have forced retries");
    assert!(
        total_minutes > args.warmup + args.mid + 100,
        "pusher must still be running across the kill window"
    );
    let failover_gap_ms = acked_at
        .windows(2)
        .map(|w| w[1].duration_since(w[0]).as_millis())
        .max()
        .expect("at least one push") as u64;
    assert!(failover_gap_ms < 15_000, "outage gap {failover_gap_ms}ms exceeds the budget");

    // Phase 5: verify. Replay the pusher's minutes into the reference,
    // then compare every stream's serving state through the client.
    for minute in args.warmup + args.mid..total_minutes {
        reference.push_batch(&minute_batch(args.seed, args.streams, minute));
    }
    reference.flush();
    let mut acked_lost = 0u64;
    for id in 0..args.streams {
        let info = client.stream_info(id).expect("stream info via ring v3");
        acked_lost += total_minutes.saturating_sub(info.next_minute);
        let expect = reference.stream_info(id).expect("reference info");
        assert_eq!(
            (info.next_minute, info.retrains, info.last_forecast.map(f64::to_bits)),
            (expect.next_minute, expect.retrains as u64, expect.last_forecast.map(f64::to_bits)),
            "stream {id} diverged from the uninterrupted reference"
        );
        let reply = client.predict(id).expect("predict via ring v3");
        assert_eq!(
            reply.forecast.map(f64::to_bits),
            expect.last_forecast.map(f64::to_bits),
            "stream {id} forecast diverged"
        );
    }
    assert_eq!(acked_lost, 0, "acked samples lost across drain + failover");
    assert_eq!(client.ring().version(), ring3.version(), "client adopted the failover ring");

    let mut out = String::from("{\n");
    out.push_str("  \"nodes\": 3,\n");
    out.push_str(&format!("  \"streams\": {},\n", args.streams));
    out.push_str(&format!("  \"shards\": {},\n", args.shards));
    out.push_str(&format!("  \"vnodes\": {},\n", args.vnodes));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"warmup_minutes\": {},\n", args.warmup));
    out.push_str(&format!("  \"total_minutes\": {total_minutes},\n"));
    out.push_str(&format!("  \"samples_per_sec\": {},\n", samples_per_sec.round() as u64));
    out.push_str(&format!("  \"migrated_streams\": {},\n", a_owned.len()));
    out.push_str(&format!(
        "  \"migration_streams_per_sec\": {},\n",
        migration_streams_per_sec.round() as u64
    ));
    out.push_str(&format!("  \"failover_streams\": {},\n", b_owned.len()));
    out.push_str(&format!("  \"takeover_ms\": {takeover_ms:.2},\n"));
    out.push_str(&format!("  \"failover_gap_ms\": {failover_gap_ms},\n"));
    out.push_str(&format!("  \"push_retries\": {push_retries},\n"));
    out.push_str("  \"acked_lost\": 0,\n");
    out.push_str("  \"bit_identical\": true\n");
    out.push('}');
    obs::expo::validate_json(&out)
        .unwrap_or_else(|e| panic!("cluster_bench produced invalid JSON: {e}"));
    println!("{out}");
    if let Err(e) = std::fs::write(&args.out, &out) {
        eprintln!("warning: could not write {}: {e}", args.out);
    }

    for (_, child) in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&root);
}
