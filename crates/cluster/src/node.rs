//! A cluster node: a netserve server wired to ring hooks, a warm-standby
//! feeder, per-peer standby buffering, and failover takeover.
//!
//! Every node runs the same three roles at once:
//!
//! * **Owner** — serves the streams the installed ring places on it;
//!   anything else answers `NotOwner` with the owner's address.
//! * **Feeder** — a background thread periodically exports snapshot
//!   deltas ([`fleet::FleetEngine::export_dirty`]) plus its own WAL tail
//!   and streams them to the ring successor. The cursor only advances on
//!   a delivered cycle, so a failed send is re-sent, never skipped.
//! * **Standby** — buffers peers' feed chunks (snapshots by stream, WAL
//!   records by sequence). When a ring install declares a peer dead with
//!   this node as heir, the buffered snapshots are imported, the buffered
//!   WAL tail is merged with the dead peer's on-disk tail
//!   ([`store::read_tail`] — crash-left segments are readable), records
//!   beyond the snapshot cut are replayed, and dedup floors are armed so
//!   client retries of acked samples drop instead of double-applying.
//!
//! Takeover runs under the ring write lock *before* the new ring becomes
//! visible: a redirected client can never reach the heir ahead of the
//! state it was redirected for.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use fleet::{FleetEngine, FleetError, StreamConfig};
use larp::ResilienceConfig;
use netserve::{Client, ClientConfig, ClusterHooks, PushDedup, Server, ServerConfig};
use obs::{Counter, EventKind, Registry};
use store::WalRecord;

use crate::feed::{FeedChunk, MAX_CHUNK_BYTES};
use crate::ring::{HandoffKind, Ring};
use crate::ClusterError;

/// Configuration of one cluster node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Stable node name — its ring identity. Renaming moves its range.
    pub name: String,
    /// The netserve server configuration (bind address, stream defaults).
    pub server: ServerConfig,
    /// The fleet engine configuration. Durability is strongly recommended:
    /// without a WAL the standby feed degrades to snapshots only.
    pub fleet: fleet::FleetConfig,
    /// Warm-standby feed cadence; also the takeover gap's dominant term.
    pub standby_interval: Duration,
    /// Peers' WAL directories (`name → dir`) on a shared filesystem, used
    /// at takeover to close the gap between the last delivered feed cycle
    /// and the peer's death. Missing entries degrade to buffered feed
    /// state only.
    pub peer_wal_dirs: HashMap<String, PathBuf>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            name: "node".into(),
            server: ServerConfig { http_addr: None, ..ServerConfig::default() },
            fleet: fleet::FleetConfig::default(),
            standby_interval: Duration::from_millis(500),
            peer_wal_dirs: HashMap::new(),
        }
    }
}

/// A running cluster node (server + feeder + standby state).
pub struct ClusterNode {
    state: Arc<NodeState>,
    server: Server,
    feeder: Option<JoinHandle<()>>,
}

impl ClusterNode {
    /// Starts the node: builds the engine, starts a clustered server on
    /// it, and spawns the standby feeder. The node comes up ringless and
    /// serves everything until a ring is installed (over the wire or via
    /// [`ClusterNode::install_ring`]).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] for invalid fleet configuration or a bind
    /// failure.
    pub fn start(config: NodeConfig) -> Result<ClusterNode, ClusterError> {
        let engine = Arc::new(FleetEngine::new(config.fleet)?);
        let dedup = Arc::new(PushDedup::new());
        let metrics = ClusterMetrics::new(engine.registry());
        let state = Arc::new(NodeState {
            name: config.name,
            engine: Arc::clone(&engine),
            dedup: Arc::clone(&dedup),
            defaults: config.server.stream_defaults.clone(),
            peer_wal_dirs: config.peer_wal_dirs,
            ring: RwLock::new(None),
            standby: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            metrics,
        });
        let hooks: Arc<dyn ClusterHooks> = Arc::clone(&state) as Arc<dyn ClusterHooks>;
        let server = Server::start_clustered(engine, config.server, hooks, dedup)?;
        let feeder_state = Arc::clone(&state);
        let interval = config.standby_interval;
        let feeder = std::thread::Builder::new()
            .name(format!("standby-feeder-{}", state.name))
            .spawn(move || feeder_loop(&feeder_state, interval))
            .expect("spawn standby feeder");
        Ok(ClusterNode { state, server, feeder: Some(feeder) })
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The bound protocol address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// The node's fleet engine (tests and embedders).
    pub fn engine(&self) -> &Arc<FleetEngine> {
        &self.state.engine
    }

    /// Installs a ring locally — the same path a wire `RingUpdate` takes,
    /// including failover takeover when the ring names this node as a
    /// dead peer's heir.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Ring`] for a stale version or a failed
    /// takeover.
    pub fn install_ring(&self, ring: &Ring) -> Result<(), ClusterError> {
        self.state.ring_update(ring.version(), &ring.encode()).map_err(ClusterError::Ring)
    }

    /// Version of the installed ring (0 = none).
    pub fn ring_version(&self) -> u64 {
        self.state.ring_version()
    }

    /// Standby buffer summary per source: `(source, snapshots, wal
    /// records)` — test and dashboard introspection.
    pub fn standby_summary(&self) -> Vec<(String, usize, usize)> {
        let standby = self.state.standby.lock().expect("standby lock");
        let mut out: Vec<(String, usize, usize)> = standby
            .iter()
            .map(|(source, buf)| (source.clone(), buf.snapshots.len(), buf.wal.len()))
            .collect();
        out.sort();
        out
    }

    /// Stops the feeder and shuts the server down (drain + durable flush).
    pub fn shutdown(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.feeder.take() {
            let _ = handle.join();
        }
        self.server.shutdown();
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.feeder.take() {
            let _ = handle.join();
        }
    }
}

/// `cluster_*` metrics, registered on the engine's registry so one scrape
/// covers engine, network and cluster tiers.
struct ClusterMetrics {
    ring_updates: Counter,
    redirects: Counter,
    standby_chunks: Counter,
    standby_snapshots: Counter,
    standby_records: Counter,
    feed_cycles: Counter,
    feed_bytes: Counter,
    failover_streams: Counter,
    failover_replayed: Counter,
}

impl ClusterMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            ring_updates: registry.counter("cluster_ring_updates_total"),
            redirects: registry.counter("cluster_redirects_total"),
            standby_chunks: registry.counter("cluster_standby_chunks_total"),
            standby_snapshots: registry.counter("cluster_standby_snapshots_total"),
            standby_records: registry.counter("cluster_standby_records_total"),
            feed_cycles: registry.counter("cluster_feed_cycles_total"),
            feed_bytes: registry.counter("cluster_feed_bytes_total"),
            failover_streams: registry.counter("cluster_failover_streams_total"),
            failover_replayed: registry.counter("cluster_failover_replayed_total"),
        }
    }
}

/// Buffered standby state for one peer.
#[derive(Default)]
struct StandbyBuffer {
    /// Highest WAL sequence the buffered snapshots cover.
    covered_seq: u64,
    /// `stream → (next_minute, LARPSNAP blob)`, newest delta per stream.
    snapshots: HashMap<u64, (u64, Vec<u8>)>,
    /// Buffered WAL tail beyond the cut.
    wal: BTreeMap<u64, WalRecord>,
}

struct NodeState {
    name: String,
    engine: Arc<FleetEngine>,
    dedup: Arc<PushDedup>,
    defaults: StreamConfig,
    peer_wal_dirs: HashMap<String, PathBuf>,
    ring: RwLock<Option<Ring>>,
    standby: Mutex<HashMap<String, StandbyBuffer>>,
    stop: AtomicBool,
    metrics: ClusterMetrics,
}

impl ClusterHooks for NodeState {
    fn ring_version(&self) -> u64 {
        self.ring.read().expect("ring lock").as_ref().map(Ring::version).unwrap_or(0)
    }

    fn ring_blob(&self) -> Vec<u8> {
        self.ring.read().expect("ring lock").as_ref().map(Ring::encode).unwrap_or_default()
    }

    fn ring_update(&self, version: u64, blob: &[u8]) -> Result<(), String> {
        let ring = Ring::decode(blob).map_err(|e| e.to_string())?;
        if ring.version() != version {
            return Err(format!(
                "ring blob carries version {}, request says {version}",
                ring.version()
            ));
        }
        // The write lock is held across takeover on purpose: redirects
        // stall for the takeover's duration, so no request routed by the
        // new ring can reach this node before the inherited state does.
        let mut guard = self.ring.write().expect("ring lock");
        if let Some(current) = guard.as_ref() {
            if version <= current.version() {
                return Err(format!(
                    "stale ring: version {version} <= installed {}",
                    current.version()
                ));
            }
        }
        for (from, to, kind) in ring.inherited() {
            // A `Drained` edge means the coordinator already moved every
            // stream via MigrateOut/MigrateIn; replaying the loser's WAL
            // here would regress (or evict) state this node holds live.
            if to != &self.name || *kind != HandoffKind::Failed {
                continue;
            }
            // Only newly-dead direct feeders need materializing; edges
            // already present in the installed ring were handled when
            // they first appeared (or predate this node's lifetime, in
            // which case there is no standby state to materialize).
            let was_alive = guard.as_ref().map(|r| r.is_alive(from)).unwrap_or(false);
            if was_alive {
                let (streams, replayed) = self.take_over(from)?;
                self.metrics.failover_streams.add(streams);
                self.metrics.failover_replayed.add(replayed);
                self.engine.events().push(None, EventKind::FailoverTakeover { streams, replayed });
            }
        }
        let adopted = ring.version();
        *guard = Some(ring);
        drop(guard);
        self.metrics.ring_updates.inc();
        self.engine.events().push(None, EventKind::RingUpdated { version: adopted });
        Ok(())
    }

    fn redirect(&self, stream: u64) -> Option<String> {
        let guard = self.ring.read().expect("ring lock");
        let ring = guard.as_ref()?;
        let owner = ring.owner_of(stream);
        if owner.name == self.name {
            None
        } else {
            self.metrics.redirects.inc();
            Some(owner.addr.clone())
        }
    }

    fn standby_feed(&self, payload: &[u8]) -> Result<(), String> {
        let chunk = FeedChunk::decode(payload).map_err(|e| e.to_string())?;
        let mut standby = self.standby.lock().expect("standby lock");
        match chunk {
            FeedChunk::Snapshots { source, covered_seq, streams } => {
                let buf = standby.entry(source).or_default();
                self.metrics.standby_snapshots.add(streams.len() as u64);
                for (id, next_minute, blob) in streams {
                    buf.snapshots.insert(id, (next_minute, blob));
                }
                buf.covered_seq = buf.covered_seq.max(covered_seq);
                let cut = buf.covered_seq;
                buf.wal.retain(|seq, _| *seq > cut);
            }
            FeedChunk::WalTail { source, records } => {
                let buf = standby.entry(source).or_default();
                self.metrics.standby_records.add(records.len() as u64);
                for (seq, record) in records {
                    if seq > buf.covered_seq {
                        buf.wal.insert(seq, record);
                    }
                }
            }
        }
        self.metrics.standby_chunks.inc();
        Ok(())
    }
}

impl NodeState {
    /// Materializes a dead peer's streams: buffered snapshots, then the
    /// WAL tail beyond the cut (buffered records merged with the peer's
    /// on-disk tail), then dedup floors at the restored clocks. Returns
    /// `(streams imported, samples replayed)`.
    fn take_over(&self, source: &str) -> Result<(u64, u64), String> {
        let buf = self.standby.lock().expect("standby lock").remove(source).unwrap_or_default();
        let covered = buf.covered_seq;
        let mut taken: HashSet<u64> = HashSet::new();
        let mut streams = 0u64;
        let mut snapshots: Vec<(u64, (u64, Vec<u8>))> = buf.snapshots.into_iter().collect();
        snapshots.sort_unstable_by_key(|(id, _)| *id);
        for (id, (next_minute, blob)) in snapshots {
            match self.engine.import_stream(id, next_minute, &blob) {
                Ok(()) => {
                    streams += 1;
                    taken.insert(id);
                }
                // A duplicate means the stream already lives here (e.g. a
                // re-delivered ring after a half-applied install); the
                // local copy is at least as fresh.
                Err(FleetError::DuplicateStream(_)) => {
                    taken.insert(id);
                }
                Err(e) => return Err(format!("takeover of {source}: import {id}: {e}")),
            }
        }

        let mut merged = buf.wal;
        merged.retain(|seq, _| *seq > covered);
        if let Some(dir) = self.peer_wal_dirs.get(source) {
            if dir.is_dir() {
                // Crash-left segments decode exactly as recovery would;
                // corruption degrades to counted gaps, not errors.
                let _ = store::read_tail(dir, covered, |seq, record| {
                    merged.insert(seq, record);
                });
            }
        }
        let mut replayed = 0u64;
        for (_seq, record) in merged {
            match record {
                WalRecord::Samples(samples) => {
                    for s in samples {
                        if !self.engine.contains(s.stream) {
                            continue;
                        }
                        match s.minute {
                            Some(m) => {
                                self.engine.push_at(s.stream, m, s.value);
                            }
                            None => {
                                self.engine.push(s.stream, s.value);
                            }
                        }
                        replayed += 1;
                    }
                }
                WalRecord::Register { id, tuning } => {
                    let config = StreamConfig {
                        train_size: tuning.train_size as usize,
                        qa_window: tuning.qa_window as usize,
                        qa_period: tuning.qa_period as usize,
                        qa_threshold: tuning.qa_threshold,
                        resilience: ResilienceConfig {
                            f32_history: tuning.f32_history,
                            ..self.defaults.resilience.clone()
                        },
                        ..self.defaults.clone()
                    };
                    match self.engine.register_with(id, &config) {
                        Ok(()) => {
                            streams += 1;
                            taken.insert(id);
                        }
                        Err(FleetError::DuplicateStream(_)) => {}
                        Err(e) => return Err(format!("takeover of {source}: register {id}: {e}")),
                    }
                }
                WalRecord::Evict { id } => {
                    let _ = self.engine.evict(id);
                    taken.remove(&id);
                }
            }
        }
        self.engine.flush();
        for id in &taken {
            if let Ok(info) = self.engine.stream_info(*id) {
                self.dedup.set_floor(*id, info.next_minute);
            }
        }
        // Make the takeover itself durable; a heir crash right after no
        // longer depends on the dead peer's files.
        let _ = self.engine.checkpoint_durable();
        Ok((streams, replayed))
    }
}

/// The feeder: export dirty snapshots + own WAL tail, ship both to the
/// ring successor, advance cursors only on delivery.
fn feeder_loop(state: &Arc<NodeState>, interval: Duration) {
    let mut seen: HashMap<u64, u64> = HashMap::new();
    let mut last_sent: u64 = 0;
    let mut last_successor: Option<String> = None;
    let mut conn: Option<Client> = None;
    while !state.stop.load(Ordering::SeqCst) {
        sleep_responsive(state, interval);
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let successor = {
            let guard = state.ring.read().expect("ring lock");
            guard.as_ref().and_then(|ring| {
                if !ring.is_alive(&state.name) {
                    return None;
                }
                ring.successor(&state.name).map(|n| (n.name.clone(), n.addr.clone()))
            })
        };
        let Some((succ_name, succ_addr)) = successor else { continue };
        if last_successor.as_deref() != Some(succ_name.as_str()) {
            // New successor: it holds none of our state — restart the feed
            // from scratch (full snapshot set, full WAL tail).
            seen.clear();
            last_sent = 0;
            conn = None;
            last_successor = Some(succ_name);
        }

        let cursor_backup = seen.clone();
        let (covered, deltas) = match state.engine.export_dirty(&mut seen) {
            Ok(cut) => cut,
            Err(_) => {
                seen = cursor_backup;
                continue;
            }
        };
        let mut records: Vec<(u64, WalRecord)> = Vec::new();
        if let Some(dir) = state.engine.wal_dir() {
            let _ = store::read_tail(&dir, last_sent, |seq, record| {
                records.push((seq, record));
            });
        }
        let new_last = records.last().map(|(seq, _)| *seq).unwrap_or(last_sent);
        if deltas.is_empty() && records.is_empty() {
            continue;
        }

        let fed_streams = deltas.len() as u64;
        let fed_records = records.len() as u64;
        let chunks = build_chunks(&state.name, covered, deltas, records);
        let mut sent_bytes = 0u64;
        let delivered = send_chunks(state, &mut conn, &succ_addr, &chunks, &mut sent_bytes);
        if delivered {
            last_sent = new_last;
            state.metrics.feed_cycles.inc();
            state.metrics.feed_bytes.add(sent_bytes);
            state
                .engine
                .events()
                .push(None, EventKind::StandbyFeed { streams: fed_streams, records: fed_records });
        } else {
            // Nothing delivered counts as nothing exported: rewind so the
            // next cycle resends the same deltas and tail.
            seen = cursor_backup;
            conn = None;
        }
    }
}

fn sleep_responsive(state: &NodeState, interval: Duration) {
    let mut remaining = interval;
    let slice = Duration::from_millis(20);
    while remaining > Duration::ZERO && !state.stop.load(Ordering::SeqCst) {
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// Splits deltas and records into chunks under the payload budget.
fn build_chunks(
    source: &str,
    covered: u64,
    deltas: Vec<(u64, u64, Vec<u8>)>,
    records: Vec<(u64, WalRecord)>,
) -> Vec<FeedChunk> {
    let mut chunks = Vec::new();
    let mut batch: Vec<(u64, u64, Vec<u8>)> = Vec::new();
    let mut batch_bytes = 0usize;
    for delta in deltas {
        let len = 20 + delta.2.len();
        if !batch.is_empty() && batch_bytes + len > MAX_CHUNK_BYTES {
            chunks.push(FeedChunk::Snapshots {
                source: source.into(),
                covered_seq: covered,
                streams: std::mem::take(&mut batch),
            });
            batch_bytes = 0;
        }
        batch_bytes += len;
        batch.push(delta);
    }
    if !batch.is_empty() {
        chunks.push(FeedChunk::Snapshots {
            source: source.into(),
            covered_seq: covered,
            streams: batch,
        });
    }
    let mut tail: Vec<(u64, WalRecord)> = Vec::new();
    for record in records {
        tail.push(record);
        let probe = FeedChunk::WalTail { source: source.into(), records: tail };
        if probe.approx_len() > MAX_CHUNK_BYTES {
            chunks.push(probe);
            tail = Vec::new();
        } else {
            match probe {
                FeedChunk::WalTail { records, .. } => tail = records,
                _ => unreachable!("probe is a wal tail"),
            }
        }
    }
    if !tail.is_empty() {
        chunks.push(FeedChunk::WalTail { source: source.into(), records: tail });
    }
    chunks
}

fn send_chunks(
    state: &NodeState,
    conn: &mut Option<Client>,
    addr: &str,
    chunks: &[FeedChunk],
    sent_bytes: &mut u64,
) -> bool {
    for chunk in chunks {
        if state.stop.load(Ordering::SeqCst) {
            return false;
        }
        let payload = chunk.encode();
        let client = match conn {
            Some(c) => c,
            None => {
                let config = ClientConfig {
                    connect_timeout: Duration::from_secs(1),
                    request_timeout: Duration::from_secs(5),
                    max_attempts: 1,
                    client_name: format!("standby-feeder-{}", state.name),
                    ..ClientConfig::default()
                };
                match Client::connect(addr, config) {
                    Ok(c) => conn.insert(c),
                    Err(_) => return false,
                }
            }
        };
        let len = payload.len() as u64;
        if client.standby_feed(payload).is_err() {
            return false;
        }
        *sent_bytes += len;
    }
    true
}
