//! [`ClusterClient`]: a ring-aware client over the netserve wire.
//!
//! The client holds the same ring blob the servers do, so routing is a
//! local hash — no proxy hop, no metadata service. What makes it safe:
//!
//! * **Sequenced sends** — every sample gets a per-stream sequence
//!   (1, 2, 3, …). Sends are at-least-once: any failure keeps samples in
//!   a pending queue and retries them. The server's dedup table plus the
//!   `last_seqs` echo turn that into exactly-once ingestion, even when an
//!   ack was lost or the stream moved to a node that never saw this
//!   client.
//! * **Redirect following** — a `NotOwner` error carries the owning
//!   node's address verbatim; the client re-sends there immediately,
//!   which is what keeps requests flowing *during* a migration fence,
//!   before any ring update is published. Mixed-ownership batches split
//!   per stream mid-drain so partial progress is never blocked.
//! * **Ring refresh** — on I/O errors or exhausted redirects the client
//!   asks any reachable node for a newer ring (`RingInfo`) and re-routes.
//!   A dead node therefore costs one refresh round, not a stuck client.

use std::collections::HashMap;
use std::time::Duration;

use netserve::{Client, ClientConfig, ErrorCode, NetError};

use crate::ring::Ring;
use crate::ClusterError;

/// Cluster client configuration.
#[derive(Debug, Clone)]
pub struct ClusterClientConfig {
    /// Per-connection netserve client configuration. `client_name` is the
    /// dedup identity — two processes sharing a name share send cursors.
    pub net: ClientConfig,
    /// Full routing rounds (send → refresh ring → re-send) before a push
    /// or request gives up. The product with `retry_pause` bounds how
    /// long an outage the client rides out.
    pub route_attempts: u32,
    /// Pause between routing rounds.
    pub retry_pause: Duration,
    /// `NotOwner` redirects followed within one routing round.
    pub redirect_hops: u32,
}

impl Default for ClusterClientConfig {
    fn default() -> Self {
        Self {
            net: ClientConfig {
                connect_timeout: Duration::from_secs(1),
                request_timeout: Duration::from_secs(5),
                max_attempts: 1,
                ..ClientConfig::default()
            },
            route_attempts: 40,
            retry_pause: Duration::from_millis(250),
            redirect_hops: 4,
        }
    }
}

/// Accounting for one [`ClusterClient::push`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushStats {
    /// Samples newly applied by owners.
    pub accepted: u64,
    /// Samples a server dropped as already applied (retries made
    /// harmless).
    pub deduped: u64,
    /// Transient failures ridden out (reconnects, refresh rounds).
    pub retries: u64,
}

/// A ring-aware, exactly-once cluster client.
pub struct ClusterClient {
    config: ClusterClientConfig,
    ring: Ring,
    seeds: Vec<String>,
    conns: HashMap<String, Client>,
    /// Per-stream send cursor: sequences assigned so far.
    seqs: HashMap<u64, u64>,
    /// Per-stream acked cursor, advanced by `last_seqs` echoes.
    acked: HashMap<u64, u64>,
    /// Samples assigned a sequence but not yet acked.
    pending: Vec<SeqSample>,
}

/// A `(stream id, sequence, value)` triple awaiting an ack.
type SeqSample = (u64, u64, f64);

impl ClusterClient {
    /// Connects to the cluster: the first seed that serves a ring wins.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Routing`] when no seed answers with a
    /// decodable, installed ring.
    pub fn connect(
        seeds: &[String],
        config: ClusterClientConfig,
    ) -> Result<ClusterClient, ClusterError> {
        let mut client = ClusterClient {
            config,
            ring: Ring::new(0, 1, vec![crate::NodeInfo { name: "?".into(), addr: "?".into() }])?,
            seeds: seeds.to_vec(),
            conns: HashMap::new(),
            seqs: HashMap::new(),
            acked: HashMap::new(),
            pending: Vec::new(),
        };
        for addr in seeds {
            let Ok(conn) = client.conn(addr) else { continue };
            let Ok((version, blob)) = conn.ring_info() else {
                client.conns.remove(addr);
                continue;
            };
            if version == 0 {
                continue;
            }
            if let Ok(ring) = Ring::decode(&blob) {
                client.ring = ring;
                return Ok(client);
            }
        }
        Err(ClusterError::Routing("no seed node served an installed ring".into()))
    }

    /// The ring the client is routing by.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Samples assigned a sequence but not yet acked by an owner.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Registers a stream on its owning node (engine defaults).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] when the owner stays unreachable or
    /// refuses the registration.
    pub fn register(&mut self, id: u64) -> Result<(), ClusterError> {
        self.on_owner(id, |c| c.register(id))
    }

    /// Fetches the owner's forecast for a stream.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] when the owner stays unreachable or does
    /// not know the stream.
    pub fn predict(&mut self, id: u64) -> Result<netserve::PredictReply, ClusterError> {
        self.on_owner(id, |c| c.predict(id))
    }

    /// Fetches the owner's serving view of a stream.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] when the owner stays unreachable or does
    /// not know the stream.
    pub fn stream_info(&mut self, id: u64) -> Result<netserve::StreamInfoReply, ClusterError> {
        self.on_owner(id, |c| c.stream_info(id))
    }

    /// Pushes samples exactly once: assigns sequences, routes by ring
    /// owner, follows redirects, retries transient failures until every
    /// sample is acked (or the retry budget runs out — in which case the
    /// samples stay pending and the next push resumes them).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Routing`] on an exhausted retry budget and
    /// [`ClusterError::Net`] for hard server errors (bad config, eviction
    /// races).
    pub fn push(&mut self, samples: &[(u64, f64)]) -> Result<PushStats, ClusterError> {
        for &(id, value) in samples {
            let seq = self.seqs.entry(id).or_insert(0);
            *seq += 1;
            self.pending.push((id, *seq, value));
        }
        self.flush_pending()
    }

    fn drop_acked(&mut self) {
        let acked = &self.acked;
        self.pending.retain(|(id, seq, _)| *seq > acked.get(id).copied().unwrap_or(0));
    }

    fn flush_pending(&mut self) -> Result<PushStats, ClusterError> {
        let mut stats = PushStats::default();
        let mut attempts = 0u32;
        loop {
            self.drop_acked();
            if self.pending.is_empty() {
                return Ok(stats);
            }
            let mut groups: HashMap<String, Vec<SeqSample>> = HashMap::new();
            for sample in &self.pending {
                let addr = self.ring.owner_of(sample.0).addr.clone();
                groups.entry(addr).or_default().push(*sample);
            }
            let mut ordered: Vec<(String, Vec<SeqSample>)> = groups.into_iter().collect();
            ordered.sort_by(|a, b| a.0.cmp(&b.0));
            for (addr, batch) in ordered {
                match self.send_group(&addr, &batch, &mut stats) {
                    Ok(()) => {}
                    Err(e @ ClusterError::Net(_)) => return Err(e),
                    Err(_) => stats.retries += 1,
                }
            }
            self.drop_acked();
            if self.pending.is_empty() {
                return Ok(stats);
            }
            attempts += 1;
            if attempts >= self.config.route_attempts {
                return Err(ClusterError::Routing(format!(
                    "{} samples unacked after {attempts} routing rounds",
                    self.pending.len()
                )));
            }
            std::thread::sleep(self.config.retry_pause);
            self.refresh_ring();
        }
    }

    /// Sends one owner-grouped batch, following redirects. A `NotOwner`
    /// on a batch spanning streams (mid-drain mixed ownership) splits it
    /// per stream so the already-moved streams make progress.
    fn send_group(
        &mut self,
        addr: &str,
        batch: &[SeqSample],
        stats: &mut PushStats,
    ) -> Result<(), ClusterError> {
        let mut target = addr.to_string();
        for _hop in 0..=self.config.redirect_hops {
            let remaining: Vec<SeqSample> = batch
                .iter()
                .filter(|(id, seq, _)| *seq > self.acked.get(id).copied().unwrap_or(0))
                .copied()
                .collect();
            if remaining.is_empty() {
                return Ok(());
            }
            let outcome = match self.conn(&target) {
                Ok(conn) => conn.push_seq(&remaining),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(o) => {
                    stats.accepted += o.outcome.accepted;
                    stats.deduped += o.deduped;
                    for (id, seq) in o.last_seqs {
                        let e = self.acked.entry(id).or_insert(0);
                        *e = (*e).max(seq);
                    }
                    return Ok(());
                }
                Err(NetError::Server { code: ErrorCode::NotOwner, detail }) => {
                    let mut ids: Vec<u64> = remaining.iter().map(|(id, _, _)| *id).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    if ids.len() > 1 {
                        for id in ids {
                            let sub: Vec<SeqSample> =
                                remaining.iter().filter(|(s, _, _)| *s == id).copied().collect();
                            let owner = self.ring.owner_of(id).addr.clone();
                            self.send_group(&owner, &sub, stats)?;
                        }
                        return Ok(());
                    }
                    target = detail;
                }
                Err(e @ NetError::Server { .. }) => return Err(ClusterError::Net(e)),
                Err(_) => {
                    self.conns.remove(&target);
                    return Err(ClusterError::Routing(format!("send to {target} failed")));
                }
            }
        }
        Err(ClusterError::Routing(format!("redirect chase from {addr} exhausted")))
    }

    /// Runs a request against a stream's owner, following redirects and
    /// refreshing the ring across routing rounds.
    fn on_owner<T>(
        &mut self,
        id: u64,
        mut op: impl FnMut(&mut Client) -> Result<T, NetError>,
    ) -> Result<T, ClusterError> {
        let mut attempts = 0u32;
        loop {
            let mut target = self.ring.owner_of(id).addr.clone();
            let mut hops = 0u32;
            loop {
                let result = match self.conn(&target) {
                    Ok(conn) => op(conn),
                    Err(e) => Err(e),
                };
                match result {
                    Ok(value) => return Ok(value),
                    Err(NetError::Server { code: ErrorCode::NotOwner, detail }) => {
                        hops += 1;
                        if hops > self.config.redirect_hops {
                            break;
                        }
                        target = detail;
                    }
                    Err(e @ NetError::Server { .. }) => return Err(ClusterError::Net(e)),
                    Err(_) => {
                        self.conns.remove(&target);
                        break;
                    }
                }
            }
            attempts += 1;
            if attempts >= self.config.route_attempts {
                return Err(ClusterError::Routing(format!(
                    "stream {id}: owner unreachable after {attempts} routing rounds"
                )));
            }
            std::thread::sleep(self.config.retry_pause);
            self.refresh_ring();
        }
    }

    /// Adopts the newest ring any reachable node serves. Returns whether
    /// a newer ring was adopted.
    pub fn refresh_ring(&mut self) -> bool {
        let mut candidates: Vec<String> = self.ring.alive().map(|n| n.addr.clone()).collect();
        for seed in &self.seeds {
            if !candidates.contains(seed) {
                candidates.push(seed.clone());
            }
        }
        let mut adopted = false;
        for addr in candidates {
            let info = match self.conn(&addr) {
                Ok(conn) => conn.ring_info(),
                Err(e) => Err(e),
            };
            match info {
                Ok((version, blob)) if version > self.ring.version() => {
                    if let Ok(ring) = Ring::decode(&blob) {
                        self.ring = ring;
                        adopted = true;
                        break;
                    }
                }
                Ok(_) => {}
                Err(_) => {
                    self.conns.remove(&addr);
                }
            }
        }
        adopted
    }

    fn conn(&mut self, addr: &str) -> Result<&mut Client, NetError> {
        if !self.conns.contains_key(addr) {
            let client = Client::connect(addr, self.config.net.clone())?;
            self.conns.insert(addr.to_string(), client);
        }
        Ok(self.conns.get_mut(addr).expect("connection inserted above"))
    }
}
