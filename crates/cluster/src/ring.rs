//! The consistent-hash ring: deterministic `StreamId → node` placement
//! shared, byte for byte, by every server and client in the cluster.
//!
//! Each node contributes `vnodes` points on a 64-bit circle; a stream is
//! owned by the node holding the first point at or after the stream's
//! hash. Virtual nodes smooth the per-node share; placement depends only
//! on the ring blob, so two parties holding the same blob always agree on
//! an owner without talking to each other.
//!
//! Membership changes never rehash the circle. Draining or losing a node
//! adds an *inheritance* edge (`from → to`): `from`'s points stay on the
//! circle but resolve through the edge to `to`. A failover therefore
//! moves exactly the dead node's range — to its ring successor, the one
//! peer that has been receiving its warm-standby feed — and every other
//! stream stays put.
//!
//! Rings are versioned; nodes refuse installs that do not increase the
//! version, so the newest ring wins everywhere regardless of delivery
//! order. The codec frames the blob with a magic and a CRC-32 trailer.

use crate::ClusterError;

/// Ring blob magic ("LARPRING").
pub const RING_MAGIC: &[u8; 8] = b"LARPRING";

/// Ring blob format version.
pub const RING_FORMAT: u8 = 1;

/// How a node's range moved to its heir — the distinction decides whether
/// installing the ring must materialize state on the heir.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffKind {
    /// A live drain: every stream was moved ahead of the ring flip via
    /// `MigrateOut`/`MigrateIn`, so the heir already holds the state and
    /// must not touch the loser's WAL.
    Drained,
    /// A failover: the node died in place. Installing the ring makes the
    /// heir materialize its streams from the warm-standby feed plus the
    /// dead node's on-disk WAL tail.
    Failed,
}

/// One cluster member: the name is its identity (hash input, sort key),
/// the addr is its netserve protocol endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Stable node name; placement hashes this, so renaming a node moves
    /// its entire range.
    pub name: String,
    /// Protocol address (`host:port`) clients and peers dial.
    pub addr: String,
}

/// The consistent-hash ring. Construct with [`Ring::new`], mutate through
/// [`Ring::reassign`]/[`Ring::fail_over`] (each bumps the version), ship
/// with [`Ring::encode`]/[`Ring::decode`].
#[derive(Debug, Clone, PartialEq)]
pub struct Ring {
    version: u64,
    vnodes: u32,
    /// Members sorted by name; dead/drained members stay listed so their
    /// points keep resolving through `inherited`.
    nodes: Vec<NodeInfo>,
    /// Inheritance edges `from → to` with the handoff kind, sorted by
    /// `from`. A node appearing as a `from` is dead or drained; its range
    /// resolves to `to`.
    inherited: Vec<(String, String, HandoffKind)>,
    /// Hashed points `(point, node index)`, sorted — rebuilt, never
    /// encoded.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// Builds a ring over `nodes` (any order; sorted internally).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Ring`] for an empty member list, zero
    /// vnodes, or duplicate/empty node names.
    pub fn new(version: u64, vnodes: u32, mut nodes: Vec<NodeInfo>) -> Result<Ring, ClusterError> {
        if nodes.is_empty() {
            return Err(ClusterError::Ring("a ring needs at least one node".into()));
        }
        if vnodes == 0 {
            return Err(ClusterError::Ring("vnodes must be at least 1".into()));
        }
        nodes.sort_by(|a, b| a.name.cmp(&b.name));
        for pair in nodes.windows(2) {
            if pair[0].name == pair[1].name {
                return Err(ClusterError::Ring(format!("duplicate node name {:?}", pair[0].name)));
            }
        }
        if nodes.iter().any(|n| n.name.is_empty() || n.addr.is_empty()) {
            return Err(ClusterError::Ring("node names and addrs must be non-empty".into()));
        }
        let mut ring = Ring { version, vnodes, nodes, inherited: Vec::new(), points: Vec::new() };
        ring.rebuild_points();
        Ok(ring)
    }

    fn rebuild_points(&mut self) {
        self.points.clear();
        self.points.reserve(self.nodes.len() * self.vnodes as usize);
        for (i, node) in self.nodes.iter().enumerate() {
            for v in 0..self.vnodes {
                self.points.push((point_hash(&node.name, v), i as u32));
            }
        }
        self.points.sort_unstable();
    }

    /// The ring version (monotonic; mutators bump it).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Every member, sorted by name — including dead/drained ones whose
    /// ranges resolve through inheritance.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// The inheritance edges (`from → to` + handoff kind), sorted by
    /// `from`.
    pub fn inherited(&self) -> &[(String, String, HandoffKind)] {
        &self.inherited
    }

    /// Looks a member up by name.
    pub fn node(&self, name: &str) -> Option<&NodeInfo> {
        self.nodes.binary_search_by(|n| n.name.as_str().cmp(name)).ok().map(|i| &self.nodes[i])
    }

    /// Whether `name` is a live member (listed and not inherited-from).
    pub fn is_alive(&self, name: &str) -> bool {
        self.node(name).is_some() && !self.inherited.iter().any(|(from, _, _)| from == name)
    }

    /// Live members, in name order.
    pub fn alive(&self) -> impl Iterator<Item = &NodeInfo> {
        self.nodes.iter().filter(|n| self.is_alive(&n.name))
    }

    /// The node owning `stream`: first point at or after the stream's
    /// hash (wrapping), resolved through inheritance edges.
    pub fn owner_of(&self, stream: u64) -> &NodeInfo {
        let h = stream_hash(stream);
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, idx) = self.points[if i == self.points.len() { 0 } else { i }];
        let mut name = self.nodes[idx as usize].name.as_str();
        // Chase inheritance; edges always target a node live at insertion
        // time, but guard against pathological blobs anyway.
        for _ in 0..self.nodes.len() {
            match self.inherited.iter().find(|(from, _, _)| from == name) {
                Some((_, to, _)) => name = to.as_str(),
                None => break,
            }
        }
        self.node(name).expect("inheritance edges stay within the member list")
    }

    /// The next live member after `name` in name order (cyclic) — the
    /// warm-standby heir. `None` when `name` is the only live member (or
    /// unknown).
    pub fn successor(&self, name: &str) -> Option<&NodeInfo> {
        self.node(name)?;
        let start = self.nodes.iter().position(|n| n.name == name).expect("node checked above");
        (1..self.nodes.len())
            .map(|step| &self.nodes[(start + step) % self.nodes.len()])
            .find(|n| self.is_alive(&n.name))
    }

    /// Routes `from`'s entire range to `to` after a live drain (state
    /// already migrated stream by stream) and bumps the version. Heirs
    /// installing the ring will *not* materialize anything for this edge.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Ring`] when either node is unknown, `from`
    /// is already inherited-from, or `to` is not live.
    pub fn reassign(&mut self, from: &str, to: &str) -> Result<(), ClusterError> {
        self.route(from, to, HandoffKind::Drained)
    }

    fn route(&mut self, from: &str, to: &str, kind: HandoffKind) -> Result<(), ClusterError> {
        if self.node(from).is_none() || self.node(to).is_none() {
            return Err(ClusterError::Ring(format!("unknown node in reassign {from:?} -> {to:?}")));
        }
        if from == to {
            return Err(ClusterError::Ring(format!("cannot reassign {from:?} to itself")));
        }
        if !self.is_alive(from) {
            return Err(ClusterError::Ring(format!("{from:?} is already reassigned")));
        }
        if !self.is_alive(to) {
            return Err(ClusterError::Ring(format!("heir {to:?} is not live")));
        }
        self.inherited.push((from.to_string(), to.to_string(), kind));
        self.inherited.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        self.version += 1;
        Ok(())
    }

    /// Declares `dead` failed: its range moves to its ring successor (the
    /// peer holding its warm-standby state), flagged so the heir
    /// materializes the dead node's streams when it installs the ring.
    /// Returns the heir's name.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Ring`] when `dead` is unknown, already
    /// reassigned, or has no live successor.
    pub fn fail_over(&mut self, dead: &str) -> Result<String, ClusterError> {
        let heir = self
            .successor(dead)
            .ok_or_else(|| ClusterError::Ring(format!("no live successor for {dead:?}")))?
            .name
            .clone();
        self.route(dead, &heir, HandoffKind::Failed)?;
        Ok(heir)
    }

    /// Encodes the ring: magic, format byte, version, vnodes, members,
    /// inheritance edges, CRC-32 trailer. Points are rebuilt on decode.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.nodes.len() * 32);
        out.extend_from_slice(RING_MAGIC);
        out.push(RING_FORMAT);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.vnodes.to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for n in &self.nodes {
            put_str(&mut out, &n.name);
            put_str(&mut out, &n.addr);
        }
        out.extend_from_slice(&(self.inherited.len() as u32).to_le_bytes());
        for (from, to, kind) in &self.inherited {
            put_str(&mut out, from);
            put_str(&mut out, to);
            out.push(match kind {
                HandoffKind::Drained => 0,
                HandoffKind::Failed => 1,
            });
        }
        let crc = store::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a ring blob, validating magic, format, CRC and membership
    /// invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Ring`] for truncation, a bad magic or CRC,
    /// or inheritance edges naming unknown nodes.
    pub fn decode(bytes: &[u8]) -> Result<Ring, ClusterError> {
        if bytes.len() < RING_MAGIC.len() + 1 + 8 + 4 + 4 + 4 + 4 {
            return Err(ClusterError::Ring("ring blob truncated".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
        if store::crc32(body) != crc {
            return Err(ClusterError::Ring("ring blob CRC mismatch".into()));
        }
        let mut cur = Cur { buf: body, pos: 0 };
        if cur.take(RING_MAGIC.len())? != RING_MAGIC {
            return Err(ClusterError::Ring("bad ring magic".into()));
        }
        let format = cur.u8()?;
        if format != RING_FORMAT {
            return Err(ClusterError::Ring(format!("unsupported ring format {format}")));
        }
        let version = cur.u64()?;
        let vnodes = cur.u32()?;
        let node_count = cur.u32()? as usize;
        if node_count > 4096 {
            return Err(ClusterError::Ring(format!("implausible node count {node_count}")));
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let name = cur.str()?;
            let addr = cur.str()?;
            nodes.push(NodeInfo { name, addr });
        }
        let mut ring = Ring::new(version, vnodes, nodes)?;
        let edge_count = cur.u32()? as usize;
        if edge_count > node_count {
            return Err(ClusterError::Ring(format!("implausible edge count {edge_count}")));
        }
        let mut edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            let from = cur.str()?;
            let to = cur.str()?;
            let kind = match cur.u8()? {
                0 => HandoffKind::Drained,
                1 => HandoffKind::Failed,
                other => {
                    return Err(ClusterError::Ring(format!("unknown handoff kind {other}")));
                }
            };
            if ring.node(&from).is_none() || ring.node(&to).is_none() {
                return Err(ClusterError::Ring(format!(
                    "inheritance edge {from:?} -> {to:?} names an unknown node"
                )));
            }
            edges.push((from, to, kind));
        }
        edges.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        ring.inherited = edges;
        if cur.pos != cur.buf.len() {
            return Err(ClusterError::Ring("trailing bytes after ring blob".into()));
        }
        Ok(ring)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "node strings are short");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ClusterError> {
        if self.buf.len() - self.pos < n {
            return Err(ClusterError::Ring("ring blob truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ClusterError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ClusterError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ClusterError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, ClusterError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ClusterError::Ring("non-UTF-8 string in ring blob".into()))
    }
}

/// SplitMix64 finalizer — the avalanche behind both hash functions.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a fold of a node name.
fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Position of one virtual node on the circle.
fn point_hash(name: &str, vnode: u32) -> u64 {
    splitmix(fnv(name) ^ (vnode as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Position of a stream on the circle.
fn stream_hash(stream: u64) -> u64 {
    splitmix(stream ^ 0x5851_F42D_4C95_7F2D)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> Ring {
        Ring::new(
            1,
            64,
            vec![
                NodeInfo { name: "a".into(), addr: "127.0.0.1:7001".into() },
                NodeInfo { name: "b".into(), addr: "127.0.0.1:7002".into() },
                NodeInfo { name: "c".into(), addr: "127.0.0.1:7003".into() },
            ],
        )
        .expect("ring")
    }

    #[test]
    fn placement_is_deterministic_and_roughly_balanced() {
        let ring = three();
        let mut counts = std::collections::HashMap::new();
        for id in 0..3000u64 {
            let owner = ring.owner_of(id).name.clone();
            assert_eq!(owner, ring.owner_of(id).name, "placement is a pure function");
            *counts.entry(owner).or_insert(0u64) += 1;
        }
        for name in ["a", "b", "c"] {
            let share = counts[name] as f64 / 3000.0;
            assert!(
                (0.15..=0.55).contains(&share),
                "node {name} owns {share:.2} of the keyspace — vnodes are not smoothing"
            );
        }
    }

    #[test]
    fn codec_round_trips_and_rejects_corruption() {
        let mut ring = three();
        ring.reassign("a", "c").expect("drain a");
        ring.fail_over("b").expect("fail over b");
        assert_eq!(
            ring.inherited(),
            &[
                ("a".into(), "c".into(), HandoffKind::Drained),
                ("b".into(), "c".into(), HandoffKind::Failed),
            ],
            "drain and failover edges carry their handoff kind"
        );
        let blob = ring.encode();
        let back = Ring::decode(&blob).expect("decode");
        assert_eq!(back, ring);
        for id in 0..500u64 {
            assert_eq!(back.owner_of(id), ring.owner_of(id));
        }

        let mut bad = blob.clone();
        bad[12] ^= 0xFF;
        assert!(matches!(Ring::decode(&bad), Err(ClusterError::Ring(_))), "CRC must catch flips");
        assert!(matches!(Ring::decode(&blob[..blob.len() - 3]), Err(ClusterError::Ring(_))));
    }

    #[test]
    fn membership_growth_moves_a_bounded_share() {
        let ring3 = three();
        let mut nodes: Vec<NodeInfo> = ring3.nodes().to_vec();
        nodes.push(NodeInfo { name: "d".into(), addr: "127.0.0.1:7004".into() });
        let ring4 = Ring::new(2, 64, nodes).expect("ring of four");
        let moved = (0..4000u64)
            .filter(|&id| ring3.owner_of(id).name != ring4.owner_of(id).name)
            .count() as f64
            / 4000.0;
        // Consistent hashing: a join relocates about 1/N of the keys, not
        // a wholesale reshuffle.
        assert!(moved < 0.40, "a 3→4 join moved {moved:.2} of the keyspace");
        assert!(moved > 0.05, "a join that moves nothing placed no keys on the new node");
    }

    #[test]
    fn fail_over_moves_exactly_the_dead_range_to_the_successor() {
        let mut ring = three();
        let before: Vec<(u64, String)> =
            (0..2000u64).map(|id| (id, ring.owner_of(id).name.clone())).collect();
        let heir = ring.fail_over("b").expect("fail over b");
        assert_eq!(heir, "c", "successor of b in name order among {{a, c}}");
        assert_eq!(ring.version(), 2, "mutation bumps the version");
        assert!(!ring.is_alive("b"));
        for (id, owner) in before {
            let now = ring.owner_of(id).name.clone();
            if owner == "b" {
                assert_eq!(now, "c", "stream {id}: dead range goes to the heir");
            } else {
                assert_eq!(now, owner, "stream {id}: live ranges must not move");
            }
        }

        // Chained failure: c dies next, a inherits both ranges.
        let heir = ring.fail_over("c").expect("fail over c");
        assert_eq!(heir, "a");
        for id in 0..500u64 {
            assert_eq!(ring.owner_of(id).name, "a");
        }
        assert!(ring.fail_over("a").is_err(), "the last node has no successor");
    }

    #[test]
    fn successor_cycles_in_name_order_over_live_nodes() {
        let mut ring = three();
        assert_eq!(ring.successor("a").expect("succ").name, "b");
        assert_eq!(ring.successor("c").expect("succ wraps").name, "a");
        ring.reassign("b", "c").expect("drain b");
        assert_eq!(ring.successor("a").expect("skips drained b").name, "c");
        assert_eq!(ring.successor("missing"), None);
    }

    #[test]
    fn invalid_construction_and_mutation_are_refused() {
        assert!(Ring::new(1, 0, three().nodes().to_vec()).is_err(), "zero vnodes");
        assert!(Ring::new(1, 8, Vec::new()).is_err(), "empty membership");
        let dup = vec![
            NodeInfo { name: "a".into(), addr: "x:1".into() },
            NodeInfo { name: "a".into(), addr: "x:2".into() },
        ];
        assert!(Ring::new(1, 8, dup).is_err(), "duplicate names");

        let mut ring = three();
        assert!(ring.reassign("a", "a").is_err());
        assert!(ring.reassign("a", "nope").is_err());
        ring.reassign("a", "b").expect("drain a");
        assert!(ring.reassign("a", "c").is_err(), "already reassigned");
        assert!(ring.reassign("c", "a").is_err(), "heir must be live");
    }
}
