//! Randomized property tests for the linear-algebra kernels.
//!
//! Seeded `simrng` loops replace the original proptest strategies so the
//! suite runs without external crates; every case is deterministic per seed.

use simrng::{Rng64, Xoshiro256pp};

use linalg::gauss;
use linalg::toeplitz::{levinson_durbin, toeplitz_matvec};
use linalg::{Cholesky, Matrix, SymEigen};

fn random_vec(rng: &mut Xoshiro256pp, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

/// Random symmetric matrix built as A = (B + Bᵀ)/2 from bounded entries.
fn symmetric(rng: &mut Xoshiro256pp, n: usize) -> Matrix {
    let b = Matrix::from_vec(n, n, random_vec(rng, n * n, -5.0, 5.0)).unwrap();
    let mut a = b.add(&b.transpose()).unwrap();
    a.scale(0.5);
    a
}

/// Random symmetric positive-definite matrix: A = BᵀB + εI.
fn spd(rng: &mut Xoshiro256pp, n: usize) -> Matrix {
    let b = Matrix::from_vec(n, n, random_vec(rng, n * n, -3.0, 3.0)).unwrap();
    let mut a = b.transpose().matmul(&b).unwrap();
    for i in 0..n {
        a[(i, i)] += 0.5;
    }
    a
}

/// Jacobi eigenpairs satisfy A v = λ v and V is orthonormal.
#[test]
fn eigen_residual_and_orthonormality() {
    let mut rng = Xoshiro256pp::seed_from_u64(101);
    for _ in 0..64 {
        let a = symmetric(&mut rng, 6);
        let e = SymEigen::decompose(&a).unwrap();
        let scale = a.frobenius_norm().max(1.0);
        for k in 0..6 {
            let v = e.eigenvector(k);
            let av = a.matvec(&v).unwrap();
            for (x, y) in av.iter().zip(&v) {
                assert!((x - e.eigenvalues[k] * y).abs() < 1e-8 * scale);
            }
        }
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-9);
    }
}

/// Eigenvalue sum equals the trace; descending order holds.
#[test]
fn eigen_trace_and_order() {
    let mut rng = Xoshiro256pp::seed_from_u64(102);
    for _ in 0..64 {
        let a = symmetric(&mut rng, 5);
        let e = SymEigen::decompose(&a).unwrap();
        let trace: f64 = (0..5).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-10);
        }
    }
}

/// Cholesky reconstructs and solves SPD systems.
#[test]
fn cholesky_solve_round_trip() {
    let mut rng = Xoshiro256pp::seed_from_u64(103);
    for _ in 0..64 {
        let a = spd(&mut rng, 5);
        let x = random_vec(&mut rng, 5, -5.0, 5.0);
        let b = a.matvec(&x).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let got = c.solve(&b).unwrap();
        let llt = c.factor().matmul(&c.factor().transpose()).unwrap();
        assert!(llt.max_abs_diff(&a).unwrap() < 1e-8 * a.frobenius_norm().max(1.0));
        // Verify by substitution (robust to conditioning, unlike x-comparison).
        let back = a.matvec(&got).unwrap();
        for (bi, gi) in b.iter().zip(&back) {
            assert!((bi - gi).abs() < 1e-6 * b.iter().map(|v| v.abs()).fold(1.0, f64::max));
        }
    }
}

/// Gaussian elimination agrees with Cholesky on SPD systems.
#[test]
fn gauss_matches_cholesky() {
    let mut rng = Xoshiro256pp::seed_from_u64(104);
    for _ in 0..64 {
        let a = spd(&mut rng, 4);
        let x = random_vec(&mut rng, 4, -5.0, 5.0);
        let b = a.matvec(&x).unwrap();
        let g = gauss::solve(&a, &b).unwrap();
        let c = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        for (gi, ci) in g.iter().zip(&c) {
            assert!((gi - ci).abs() < 1e-6 * gi.abs().max(1.0));
        }
    }
}

/// Levinson–Durbin solves the Toeplitz system it claims to solve, for
/// autocovariance sequences of genuine AR(1) processes.
#[test]
fn levinson_solves_toeplitz() {
    let mut rng = Xoshiro256pp::seed_from_u64(105);
    for _ in 0..64 {
        let phi = rng.uniform(-0.9, 0.9);
        let order = 1 + rng.next_below(5) as usize;
        // Theoretical AR(1) autocovariance: r(k) = phi^k / (1 - phi^2).
        let r: Vec<f64> = (0..=order).map(|k| phi.powi(k as i32) / (1.0 - phi * phi)).collect();
        let out = levinson_durbin(&r, order).unwrap();
        let lhs = toeplitz_matvec(&r, &out.coefficients);
        for i in 0..order {
            assert!((lhs[i] - r[i + 1]).abs() < 1e-8, "{} vs {}", lhs[i], r[i + 1]);
        }
        // AR(1) truth: first coefficient ~ phi, rest ~ 0.
        assert!((out.coefficients[0] - phi).abs() < 1e-8);
        for &c in &out.coefficients[1..] {
            assert!(c.abs() < 1e-8);
        }
    }
}

/// Matmul is associative on compatible shapes (within tolerance).
#[test]
fn matmul_associative() {
    let mut rng = Xoshiro256pp::seed_from_u64(106);
    for _ in 0..64 {
        let ma = Matrix::from_vec(2, 3, random_vec(&mut rng, 6, -2.0, 2.0)).unwrap();
        let mb = Matrix::from_vec(3, 2, random_vec(&mut rng, 6, -2.0, 2.0)).unwrap();
        let mc = Matrix::from_vec(2, 3, random_vec(&mut rng, 6, -2.0, 2.0)).unwrap();
        let left = ma.matmul(&mb).unwrap().matmul(&mc).unwrap();
        let right = ma.matmul(&mb.matmul(&mc).unwrap()).unwrap();
        assert!(left.max_abs_diff(&right).unwrap() < 1e-10);
    }
}

/// Transpose distributes over products: (AB)ᵀ = BᵀAᵀ.
#[test]
fn transpose_of_product() {
    let mut rng = Xoshiro256pp::seed_from_u64(107);
    for _ in 0..64 {
        let ma = Matrix::from_vec(2, 4, random_vec(&mut rng, 8, -2.0, 2.0)).unwrap();
        let mb = Matrix::from_vec(4, 2, random_vec(&mut rng, 8, -2.0, 2.0)).unwrap();
        let lhs = ma.matmul(&mb).unwrap().transpose();
        let rhs = mb.transpose().matmul(&ma.transpose()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-12);
    }
}

/// Covariance matrices are symmetric positive-semidefinite.
#[test]
fn covariance_is_psd() {
    let mut rng = Xoshiro256pp::seed_from_u64(108);
    for _ in 0..64 {
        let m = Matrix::from_vec(8, 3, random_vec(&mut rng, 24, -10.0, 10.0)).unwrap();
        let cov = m.covariance();
        assert!(cov.is_symmetric(1e-10));
        let e = SymEigen::decompose(&cov).unwrap();
        for &l in &e.eigenvalues {
            assert!(l > -1e-9, "negative eigenvalue {l}");
        }
    }
}
