//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;

use linalg::gauss;
use linalg::toeplitz::{levinson_durbin, toeplitz_matvec};
use linalg::{Cholesky, Matrix, SymEigen};

/// Random symmetric matrix built as A = B + Bᵀ from bounded entries.
fn symmetric(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data).unwrap();
        let mut a = b.add(&b.transpose()).unwrap();
        a.scale(0.5);
        a
    })
}

/// Random symmetric positive-definite matrix: A = BᵀB + εI.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data).unwrap();
        let mut a = b.transpose().matmul(&b).unwrap();
        for i in 0..n {
            a[(i, i)] += 0.5;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Jacobi eigenpairs satisfy A v = λ v and V is orthonormal.
    #[test]
    fn eigen_residual_and_orthonormality(a in symmetric(6)) {
        let e = SymEigen::decompose(&a).unwrap();
        let scale = a.frobenius_norm().max(1.0);
        for k in 0..6 {
            let v = e.eigenvector(k);
            let av = a.matvec(&v).unwrap();
            for (x, y) in av.iter().zip(&v) {
                prop_assert!((x - e.eigenvalues[k] * y).abs() < 1e-8 * scale);
            }
        }
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        prop_assert!(vtv.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-9);
    }

    /// Eigenvalue sum equals the trace; descending order holds.
    #[test]
    fn eigen_trace_and_order(a in symmetric(5)) {
        let e = SymEigen::decompose(&a).unwrap();
        let trace: f64 = (0..5).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
        for w in e.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
    }

    /// Cholesky reconstructs and solves SPD systems.
    #[test]
    fn cholesky_solve_round_trip(a in spd(5), x in proptest::collection::vec(-5.0f64..5.0, 5)) {
        let b = a.matvec(&x).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let got = c.solve(&b).unwrap();
        let llt = c.factor().matmul(&c.factor().transpose()).unwrap();
        prop_assert!(llt.max_abs_diff(&a).unwrap() < 1e-8 * a.frobenius_norm().max(1.0));
        // Verify by substitution (robust to conditioning, unlike x-comparison).
        let back = a.matvec(&got).unwrap();
        for (bi, gi) in b.iter().zip(&back) {
            prop_assert!((bi - gi).abs() < 1e-6 * b.iter().map(|v| v.abs()).fold(1.0, f64::max));
        }
    }

    /// Gaussian elimination agrees with Cholesky on SPD systems.
    #[test]
    fn gauss_matches_cholesky(a in spd(4), x in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let b = a.matvec(&x).unwrap();
        let g = gauss::solve(&a, &b).unwrap();
        let c = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        for (gi, ci) in g.iter().zip(&c) {
            prop_assert!((gi - ci).abs() < 1e-6 * gi.abs().max(1.0));
        }
    }

    /// Levinson–Durbin solves the Toeplitz system it claims to solve, for
    /// autocovariance sequences of genuine AR(1) processes.
    #[test]
    fn levinson_solves_toeplitz(phi in -0.9f64..0.9, order in 1usize..6) {
        // Theoretical AR(1) autocovariance: r(k) = phi^k / (1 - phi^2).
        let r: Vec<f64> = (0..=order).map(|k| phi.powi(k as i32) / (1.0 - phi * phi)).collect();
        let out = levinson_durbin(&r, order).unwrap();
        let lhs = toeplitz_matvec(&r, &out.coefficients);
        for i in 0..order {
            prop_assert!((lhs[i] - r[i + 1]).abs() < 1e-8, "{} vs {}", lhs[i], r[i + 1]);
        }
        // AR(1) truth: first coefficient ~ phi, rest ~ 0.
        prop_assert!((out.coefficients[0] - phi).abs() < 1e-8);
        for &c in &out.coefficients[1..] {
            prop_assert!(c.abs() < 1e-8);
        }
    }

    /// Matmul is associative on compatible shapes (within tolerance).
    #[test]
    fn matmul_associative(
        a in proptest::collection::vec(-2.0f64..2.0, 6),
        b in proptest::collection::vec(-2.0f64..2.0, 6),
        c in proptest::collection::vec(-2.0f64..2.0, 6),
    ) {
        let ma = Matrix::from_vec(2, 3, a).unwrap();
        let mb = Matrix::from_vec(3, 2, b).unwrap();
        let mc = Matrix::from_vec(2, 3, c).unwrap();
        let left = ma.matmul(&mb).unwrap().matmul(&mc).unwrap();
        let right = ma.matmul(&mb.matmul(&mc).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right).unwrap() < 1e-10);
    }

    /// Transpose distributes over products: (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_of_product(
        a in proptest::collection::vec(-2.0f64..2.0, 8),
        b in proptest::collection::vec(-2.0f64..2.0, 8),
    ) {
        let ma = Matrix::from_vec(2, 4, a).unwrap();
        let mb = Matrix::from_vec(4, 2, b).unwrap();
        let lhs = ma.matmul(&mb).unwrap().transpose();
        let rhs = mb.transpose().matmul(&ma.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-12);
    }

    /// Covariance matrices are symmetric positive-semidefinite.
    #[test]
    fn covariance_is_psd(data in proptest::collection::vec(-10.0f64..10.0, 24)) {
        let m = Matrix::from_vec(8, 3, data).unwrap();
        let cov = m.covariance();
        prop_assert!(cov.is_symmetric(1e-10));
        let e = SymEigen::decompose(&cov).unwrap();
        for &l in &e.eigenvalues {
            prop_assert!(l > -1e-9, "negative eigenvalue {l}");
        }
    }
}
