//! Gaussian elimination with partial pivoting for general small square systems.
//!
//! The generic fallback solver: least-squares normal equations that are only
//! semi-definite, cross-checking Toeplitz solves in tests, and anywhere a one-off
//! `A x = b` is needed without factor reuse.

use crate::{LinalgError, Matrix, Result};

/// Solves `a x = b` by LU with partial pivoting (in-place on copies).
///
/// # Errors
///
/// * [`LinalgError::InvalidArgument`] if `a` is not square;
/// * [`LinalgError::ShapeMismatch`] if `b.len() != a.rows()`;
/// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::InvalidArgument(format!(
            "solve requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch(format!(
            "solve: matrix is {n}x{n}, rhs has length {}",
            b.len()
        )));
    }

    let mut m = a.clone();
    let mut rhs = b.to_vec();
    let scale = m.as_slice().iter().fold(0.0f64, |acc, &x| acc.max(x.abs()));
    let tiny = f64::EPSILON * scale.max(1.0) * n as f64;

    for col in 0..n {
        // Partial pivot: largest absolute entry in this column at or below row `col`.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[(i, col)]
                    .abs()
                    .partial_cmp(&m[(j, col)].abs())
                    .expect("matrix entries are finite")
            })
            .expect("non-empty range");
        if m[(pivot_row, col)].abs() <= tiny {
            return Err(LinalgError::Singular(format!(
                "pivot in column {col} is {:.3e}",
                m[(pivot_row, col)]
            )));
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[(col, col)];
        for row in col + 1..n {
            let f = m[(row, col)] / pivot;
            if f == 0.0 {
                continue;
            }
            m[(row, col)] = 0.0;
            for j in col + 1..n {
                let v = m[(col, j)];
                m[(row, j)] -= f * v;
            }
            rhs[row] -= f * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = rhs[i];
        for j in i + 1..n {
            s -= m[(i, j)] * x[j];
        }
        x[i] = s / m[(i, i)];
    }
    Ok(x)
}

/// Solves the least-squares problem `min ||A x - b||₂` via the normal equations
/// `AᵀA x = Aᵀb` (adequate for the tiny, well-conditioned systems in this
/// workspace, e.g. low-degree polynomial fits).
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `b.len() != a.rows()`;
/// * [`LinalgError::Singular`] if `AᵀA` is singular (rank-deficient design).
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch(format!(
            "lstsq: design is {}x{}, rhs has length {}",
            a.rows(),
            a.cols(),
            b.len()
        )));
    }
    let at = a.transpose();
    let ata = at.matmul(a)?;
    let atb = at.matvec(b)?;
    solve(&ata, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular(_))));
    }

    #[test]
    fn rejects_shape_problems() {
        assert!(solve(&Matrix::zeros(2, 3), &[1.0, 2.0]).is_err());
        assert!(solve(&Matrix::identity(2), &[1.0]).is_err());
    }

    #[test]
    fn round_trip_random_like_system() {
        let a = Matrix::from_rows(&[
            vec![3.0, -1.0, 2.0, 0.5],
            vec![1.0, 4.0, -2.0, 1.0],
            vec![0.0, 2.0, 5.0, -1.0],
            vec![2.0, 0.0, 1.0, 3.0],
        ])
        .unwrap();
        let x_true = vec![1.0, -1.0, 2.0, 0.25];
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn lstsq_exact_fit_line() {
        // Fit y = 2x + 1 through three exact points.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let x = lstsq(&a, &[1.0, 3.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_overdetermined_minimizes_residual() {
        // Points on y = x with one outlier pulled up: slope should stay near 1,
        // and the residual must be no worse than the exact-line parameters'.
        let a =
            Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]])
                .unwrap();
        let b = [0.0, 1.0, 2.0, 4.0];
        let x = lstsq(&a, &b).unwrap();
        let res_fit: f64 = a.matvec(&x).unwrap().iter().zip(&b).map(|(p, o)| (p - o).powi(2)).sum();
        let res_line: f64 =
            a.matvec(&[0.0, 1.0]).unwrap().iter().zip(&b).map(|(p, o)| (p - o).powi(2)).sum();
        assert!(res_fit <= res_line + 1e-12);
    }

    #[test]
    fn lstsq_rank_deficient_errors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        assert!(lstsq(&a, &[1.0, 2.0, 3.0]).is_err());
    }
}
