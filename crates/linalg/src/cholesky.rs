//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! Used by the polynomial-fit predictor (normal equations of least squares) and
//! as an independent solver in tests that cross-check Levinson–Durbin.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `a` is not square;
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive
    ///   (within a small relative tolerance).
    pub fn decompose(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::InvalidArgument(format!(
                "Cholesky requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite(format!("pivot {j} is {d:.3e}")));
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(Self { l })
    }

    /// Borrows the lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` by forward/backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    #[allow(clippy::needless_range_loop)] // triangular indexing is clearer
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "Cholesky::solve: matrix is {n}x{n}, rhs has length {}",
                b.len()
            )));
        }
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_known_spd_matrix() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-15);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn l_lt_reconstructs_a() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0, 1.0], vec![2.0, 5.0, 2.0], vec![1.0, 2.0, 4.0]])
            .unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let llt = c.factor().matmul(&c.factor().transpose()).unwrap();
        assert!(llt.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn solve_round_trips() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0, 1.0], vec![2.0, 5.0, 2.0], vec![1.0, 2.0, 4.0]])
            .unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(Cholesky::decompose(&a), Err(LinalgError::NotPositiveDefinite(_))));
    }

    #[test]
    fn rejects_nonsquare_and_bad_rhs() {
        assert!(Cholesky::decompose(&Matrix::zeros(2, 3)).is_err());
        let a = Matrix::identity(2);
        let c = Cholesky::decompose(&a).unwrap();
        assert!(c.solve(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn identity_solve_is_identity() {
        let c = Cholesky::decompose(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(c.solve(&b).unwrap(), b);
    }
}
