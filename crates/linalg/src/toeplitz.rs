//! Levinson–Durbin recursion for Toeplitz systems.
//!
//! The Yule–Walker equations of AR(p) fitting have the form `R φ = r`, where `R`
//! is the symmetric Toeplitz matrix of autocovariances `R[i][j] = r(|i-j|)` and
//! the right-hand side is `r(1..=p)`. Levinson–Durbin solves this in `O(p²)`
//! instead of `O(p³)` and produces, as by-products, the reflection coefficients
//! and the innovation variance at every order — both exposed because the
//! `predictors` crate uses the innovation variance for order diagnostics.

use crate::{LinalgError, Result};

/// Output of the Levinson–Durbin recursion at the requested order `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct LevinsonResult {
    /// AR coefficients `φ₁..φ_p` such that `x_t ≈ Σ φ_i x_{t-i}`.
    pub coefficients: Vec<f64>,
    /// Reflection (partial autocorrelation) coefficients `k₁..k_p`.
    pub reflection: Vec<f64>,
    /// Innovation (one-step prediction error) variance at order `p`.
    pub innovation_variance: f64,
}

/// Solves the Yule–Walker equations at order `p` from autocovariances
/// `r[0..=p]` (`r[0]` is the zero-lag autocovariance, i.e. the variance).
///
/// # Errors
///
/// * [`LinalgError::InvalidArgument`] if `p == 0` or `r.len() < p + 1`;
/// * [`LinalgError::Singular`] if `r[0] <= 0` or the prediction-error variance
///   collapses to a non-positive value mid-recursion (perfectly predictable or
///   degenerate input).
pub fn levinson_durbin(r: &[f64], p: usize) -> Result<LevinsonResult> {
    if p == 0 {
        return Err(LinalgError::InvalidArgument("levinson_durbin: order must be >= 1".into()));
    }
    if r.len() < p + 1 {
        return Err(LinalgError::InvalidArgument(format!(
            "levinson_durbin: need {} autocovariances for order {p}, got {}",
            p + 1,
            r.len()
        )));
    }
    if !(r[0].is_finite() && r[0] > 0.0) {
        return Err(LinalgError::Singular(format!(
            "levinson_durbin: zero-lag autocovariance must be positive, got {}",
            r[0]
        )));
    }

    let mut phi = vec![0.0; p]; // phi[i] = φ_{i+1} at the current order
    let mut prev = vec![0.0; p];
    let mut reflection = Vec::with_capacity(p);
    let mut e = r[0];

    for k in 0..p {
        // acc = r[k+1] - Σ_{j<k} φ_j r[k-j]
        let mut acc = r[k + 1];
        for j in 0..k {
            acc -= phi[j] * r[k - j];
        }
        if e <= 0.0 || !e.is_finite() {
            return Err(LinalgError::Singular(format!(
                "levinson_durbin: prediction-error variance degenerated at order {k}"
            )));
        }
        let kk = acc / e;
        reflection.push(kk);

        prev[..k].copy_from_slice(&phi[..k]);
        phi[k] = kk;
        for j in 0..k {
            phi[j] = prev[j] - kk * prev[k - 1 - j];
        }
        e *= 1.0 - kk * kk;
    }

    Ok(LevinsonResult { coefficients: phi, reflection, innovation_variance: e })
}

/// Multiplies the symmetric Toeplitz matrix defined by first column `r[0..n]`
/// with vector `x` — used in tests to verify Levinson solutions directly.
///
/// # Panics
///
/// Panics if `x.len() > r.len()`.
pub fn toeplitz_matvec(r: &[f64], x: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert!(n <= r.len(), "toeplitz_matvec: need r for all lags");
    (0..n).map(|i| (0..n).map(|j| r[i.abs_diff(j)] * x[j]).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_is_lag_one_autocorrelation() {
        // For AR(1): φ₁ = r(1)/r(0).
        let r = [2.0, 1.0];
        let out = levinson_durbin(&r, 1).unwrap();
        assert!((out.coefficients[0] - 0.5).abs() < 1e-15);
        assert!((out.innovation_variance - 2.0 * (1.0 - 0.25)).abs() < 1e-15);
    }

    #[test]
    fn solves_the_toeplitz_system_exactly() {
        // Verify R φ = r(1..=p) by direct multiplication.
        let r = [4.0, 2.0, 1.0, 0.5, 0.2];
        for p in 1..=4 {
            let out = levinson_durbin(&r, p).unwrap();
            let lhs = toeplitz_matvec(&r, &out.coefficients);
            for i in 0..p {
                assert!(
                    (lhs[i] - r[i + 1]).abs() < 1e-10,
                    "order {p}, row {i}: {} vs {}",
                    lhs[i],
                    r[i + 1]
                );
            }
        }
    }

    #[test]
    fn recovers_known_ar2_from_theoretical_autocovariance() {
        // AR(2) x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + e_t, sigma2 = 1.
        // Theoretical autocovariances satisfy the Yule-Walker recursion:
        // rho(1) = phi1 / (1 - phi2); rho(k) = phi1 rho(k-1) + phi2 rho(k-2).
        let (phi1, phi2) = (0.5, 0.3);
        let rho1 = phi1 / (1.0 - phi2);
        let rho2 = phi1 * rho1 + phi2;
        let rho3 = phi1 * rho2 + phi2 * rho1;
        let r = [1.0, rho1, rho2, rho3];
        let out = levinson_durbin(&r, 2).unwrap();
        assert!((out.coefficients[0] - phi1).abs() < 1e-12);
        assert!((out.coefficients[1] - phi2).abs() < 1e-12);
    }

    #[test]
    fn innovation_variance_decreases_with_order() {
        let r = [4.0, 2.0, 1.0, 0.5, 0.2];
        let mut last = f64::INFINITY;
        for p in 1..=4 {
            let out = levinson_durbin(&r, p).unwrap();
            assert!(out.innovation_variance <= last + 1e-12);
            assert!(out.innovation_variance > 0.0);
            last = out.innovation_variance;
        }
    }

    #[test]
    fn white_noise_has_zero_coefficients() {
        let r = [1.0, 0.0, 0.0, 0.0];
        let out = levinson_durbin(&r, 3).unwrap();
        assert!(out.coefficients.iter().all(|&c| c.abs() < 1e-15));
        assert!((out.innovation_variance - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(levinson_durbin(&[1.0, 0.5], 0).is_err());
        assert!(levinson_durbin(&[1.0], 1).is_err());
        assert!(levinson_durbin(&[0.0, 0.0], 1).is_err());
        assert!(levinson_durbin(&[-1.0, 0.0], 1).is_err());
    }

    #[test]
    fn perfectly_correlated_series_degenerates() {
        // r(k) = r(0) for all k means x is constant: order-2 fit must fail
        // because the order-1 innovation variance hits exactly zero.
        let r = [1.0, 1.0, 1.0];
        let err = levinson_durbin(&r, 2).unwrap_err();
        assert!(matches!(err, LinalgError::Singular(_)));
    }

    #[test]
    fn reflection_coefficients_are_bounded_for_valid_sequences() {
        // For a positive-definite autocovariance sequence, |k_i| < 1.
        let r = [3.0, 1.5, 0.9, 0.4];
        let out = levinson_durbin(&r, 3).unwrap();
        for &k in &out.reflection {
            assert!(k.abs() < 1.0, "reflection {k}");
        }
    }

    #[test]
    fn toeplitz_matvec_known() {
        let r = [2.0, 1.0, 0.0];
        let y = toeplitz_matvec(&r, &[1.0, 1.0, 1.0]);
        // Row 0: 2+1+0, row 1: 1+2+1, row 2: 0+1+2.
        assert_eq!(y, vec![3.0, 4.0, 3.0]);
    }
}
