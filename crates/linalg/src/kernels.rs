//! Runtime-dispatched vector kernels for the serving and training hot paths.
//!
//! Every kernel has two implementations — a portable scalar one and an
//! x86_64 AVX2 one (`std::arch` intrinsics, no external dependencies) — that
//! are **bit-identical by construction**: both accumulate reductions in the
//! same four strided lanes (lane `j` holds elements `j, j+4, j+8, …`),
//! combine the lanes in the fixed order `(l0 + l2) + (l1 + l3)` (exactly what
//! the AVX2 horizontal sum produces), process the `< 4` tail sequentially
//! after the lane combine, and perform the same per-element operation
//! sequence (multiply, round, add, round — no fused multiply-add anywhere,
//! so no single-rounding divergence). Elementwise kernels (axpy,
//! z-normalise, widen) are trivially identical per element. The parity tests
//! at the bottom of this file and the dispatch-forcing suite in CI
//! (`LARP_KERNELS=scalar`) hold both implementations to *exact* `to_bits`
//! equality on random lengths, alignments and subnormal inputs, with one
//! documented carve-out: when a result is NaN, only NaN-ness is guaranteed —
//! IEEE leaves NaN payload propagation unspecified and LLVM commutes scalar
//! additions, so payload bits are not reproducible even scalar-to-scalar.
//! (The serving pipeline sanitises NaN out before any kernel runs.)
//!
//! # Dispatch
//!
//! The implementation is chosen once per process ([`std::sync::OnceLock`]):
//! AVX2 when `is_x86_feature_detected!("avx2")` says so, scalar otherwise.
//! The environment variable `LARP_KERNELS` overrides the choice for testing:
//! `scalar` forces the portable path anywhere; `avx2` requests the SIMD path
//! and falls back to scalar (silently) where AVX2 is unavailable, so test
//! scripts can export it unconditionally. [`active`] reports the selection.

use std::sync::OnceLock;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Scalar,
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Avx2,
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn mode() -> Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    *MODE.get_or_init(|| {
        let forced = std::env::var("LARP_KERNELS");
        match forced.as_deref() {
            Ok("scalar") => Mode::Scalar,
            // "avx2" (or auto): take SIMD when the CPU has it. An explicit
            // "avx2" on a host without it degrades to scalar so CI scripts
            // can export the variable unconditionally.
            _ => {
                if avx2_available() {
                    Mode::Avx2
                } else {
                    Mode::Scalar
                }
            }
        }
    })
}

/// Name of the selected implementation: `"avx2"` or `"scalar"`.
pub fn active() -> &'static str {
    match mode() {
        Mode::Scalar => "scalar",
        Mode::Avx2 => "avx2",
    }
}

/// Dispatches `$scalar_expr` / `$avx2_expr` on the process-wide mode.
///
/// The AVX2 arm only exists on x86_64; elsewhere the mode is always scalar.
macro_rules! dispatch {
    ($avx2:expr, $scalar:expr) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if mode() == Mode::Avx2 {
                // SAFETY: Mode::Avx2 is only ever selected after
                // `is_x86_feature_detected!("avx2")` returned true.
                return unsafe { $avx2 };
            }
        }
        $scalar
    }};
}

/// Dot product `Σ aᵢ·bᵢ`.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    dispatch!(avx2::dot(a, b), scalar::dot(a, b))
}

/// Squared Euclidean distance `Σ (aᵢ−bᵢ)²`.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    dispatch!(avx2::squared_distance(a, b), scalar::squared_distance(a, b))
}

/// Plain sum `Σ xᵢ` (0.0 for an empty slice).
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    dispatch!(avx2::sum(xs), scalar::sum(xs))
}

/// Shifted first and second moments in one pass:
/// `(Σ (xᵢ−s), Σ (xᵢ−s)²)` — the rolling-moments resummation kernel.
#[inline]
pub fn centered_sums(xs: &[f64], shift: f64) -> (f64, f64) {
    dispatch!(avx2::centered_sums(xs, shift), scalar::centered_sums(xs, shift))
}

/// Centered sum of squares `Σ (xᵢ−m)²` — the variance numerator.
#[inline]
pub fn centered_sum_sq(xs: &[f64], m: f64) -> f64 {
    dispatch!(avx2::centered_sum_sq(xs, m), scalar::centered_sum_sq(xs, m))
}

/// Lagged-covariance kernel `Σ (aᵢ−m)(bᵢ−m)` (both operands centered by the
/// same scalar mean) — the Yule–Walker autocovariance inner loop.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn centered_dot(a: &[f64], b: &[f64], m: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "centered_dot: length mismatch");
    dispatch!(avx2::centered_dot(a, b, m), scalar::centered_dot(a, b, m))
}

/// Projection kernel `Σ wᵢ·(xᵢ−mᵢ)` — one PCA component applied to a raw
/// observation without materialising the centered vector.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn project_dot(w: &[f64], x: &[f64], means: &[f64]) -> f64 {
    assert_eq!(w.len(), x.len(), "project_dot: weight/input length mismatch");
    assert_eq!(x.len(), means.len(), "project_dot: input/means length mismatch");
    dispatch!(avx2::project_dot(w, x, means), scalar::project_dot(w, x, means))
}

/// `y += alpha · x` (BLAS axpy).
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    dispatch!(avx2::axpy(alpha, x, y), scalar::axpy(alpha, x, y))
}

/// Centered axpy `yᵢ += alpha · (xᵢ−mᵢ)` — the covariance accumulation row.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn axpy_centered(alpha: f64, x: &[f64], means: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy_centered: length mismatch");
    assert_eq!(x.len(), means.len(), "axpy_centered: means length mismatch");
    dispatch!(avx2::axpy_centered(alpha, x, means, y), scalar::axpy_centered(alpha, x, means, y))
}

/// Z-normalisation `outᵢ = (xᵢ−mean) / divisor` into a caller slice.
///
/// Division is kept as division (not reciprocal multiplication) so the
/// result is bit-identical to the scalar `ZScore::apply` loop.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn znorm_apply(xs: &[f64], mean: f64, divisor: f64, out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "znorm_apply: length mismatch");
    dispatch!(
        avx2::znorm_apply(xs, mean, divisor, out),
        scalar::znorm_apply(xs, mean, divisor, out)
    )
}

/// [`znorm_apply`] into a reusable `Vec` (cleared and resized first).
pub fn znorm_apply_into(xs: &[f64], mean: f64, divisor: f64, out: &mut Vec<f64>) {
    out.clear();
    out.resize(xs.len(), 0.0);
    znorm_apply(xs, mean, divisor, out);
}

/// Batched squared distances from `query` to `points` (row-major, stride
/// `query.len()`): `out[p] = ‖query − points[p]‖²`. The AVX2 path carries a
/// four-points-at-a-time specialisation for the 2-dimensional post-PCA
/// feature space; results are bit-identical to per-point
/// [`squared_distance`].
///
/// # Panics
///
/// Panics unless `points.len() == out.len() * query.len()`.
#[inline]
pub fn sqdist_scan(query: &[f64], points: &[f64], out: &mut [f64]) {
    assert_eq!(
        points.len(),
        out.len() * query.len(),
        "sqdist_scan: {} point values vs {} outputs of dim {}",
        points.len(),
        out.len(),
        query.len()
    );
    dispatch!(avx2::sqdist_scan(query, points, out), scalar::sqdist_scan(query, points, out))
}

/// Fused project-then-distance: projects raw observation `x` (centered by
/// `means`) onto each row of `components` (row-major, `point.len()` rows of
/// `x.len()`) and accumulates the squared distance to `point` in the
/// projected space, without materialising the projection. Bit-identical to
/// [`project_dot`] per component followed by a sequential
/// `(proj − point)²` accumulation.
///
/// # Panics
///
/// Panics on any length mismatch.
pub fn project_sqdist(x: &[f64], means: &[f64], components: &[f64], point: &[f64]) -> f64 {
    let d = x.len();
    assert_eq!(means.len(), d, "project_sqdist: means length mismatch");
    assert_eq!(
        components.len(),
        point.len() * d,
        "project_sqdist: {} component values vs {} rows of dim {d}",
        components.len(),
        point.len()
    );
    let mut acc = 0.0;
    for (row, &pc) in components.chunks_exact(d.max(1)).zip(point) {
        let diff = project_dot(row, x, means) - pc;
        acc += diff * diff;
    }
    acc
}

/// Widens `f32` values to `f64` into a caller slice (exact conversion, so
/// trivially bit-identical across dispatches).
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn widen(src: &[f32], out: &mut [f64]) {
    assert_eq!(src.len(), out.len(), "widen: length mismatch");
    dispatch!(avx2::widen(src, out), scalar::widen(src, out))
}

/// [`widen`] into a reusable `Vec` (cleared and resized first).
pub fn widen_into(src: &[f32], out: &mut Vec<f64>) {
    out.clear();
    out.resize(src.len(), 0.0);
    widen(src, out);
}

/// Portable reference implementations. Every reduction uses the 4-lane
/// strided accumulation documented at the top of the file so the AVX2 twins
/// can match it exactly.
mod scalar {
    pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let lanes = n & !3;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        let mut i = 0;
        while i < lanes {
            s0 += a[i] * b[i];
            s1 += a[i + 1] * b[i + 1];
            s2 += a[i + 2] * b[i + 2];
            s3 += a[i + 3] * b[i + 3];
            i += 4;
        }
        let mut acc = (s0 + s2) + (s1 + s3);
        while i < n {
            acc += a[i] * b[i];
            i += 1;
        }
        acc
    }

    pub(super) fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let lanes = n & !3;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        let mut i = 0;
        while i < lanes {
            let d0 = a[i] - b[i];
            let d1 = a[i + 1] - b[i + 1];
            let d2 = a[i + 2] - b[i + 2];
            let d3 = a[i + 3] - b[i + 3];
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
            i += 4;
        }
        let mut acc = (s0 + s2) + (s1 + s3);
        while i < n {
            let d = a[i] - b[i];
            acc += d * d;
            i += 1;
        }
        acc
    }

    pub(super) fn sum(xs: &[f64]) -> f64 {
        let n = xs.len();
        let lanes = n & !3;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        let mut i = 0;
        while i < lanes {
            s0 += xs[i];
            s1 += xs[i + 1];
            s2 += xs[i + 2];
            s3 += xs[i + 3];
            i += 4;
        }
        let mut acc = (s0 + s2) + (s1 + s3);
        while i < n {
            acc += xs[i];
            i += 1;
        }
        acc
    }

    pub(super) fn centered_sums(xs: &[f64], shift: f64) -> (f64, f64) {
        let n = xs.len();
        let lanes = n & !3;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        let (mut q0, mut q1, mut q2, mut q3) = (0.0, 0.0, 0.0, 0.0);
        let mut i = 0;
        while i < lanes {
            let d0 = xs[i] - shift;
            let d1 = xs[i + 1] - shift;
            let d2 = xs[i + 2] - shift;
            let d3 = xs[i + 3] - shift;
            s0 += d0;
            s1 += d1;
            s2 += d2;
            s3 += d3;
            q0 += d0 * d0;
            q1 += d1 * d1;
            q2 += d2 * d2;
            q3 += d3 * d3;
            i += 4;
        }
        let mut s = (s0 + s2) + (s1 + s3);
        let mut q = (q0 + q2) + (q1 + q3);
        while i < n {
            let d = xs[i] - shift;
            s += d;
            q += d * d;
            i += 1;
        }
        (s, q)
    }

    pub(super) fn centered_sum_sq(xs: &[f64], m: f64) -> f64 {
        let n = xs.len();
        let lanes = n & !3;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        let mut i = 0;
        while i < lanes {
            let d0 = xs[i] - m;
            let d1 = xs[i + 1] - m;
            let d2 = xs[i + 2] - m;
            let d3 = xs[i + 3] - m;
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
            i += 4;
        }
        let mut acc = (s0 + s2) + (s1 + s3);
        while i < n {
            let d = xs[i] - m;
            acc += d * d;
            i += 1;
        }
        acc
    }

    pub(super) fn centered_dot(a: &[f64], b: &[f64], m: f64) -> f64 {
        let n = a.len();
        let lanes = n & !3;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        let mut i = 0;
        while i < lanes {
            s0 += (a[i] - m) * (b[i] - m);
            s1 += (a[i + 1] - m) * (b[i + 1] - m);
            s2 += (a[i + 2] - m) * (b[i + 2] - m);
            s3 += (a[i + 3] - m) * (b[i + 3] - m);
            i += 4;
        }
        let mut acc = (s0 + s2) + (s1 + s3);
        while i < n {
            acc += (a[i] - m) * (b[i] - m);
            i += 1;
        }
        acc
    }

    pub(super) fn project_dot(w: &[f64], x: &[f64], means: &[f64]) -> f64 {
        let n = w.len();
        let lanes = n & !3;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        let mut i = 0;
        while i < lanes {
            s0 += w[i] * (x[i] - means[i]);
            s1 += w[i + 1] * (x[i + 1] - means[i + 1]);
            s2 += w[i + 2] * (x[i + 2] - means[i + 2]);
            s3 += w[i + 3] * (x[i + 3] - means[i + 3]);
            i += 4;
        }
        let mut acc = (s0 + s2) + (s1 + s3);
        while i < n {
            acc += w[i] * (x[i] - means[i]);
            i += 1;
        }
        acc
    }

    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    pub(super) fn axpy_centered(alpha: f64, x: &[f64], means: &[f64], y: &mut [f64]) {
        for ((yi, &xi), &mi) in y.iter_mut().zip(x).zip(means) {
            *yi += alpha * (xi - mi);
        }
    }

    pub(super) fn znorm_apply(xs: &[f64], mean: f64, divisor: f64, out: &mut [f64]) {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = (x - mean) / divisor;
        }
    }

    pub(super) fn sqdist_scan(query: &[f64], points: &[f64], out: &mut [f64]) {
        let dim = query.len();
        for (o, p) in out.iter_mut().zip(points.chunks_exact(dim.max(1))) {
            *o = squared_distance(query, p);
        }
    }

    pub(super) fn widen(src: &[f32], out: &mut [f64]) {
        for (o, &s) in out.iter_mut().zip(src) {
            *o = f64::from(s);
        }
    }
}

/// AVX2 twins. Each function mirrors its scalar counterpart operation for
/// operation; see the module docs for the bit-identity argument.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Unaligned 4-wide load from `p[i..i + 4]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load(p: &[f64], i: usize) -> __m256d {
        debug_assert!(i + 4 <= p.len());
        // SAFETY: every call site keeps `i + 4 <= p.len()` (lane-loop bound).
        unsafe { _mm256_loadu_pd(p.as_ptr().add(i)) }
    }

    /// Unaligned 4-wide `f32` load from `p[i..i + 4]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load_ps(p: &[f32], i: usize) -> __m128 {
        debug_assert!(i + 4 <= p.len());
        // SAFETY: every call site keeps `i + 4 <= p.len()` (lane-loop bound).
        unsafe { _mm_loadu_ps(p.as_ptr().add(i)) }
    }

    /// Unaligned 4-wide store to `p[i..i + 4]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn store(p: &mut [f64], i: usize, v: __m256d) {
        debug_assert!(i + 4 <= p.len());
        // SAFETY: every call site keeps `i + 4 <= p.len()` (lane-loop bound).
        unsafe { _mm256_storeu_pd(p.as_mut_ptr().add(i), v) }
    }

    /// Horizontal sum in the fixed combine order `(l0 + l2) + (l1 + l3)` —
    /// the order the scalar 4-lane reduction uses.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v); // [l0, l1]
        let hi = _mm256_extractf128_pd::<1>(v); // [l2, l3]
        let pair = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
        let swapped = _mm_unpackhi_pd(pair, pair);
        _mm_cvtsd_f64(_mm_add_sd(pair, swapped))
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let lanes = n & !3;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < lanes {
            let va = load(a, i);
            let vb = load(b, i);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
            i += 4;
        }
        let mut total = hsum(acc);
        while i < n {
            total += a[i] * b[i];
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let lanes = n & !3;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < lanes {
            let d = _mm256_sub_pd(load(a, i), load(b, i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            i += 4;
        }
        let mut total = hsum(acc);
        while i < n {
            let d = a[i] - b[i];
            total += d * d;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn sum(xs: &[f64]) -> f64 {
        let n = xs.len();
        let lanes = n & !3;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < lanes {
            acc = _mm256_add_pd(acc, load(xs, i));
            i += 4;
        }
        let mut total = hsum(acc);
        while i < n {
            total += xs[i];
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn centered_sums(xs: &[f64], shift: f64) -> (f64, f64) {
        let n = xs.len();
        let lanes = n & !3;
        let vshift = _mm256_set1_pd(shift);
        let mut accs = _mm256_setzero_pd();
        let mut accq = _mm256_setzero_pd();
        let mut i = 0;
        while i < lanes {
            let d = _mm256_sub_pd(load(xs, i), vshift);
            accs = _mm256_add_pd(accs, d);
            accq = _mm256_add_pd(accq, _mm256_mul_pd(d, d));
            i += 4;
        }
        let mut s = hsum(accs);
        let mut q = hsum(accq);
        while i < n {
            let d = xs[i] - shift;
            s += d;
            q += d * d;
            i += 1;
        }
        (s, q)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn centered_sum_sq(xs: &[f64], m: f64) -> f64 {
        let n = xs.len();
        let lanes = n & !3;
        let vm = _mm256_set1_pd(m);
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < lanes {
            let d = _mm256_sub_pd(load(xs, i), vm);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            i += 4;
        }
        let mut total = hsum(acc);
        while i < n {
            let d = xs[i] - m;
            total += d * d;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn centered_dot(a: &[f64], b: &[f64], m: f64) -> f64 {
        let n = a.len();
        let lanes = n & !3;
        let vm = _mm256_set1_pd(m);
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < lanes {
            let da = _mm256_sub_pd(load(a, i), vm);
            let db = _mm256_sub_pd(load(b, i), vm);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(da, db));
            i += 4;
        }
        let mut total = hsum(acc);
        while i < n {
            total += (a[i] - m) * (b[i] - m);
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn project_dot(w: &[f64], x: &[f64], means: &[f64]) -> f64 {
        let n = w.len();
        let lanes = n & !3;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < lanes {
            let c = _mm256_sub_pd(load(x, i), load(means, i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(load(w, i), c));
            i += 4;
        }
        let mut total = hsum(acc);
        while i < n {
            total += w[i] * (x[i] - means[i]);
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let lanes = n & !3;
        let va = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i < lanes {
            let prod = _mm256_mul_pd(va, load(x, i));
            let cur = load(y, i);
            store(y, i, _mm256_add_pd(cur, prod));
            i += 4;
        }
        while i < n {
            y[i] += alpha * x[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn axpy_centered(alpha: f64, x: &[f64], means: &[f64], y: &mut [f64]) {
        let n = x.len();
        let lanes = n & !3;
        let va = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i < lanes {
            let c = _mm256_sub_pd(load(x, i), load(means, i));
            let cur = load(y, i);
            store(y, i, _mm256_add_pd(cur, _mm256_mul_pd(va, c)));
            i += 4;
        }
        while i < n {
            y[i] += alpha * (x[i] - means[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn znorm_apply(xs: &[f64], mean: f64, divisor: f64, out: &mut [f64]) {
        let n = xs.len();
        let lanes = n & !3;
        let vm = _mm256_set1_pd(mean);
        let vd = _mm256_set1_pd(divisor);
        let mut i = 0;
        while i < lanes {
            let z = _mm256_div_pd(_mm256_sub_pd(load(xs, i), vm), vd);
            store(out, i, z);
            i += 4;
        }
        while i < n {
            out[i] = (xs[i] - mean) / divisor;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn sqdist_scan(query: &[f64], points: &[f64], out: &mut [f64]) {
        let dim = query.len();
        if dim == 2 {
            return sqdist_scan_dim2(query, points, out);
        }
        for (o, p) in out.iter_mut().zip(points.chunks_exact(dim.max(1))) {
            *o = squared_distance(query, p);
        }
    }

    /// Four 2-d points per iteration. Each distance is `dx² + dy²` — the
    /// same two product roundings and one add as the scalar dim-2 path.
    #[target_feature(enable = "avx2")]
    fn sqdist_scan_dim2(query: &[f64], points: &[f64], out: &mut [f64]) {
        let n = out.len();
        let quads = n & !3;
        let qx = _mm256_set1_pd(query[0]);
        let qy = _mm256_set1_pd(query[1]);
        let mut p = 0;
        while p < quads {
            let v01 = load(points, 2 * p); // [p0x p0y p1x p1y]
            let v23 = load(points, 2 * p + 4); // [p2x p2y p3x p3y]
            let xs = _mm256_unpacklo_pd(v01, v23); // [p0x p2x p1x p3x]
            let ys = _mm256_unpackhi_pd(v01, v23); // [p0y p2y p1y p3y]
            let dx = _mm256_sub_pd(xs, qx);
            let dy = _mm256_sub_pd(ys, qy);
            let r = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
            let mut tmp = [0.0f64; 4]; // [r0 r2 r1 r3]
            store(&mut tmp, 0, r);
            out[p] = tmp[0];
            out[p + 1] = tmp[2];
            out[p + 2] = tmp[1];
            out[p + 3] = tmp[3];
            p += 4;
        }
        while p < n {
            let dx = query[0] - points[2 * p];
            let dy = query[1] - points[2 * p + 1];
            out[p] = dx * dx + dy * dy;
            p += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn widen(src: &[f32], out: &mut [f64]) {
        let n = src.len();
        let lanes = n & !3;
        let mut i = 0;
        while i < lanes {
            let v = load_ps(src, i);
            store(out, i, _mm256_cvtps_pd(v));
            i += 4;
        }
        while i < n {
            out[i] = f64::from(src[i]);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream mixing magnitudes, signs, subnormals and
    /// NaN/infinities — the adversarial inputs of the parity contract.
    struct Gen(u64);

    impl Gen {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 1
        }

        fn next(&mut self) -> f64 {
            let r = self.next_u64();
            match r % 64 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                5 => f64::MIN_POSITIVE / 8.0, // subnormal
                6 => -f64::MIN_POSITIVE / 16.0,
                7 => 1e300,
                8 => -1e-300,
                _ => (r >> 11) as f64 / (1u64 << 53) as f64 * 2000.0 - 1000.0,
            }
        }

        fn finite(&mut self) -> f64 {
            let r = self.next_u64();
            (r >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
        }

        fn vec(&mut self, n: usize) -> Vec<f64> {
            (0..n).map(|_| self.next()).collect()
        }
    }

    /// The parity contract: exact `to_bits` equality, except that a NaN
    /// result only requires NaN from the other side — IEEE leaves NaN
    /// payload propagation unspecified and LLVM freely commutes scalar
    /// additions, so payload bits are not reproducible even between two
    /// scalar builds.
    fn assert_bits_eq(a: f64, b: f64, what: &str) {
        if a.is_nan() && b.is_nan() {
            return;
        }
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a:?} vs {b:?}");
    }

    /// Runs `f` against both implementations of a reduction and asserts
    /// exact equality. On non-x86_64 (or hosts without AVX2) this degrades
    /// to scalar self-consistency.
    fn check_reduction(what: &str, scalar_v: f64, simd_v: Option<f64>) {
        if let Some(v) = simd_v {
            assert_bits_eq(scalar_v, v, what);
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn have_avx2() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    #[test]
    fn active_reports_a_known_mode() {
        assert!(matches!(active(), "scalar" | "avx2"));
    }

    #[test]
    fn scalar_and_avx2_are_bit_identical_on_adversarial_inputs() {
        let mut g = Gen(0x5eed_1234_abcd_0001);
        // Every length 0..64 plus some longer ones: covers all tail shapes
        // and the lane boundary; unaligned views via the offset slice.
        let lens: Vec<usize> = (0..64).chain([100, 255, 1000]).collect();
        for &len in &lens {
            let a = g.vec(len + 1);
            let b = g.vec(len + 1);
            for off in 0..=1usize.min(len) {
                let (ax, bx) = (&a[off..len], &b[off..len]);
                let shift = g.finite();
                // `mode()` is process-global, so exercise the two
                // implementations directly rather than through env.
                #[cfg(target_arch = "x86_64")]
                let simd = have_avx2();

                let s_dot = scalar::dot(ax, bx);
                let s_sq = scalar::squared_distance(ax, bx);
                let s_sum = scalar::sum(ax);
                let s_cs = scalar::centered_sums(ax, shift);
                let s_css = scalar::centered_sum_sq(ax, shift);
                let s_cd = scalar::centered_dot(ax, bx, shift);
                let s_pd = scalar::project_dot(ax, bx, &vec![shift; ax.len()]);
                #[cfg(target_arch = "x86_64")]
                if simd {
                    // SAFETY: guarded by have_avx2().
                    unsafe {
                        check_reduction("dot", s_dot, Some(avx2::dot(ax, bx)));
                        check_reduction("sqdist", s_sq, Some(avx2::squared_distance(ax, bx)));
                        check_reduction("sum", s_sum, Some(avx2::sum(ax)));
                        let (vs, vq) = avx2::centered_sums(ax, shift);
                        assert_bits_eq(s_cs.0, vs, "centered_sums.s");
                        assert_bits_eq(s_cs.1, vq, "centered_sums.q");
                        check_reduction(
                            "centered_sum_sq",
                            s_css,
                            Some(avx2::centered_sum_sq(ax, shift)),
                        );
                        check_reduction(
                            "centered_dot",
                            s_cd,
                            Some(avx2::centered_dot(ax, bx, shift)),
                        );
                        check_reduction(
                            "project_dot",
                            s_pd,
                            Some(avx2::project_dot(ax, bx, &vec![shift; ax.len()])),
                        );
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    check_reduction("dot", s_dot, None);
                    let _ = (s_sq, s_sum, s_cs, s_css, s_cd, s_pd);
                }
            }
        }
    }

    #[test]
    fn elementwise_kernels_are_bit_identical() {
        let mut g = Gen(0x5eed_5678_0000_0002);
        for len in (0..40).chain([129usize]) {
            let x = g.vec(len);
            let alpha = g.finite();
            let mean = g.finite();
            let divisor = g.finite().abs() + 0.5;
            let means = g.vec(len);
            let y0 = g.vec(len);

            let mut ys = y0.clone();
            scalar::axpy(alpha, &x, &mut ys);
            let mut ycs = y0.clone();
            scalar::axpy_centered(alpha, &x, &means, &mut ycs);
            let mut zs = vec![0.0; len];
            scalar::znorm_apply(&x, mean, divisor, &mut zs);

            #[cfg(target_arch = "x86_64")]
            if have_avx2() {
                // SAFETY: guarded by have_avx2().
                unsafe {
                    let mut yv = y0.clone();
                    avx2::axpy(alpha, &x, &mut yv);
                    let mut ycv = y0.clone();
                    avx2::axpy_centered(alpha, &x, &means, &mut ycv);
                    let mut zv = vec![0.0; len];
                    avx2::znorm_apply(&x, mean, divisor, &mut zv);
                    for i in 0..len {
                        assert_bits_eq(ys[i], yv[i], "axpy");
                        assert_bits_eq(ycs[i], ycv[i], "axpy_centered");
                        assert_bits_eq(zs[i], zv[i], "znorm_apply");
                    }
                }
            }
        }
    }

    #[test]
    fn sqdist_scan_matches_per_point_distance_for_all_dims() {
        let mut g = Gen(0x5eed_9abc_0000_0003);
        for dim in 1..=8usize {
            for npoints in [0usize, 1, 2, 3, 4, 5, 7, 8, 33] {
                let query = g.vec(dim);
                let points = g.vec(dim * npoints);
                let mut out_s = vec![0.0; npoints];
                scalar::sqdist_scan(&query, &points, &mut out_s);
                for (i, chunk) in points.chunks_exact(dim).enumerate() {
                    assert_bits_eq(
                        out_s[i],
                        scalar::squared_distance(&query, chunk),
                        "scalar scan vs per-point",
                    );
                }
                #[cfg(target_arch = "x86_64")]
                if have_avx2() {
                    // SAFETY: guarded by have_avx2().
                    unsafe {
                        let mut out_v = vec![0.0; npoints];
                        avx2::sqdist_scan(&query, &points, &mut out_v);
                        for i in 0..npoints {
                            assert_bits_eq(out_s[i], out_v[i], "sqdist_scan dim2/generic");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn widen_is_exact_in_both_paths() {
        let mut g = Gen(0x5eed_def0_0000_0004);
        for len in [0usize, 1, 3, 4, 5, 17, 100] {
            let src: Vec<f32> = (0..len).map(|_| g.next() as f32).collect();
            let mut out_s = vec![0.0; len];
            scalar::widen(&src, &mut out_s);
            for i in 0..len {
                assert_bits_eq(out_s[i], f64::from(src[i]), "widen scalar");
            }
            #[cfg(target_arch = "x86_64")]
            if have_avx2() {
                // SAFETY: guarded by have_avx2().
                unsafe {
                    let mut out_v = vec![0.0; len];
                    avx2::widen(&src, &mut out_v);
                    for i in 0..len {
                        assert_bits_eq(out_s[i], out_v[i], "widen");
                    }
                }
            }
        }
    }

    #[test]
    fn public_entry_points_agree_with_scalar_reference() {
        // Whatever mode the process selected, the dispatched result must be
        // bit-identical to the scalar reference — this is the cross-dispatch
        // parity contract exercised end-to-end (CI also runs the whole suite
        // under LARP_KERNELS=scalar).
        let mut g = Gen(0x5eed_1111_0000_0005);
        for len in [0usize, 1, 2, 3, 4, 7, 8, 40, 100] {
            let a = g.vec(len);
            let b = g.vec(len);
            let m = g.finite();
            assert_bits_eq(dot(&a, &b), scalar::dot(&a, &b), "pub dot");
            assert_bits_eq(
                squared_distance(&a, &b),
                scalar::squared_distance(&a, &b),
                "pub sqdist",
            );
            assert_bits_eq(sum(&a), scalar::sum(&a), "pub sum");
            assert_bits_eq(centered_sum_sq(&a, m), scalar::centered_sum_sq(&a, m), "pub css");
            assert_bits_eq(centered_dot(&a, &b, m), scalar::centered_dot(&a, &b, m), "pub cd");
        }
    }

    #[test]
    fn project_sqdist_matches_unfused_composition() {
        let mut g = Gen(0x5eed_2222_0000_0006);
        for (d, ncomp) in [(8usize, 2usize), (5, 1), (12, 3), (2, 2)] {
            let x = g.vec(d);
            let means = g.vec(d);
            let comps = g.vec(d * ncomp);
            let point = g.vec(ncomp);
            let fused = project_sqdist(&x, &means, &comps, &point);
            let mut acc = 0.0;
            for (row, &pc) in comps.chunks_exact(d).zip(&point) {
                let diff = project_dot(row, &x, &means) - pc;
                acc += diff * diff;
            }
            assert_bits_eq(fused, acc, "project_sqdist");
        }
    }

    #[test]
    fn vec_wrappers_resize_and_fill() {
        let mut out = Vec::new();
        znorm_apply_into(&[1.0, 2.0, 3.0], 2.0, 2.0, &mut out);
        assert_eq!(out, vec![-0.5, 0.0, 0.5]);
        let mut wide = vec![9.0; 10];
        widen_into(&[1.5f32, -2.0], &mut wide);
        assert_eq!(wide, vec![1.5, -2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "sqdist_scan")]
    fn sqdist_scan_shape_checked() {
        let mut out = [0.0; 2];
        sqdist_scan(&[0.0, 0.0], &[1.0, 2.0, 3.0], &mut out);
    }
}
