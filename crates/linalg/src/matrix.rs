//! A row-major dense `f64` matrix.

use crate::{LinalgError, Result};

/// Dense, row-major matrix of `f64`.
///
/// Element `(i, j)` lives at `data[i * cols + j]`. Indexing via `m[(i, j)]` is
/// bounds-checked by the underlying slice access.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero — zero-sized matrices are always a bug
    /// in this workspace.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "Matrix::zeros: dimensions must be positive");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows * cols`
    /// or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidArgument(format!(
                "matrix dimensions must be positive, got {rows}x{cols}"
            )));
        }
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let n = rows.len();
        if n == 0 {
            return Err(LinalgError::InvalidArgument("from_rows: no rows".into()));
        }
        let m = rows[0].len();
        if m == 0 {
            return Err(LinalgError::InvalidArgument("from_rows: empty rows".into()));
        }
        let mut data = Vec::with_capacity(n * m);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != m {
                return Err(LinalgError::InvalidArgument(format!(
                    "from_rows: row {i} has length {} but row 0 has {m}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Self::from_vec(n, m, data)
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrows the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] unless `self.cols == rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matmul: {}x{} * {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: streams over rhs rows, friendly to the row-major layout.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] unless `v.len() == self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec: {}x{} * vec[{}]",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        Ok(self.iter_rows().map(|row| crate::kernels::dot(row, v)).collect())
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(&self, rhs: &Matrix, op: &str, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "{op}: {}x{} vs {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Multiplies every element by `s`, in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Frobenius norm: `sqrt(sum of squared elements)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute difference against `rhs`, or `None` on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Option<f64> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return None;
        }
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(None, |acc, d| Some(acc.map_or(d, |m: f64| m.max(d))))
    }

    /// Whether the matrix is symmetric to within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Per-column means of the matrix (length `cols`).
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Sample covariance matrix of the rows (observations), `cols × cols`.
    ///
    /// Uses the unbiased `1/(n-1)` normalisation; for a single observation the
    /// covariance is defined as the zero matrix.
    pub fn covariance(&self) -> Matrix {
        let n = self.rows;
        let d = self.cols;
        let means = self.column_means();
        let mut cov = Matrix::zeros(d, d);
        if n < 2 {
            return cov;
        }
        // Accumulates the upper triangle with plain elementwise updates.
        // Each cov element receives exactly one `+= cᵢ · cⱼ` per row, so the
        // result is independent of traversal order and bit-identical to the
        // dispatched `kernels::axpy_centered` form — a direct loop beats the
        // per-call dispatch overhead on the tiny `d ≤ 16` windows the PCA
        // retrain path fits thousands of times a minute.
        for row in self.iter_rows() {
            for i in 0..d {
                let ci = row[i] - means[i];
                let out = &mut cov.data[i * d + i..(i + 1) * d];
                for ((o, &rj), &mj) in out.iter_mut().zip(&row[i..]).zip(&means[i..]) {
                    *o += ci * (rj - mj);
                }
            }
        }
        let norm = 1.0 / (n as f64 - 1.0);
        for i in 0..d {
            for j in i..d {
                let v = cov[(i, j)] * norm;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        cov
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for row in self.iter_rows() {
            for (j, x) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{x:>12.6}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidArgument(_)));
    }

    #[test]
    fn identity_matvec_is_noop() {
        let id = Matrix::identity(3);
        let v = vec![1.0, -2.0, 3.5];
        assert_eq!(id.matvec(&v).unwrap(), v);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch(_))));
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 0.0]]).unwrap();
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-15);
    }

    #[test]
    fn scale_and_frobenius() {
        let mut m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!(approx(m.frobenius_norm(), 5.0));
        m.scale(2.0);
        assert!(approx(m.frobenius_norm(), 10.0));
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]).unwrap();
        assert!(!a.is_symmetric(1e-9));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn column_means_simple() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0]]).unwrap();
        assert_eq!(m.column_means(), vec![2.0, 15.0]);
    }

    #[test]
    fn covariance_of_known_data() {
        // Perfectly correlated columns: cov = var on the diagonal and off it.
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let c = m.covariance();
        assert!(approx(c[(0, 0)], 1.0));
        assert!(approx(c[(1, 1)], 4.0));
        assert!(approx(c[(0, 1)], 2.0));
        assert!(approx(c[(1, 0)], 2.0));
    }

    #[test]
    fn covariance_single_row_is_zero() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(m.covariance().frobenius_norm(), 0.0);
    }

    #[test]
    fn covariance_is_symmetric() {
        let m = Matrix::from_rows(&[
            vec![1.0, 5.0, -2.0],
            vec![0.0, 2.0, 1.0],
            vec![4.0, -1.0, 3.0],
            vec![2.0, 2.0, 2.0],
        ])
        .unwrap();
        assert!(m.covariance().is_symmetric(1e-12));
    }

    #[test]
    fn row_col_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn display_renders_rows() {
        let m = Matrix::identity(2);
        let s = format!("{m}");
        assert_eq!(s.lines().count(), 2);
    }
}
