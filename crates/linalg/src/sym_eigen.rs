//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! Jacobi is the right tool here: the PCA covariance matrices in this workspace
//! are at most 16 × 16 (the prediction window size), and Jacobi is simple,
//! unconditionally stable, and computes eigen*vectors* to high relative accuracy —
//! which matters because the k-NN feature space is built from them.

use crate::{LinalgError, Matrix, Result};

/// Result of a symmetric eigendecomposition: `A = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted in **descending** order (PCA convention) and
/// `eigenvectors` stores the corresponding unit eigenvectors as **columns**.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, ordered to match `eigenvalues`.
    pub eigenvectors: Matrix,
}

impl SymEigen {
    /// Decomposes a symmetric matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `a` is not square or not symmetric
    ///   (tolerance `1e-8 * max|a|`);
    /// * [`LinalgError::NoConvergence`] if the off-diagonal norm fails to reach
    ///   machine-level tolerance within 100 sweeps (does not happen for any
    ///   well-formed symmetric input of the sizes used here).
    pub fn decompose(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::InvalidArgument(format!(
                "eigendecomposition requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if a.as_slice().iter().any(|x| !x.is_finite()) {
            // NaN also defeats the convergence test below (`NaN > tol` is
            // false), which would report a garbage decomposition as converged.
            return Err(LinalgError::InvalidArgument(
                "eigendecomposition requires finite matrix entries".into(),
            ));
        }
        let scale = a.as_slice().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        if !a.is_symmetric(1e-8 * scale.max(1.0)) {
            return Err(LinalgError::InvalidArgument(
                "eigendecomposition requires a symmetric matrix".into(),
            ));
        }

        let mut m = a.clone();
        let mut v = Matrix::identity(n);
        let tol = f64::EPSILON * scale.max(f64::MIN_POSITIVE) * n as f64;

        const MAX_SWEEPS: usize = 100;
        let mut converged = false;
        for _ in 0..MAX_SWEEPS {
            let off = off_diagonal_norm(&m);
            if off <= tol {
                converged = true;
                break;
            }
            // One cyclic sweep over all super-diagonal entries.
            for p in 0..n - 1 {
                for q in p + 1..n {
                    jacobi_rotate(&mut m, &mut v, p, q);
                }
            }
        }
        if !converged && off_diagonal_norm(&m) > tol {
            return Err(LinalgError::NoConvergence(format!(
                "Jacobi failed to converge in {MAX_SWEEPS} sweeps (off-norm {:.3e})",
                off_diagonal_norm(&m)
            )));
        }

        // Extract and sort eigenpairs by descending eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        let eig: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&i, &j| eig[j].total_cmp(&eig[i]));

        let eigenvalues: Vec<f64> = order.iter().map(|&i| eig[i]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for r in 0..n {
                eigenvectors[(r, new_col)] = v[(r, old_col)];
            }
        }
        Ok(Self { eigenvalues, eigenvectors })
    }

    /// The `k`-th unit eigenvector (column `k`), copied out.
    pub fn eigenvector(&self, k: usize) -> Vec<f64> {
        self.eigenvectors.col(k)
    }
}

/// Frobenius norm of the strictly-upper off-diagonal part.
fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            s += m[(i, j)] * m[(i, j)];
        }
    }
    s.sqrt()
}

/// Applies one Jacobi rotation zeroing `m[(p, q)]`, accumulating into `v`.
fn jacobi_rotate(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    if apq == 0.0 {
        return;
    }
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    // Stable computation of tan(theta) (Golub & Van Loan §8.4).
    let theta = (aqq - app) / (2.0 * apq);
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    let n = m.rows();
    // Update rows/columns p and q of the symmetric matrix.
    for k in 0..n {
        if k != p && k != q {
            let akp = m[(k, p)];
            let akq = m[(k, q)];
            m[(k, p)] = c * akp - s * akq;
            m[(p, k)] = m[(k, p)];
            m[(k, q)] = s * akp + c * akq;
            m[(q, k)] = m[(k, q)];
        }
    }
    m[(p, p)] = app - t * apq;
    m[(q, q)] = aqq + t * apq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;

    // Accumulate the rotation into the eigenvector matrix.
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, e: &SymEigen) -> f64 {
        // max_k || A v_k - λ_k v_k ||
        let n = a.rows();
        let mut worst = 0.0f64;
        for k in 0..n {
            let v = e.eigenvector(k);
            let av = a.matvec(&v).unwrap();
            let r: f64 = av
                .iter()
                .zip(&v)
                .map(|(x, y)| (x - e.eigenvalues[k] * y).powi(2))
                .sum::<f64>()
                .sqrt();
            worst = worst.max(r);
        }
        worst
    }

    #[test]
    fn diagonal_matrix() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let e = SymEigen::decompose(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = SymEigen::decompose(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Leading eigenvector is (1, 1)/sqrt(2) up to sign.
        let v = e.eigenvector(0);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v[0] - v[1]).abs() < 1e-12);
    }

    #[test]
    fn eigen_identity_av_equals_lambda_v() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5, 0.0],
            vec![1.0, 3.0, -1.0, 0.2],
            vec![0.5, -1.0, 2.0, 0.7],
            vec![0.0, 0.2, 0.7, 1.0],
        ])
        .unwrap();
        let e = SymEigen::decompose(&a).unwrap();
        assert!(residual(&a, &e) < 1e-10, "residual {}", residual(&a, &e));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a =
            Matrix::from_rows(&[vec![2.0, -1.0, 0.0], vec![-1.0, 2.0, -1.0], vec![0.0, -1.0, 2.0]])
                .unwrap();
        let e = SymEigen::decompose(&a).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[vec![5.0, 2.0, 1.0], vec![2.0, 4.0, 0.0], vec![1.0, 0.0, 3.0]])
            .unwrap();
        let e = SymEigen::decompose(&a).unwrap();
        let trace = a[(0, 0)] + a[(1, 1)] + a[(2, 2)];
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn rejects_nonsquare_and_asymmetric() {
        assert!(SymEigen::decompose(&Matrix::zeros(2, 3)).is_err());
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(SymEigen::decompose(&a).is_err());
    }

    #[test]
    fn handles_negative_eigenvalues() {
        // [[0, 1], [1, 0]] has eigenvalues +1 and -1.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let e = SymEigen::decompose(&a).unwrap();
        assert!((e.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(4, 4);
        let e = SymEigen::decompose(&a).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn larger_random_symmetric_matrix() {
        // Deterministic pseudo-random symmetric 12x12 built from a simple hash.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let h = ((i * 31 + j * 17 + 7) % 23) as f64 / 23.0 - 0.5;
                a[(i, j)] = h;
                a[(j, i)] = h;
            }
        }
        let e = SymEigen::decompose(&a).unwrap();
        assert!(residual(&a, &e) < 1e-9);
        // Sorted descending.
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
