//! Small dense linear algebra for the LARPredictor workspace.
//!
//! The paper's pipeline needs exactly three numerical kernels, all of which are
//! implemented here from scratch (no BLAS/LAPACK):
//!
//! * **symmetric eigendecomposition** ([`sym_eigen::SymEigen`], cyclic Jacobi) —
//!   drives PCA in the `learn` crate;
//! * **Toeplitz solves** ([`toeplitz::levinson_durbin`]) — the Yule–Walker
//!   equations of AR model fitting in the `predictors` crate;
//! * **general small solves** ([`gauss::solve`] with partial pivoting and
//!   [`cholesky::Cholesky`]) — polynomial least-squares fitting and verification.
//!
//! Everything is built on a single row-major [`Matrix`] type plus free functions
//! over `&[f64]` slices ([`vecops`]). The slice primitives on the serving and
//! training hot paths (dot, squared distance, sums/moments, z-normalisation,
//! PCA projection, batched distance scans) live in [`kernels`], which selects
//! between a portable scalar implementation and a runtime-detected x86_64
//! AVX2 one — bit-identical by construction, see the module docs. The matrix
//! factorisations stay scalar: they operate on tiny `m × m` systems
//! (`m ≤ 16`) far from the critical path.
#![warn(missing_docs)]

pub mod cholesky;
pub mod gauss;
pub mod kernels;
pub mod matrix;
pub mod sym_eigen;
pub mod toeplitz;
pub mod vecops;

pub use cholesky::Cholesky;
pub use matrix::Matrix;
pub use sym_eigen::SymEigen;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible; the message names the operation and shapes.
    ShapeMismatch(String),
    /// The matrix is singular (or numerically so) for the requested operation.
    Singular(String),
    /// The matrix is not positive definite (Cholesky).
    NotPositiveDefinite(String),
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence(String),
    /// Invalid argument (empty input, zero dimension, ...).
    InvalidArgument(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            LinalgError::Singular(m) => write!(f, "singular matrix: {m}"),
            LinalgError::NotPositiveDefinite(m) => write!(f, "not positive definite: {m}"),
            LinalgError::NoConvergence(m) => write!(f, "no convergence: {m}"),
            LinalgError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
