//! Free functions over `&[f64]` slices: the vector kernel of the workspace.
//!
//! The reductions (`dot`, `squared_distance`) and `axpy` forward to the
//! runtime-dispatched implementations in [`crate::kernels`], so every caller
//! in the workspace picks up the AVX2 path automatically.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::dot(a, b)
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length points.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::squared_distance(a, b)
}

/// Euclidean distance between two equal-length points.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// `y += alpha * x`, the BLAS `axpy` kernel.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    crate::kernels::axpy(alpha, x, y)
}

/// Scales a slice in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalises `x` to unit L2 norm in place; leaves an all-zero vector unchanged.
pub fn normalize(x: &mut [f64]) {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms_and_distances() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(-3.0, &mut v);
        assert_eq!(v, vec![-3.0, 6.0]);
    }
}
