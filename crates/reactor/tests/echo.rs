//! End-to-end reactor tests over real sockets: echo service, connection
//! rejection, idle reaping, write backpressure, and graceful drain.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use reactor::{
    AcceptDecision, CloseReason, ConnCtx, Handler, Reactor, ReactorBuilder, ReactorConfig, Service,
    Verdict,
};

/// Echoes every byte back; a line equal to "quit\n" requests reactor
/// shutdown after the echo.
struct Echo {
    closes: Arc<AtomicUsize>,
}

struct EchoConn {
    closes: Arc<AtomicUsize>,
}

impl Handler for EchoConn {
    fn on_readable(&mut self, conn: &mut ConnCtx<'_>) -> Verdict {
        let input = conn.input().to_vec();
        conn.consume(input.len());
        let quit = input.windows(5).any(|w| w == b"quit\n");
        conn.write(input);
        if quit {
            Verdict::Shutdown
        } else {
            Verdict::Continue
        }
    }
    fn on_close(&mut self, _reason: CloseReason) {
        self.closes.fetch_add(1, Ordering::SeqCst);
    }
}

impl Service for Echo {
    fn on_accept(&self, _conn_id: u64, _peer: SocketAddr) -> AcceptDecision {
        AcceptDecision::Accept(Box::new(EchoConn { closes: self.closes.clone() }))
    }
}

fn start_echo(loops: usize) -> (Reactor, SocketAddr, Arc<AtomicUsize>) {
    let closes = Arc::new(AtomicUsize::new(0));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let reactor = ReactorBuilder::new(ReactorConfig { loops, ..Default::default() })
        .listen(listener, Arc::new(Echo { closes: closes.clone() }))
        .expect("listen")
        .start()
        .expect("start");
    (reactor, addr, closes)
}

#[test]
fn echo_round_trips_across_many_connections() {
    let (_reactor, addr, _) = start_echo(2);
    let mut clients: Vec<TcpStream> =
        (0..16).map(|_| TcpStream::connect(addr).expect("connect")).collect();
    for (i, c) in clients.iter_mut().enumerate() {
        c.write_all(format!("hello-{i}").as_bytes()).expect("send");
    }
    for (i, c) in clients.iter_mut().enumerate() {
        let expect = format!("hello-{i}");
        let mut buf = vec![0u8; expect.len()];
        c.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        c.read_exact(&mut buf).expect("echo");
        assert_eq!(buf, expect.as_bytes());
    }
}

#[test]
fn echo_handles_pipelined_and_fragmented_writes() {
    let (_reactor, addr, _) = start_echo(1);
    let mut c = TcpStream::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 241) as u8).collect();
    // Dribble it out in odd-sized chunks to force partial reads server-side.
    for chunk in payload.chunks(777) {
        c.write_all(chunk).expect("send");
    }
    let mut back = vec![0u8; payload.len()];
    c.read_exact(&mut back).expect("echo all");
    assert_eq!(back, payload);
}

/// A service that refuses every connection with parting bytes.
struct Bouncer;

impl Service for Bouncer {
    fn on_accept(&self, _conn_id: u64, _peer: SocketAddr) -> AcceptDecision {
        AcceptDecision::Reject(b"full up\n".to_vec())
    }
}

#[test]
fn rejected_connections_get_parting_bytes_then_eof() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let _reactor = ReactorBuilder::new(ReactorConfig { loops: 1, ..Default::default() })
        .listen(listener, Arc::new(Bouncer))
        .expect("listen")
        .start()
        .expect("start");
    let mut c = TcpStream::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    c.write_all(b"let me in").expect("send");
    let mut all = Vec::new();
    c.read_to_end(&mut all).expect("refusal then eof");
    assert_eq!(all, b"full up\n");
}

/// Echo with a short idle deadline for reap tests.
struct ImpatientEcho {
    closes: Arc<AtomicUsize>,
    idle: Duration,
}

impl Service for ImpatientEcho {
    fn on_accept(&self, _conn_id: u64, _peer: SocketAddr) -> AcceptDecision {
        AcceptDecision::Accept(Box::new(EchoConn { closes: self.closes.clone() }))
    }
    fn idle_timeout(&self) -> Option<Duration> {
        Some(self.idle)
    }
}

#[test]
fn idle_connections_are_reaped_and_active_ones_kept() {
    let closes = Arc::new(AtomicUsize::new(0));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let _reactor = ReactorBuilder::new(ReactorConfig { loops: 1, ..Default::default() })
        .listen(
            listener,
            Arc::new(ImpatientEcho { closes: closes.clone(), idle: Duration::from_millis(150) }),
        )
        .expect("listen")
        .start()
        .expect("start");

    let mut idle = TcpStream::connect(addr).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut active = TcpStream::connect(addr).expect("connect active");
    active.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");

    // Keep the active connection chattering past several idle windows.
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(60));
        active.write_all(b"ping").expect("send");
        let mut buf = [0u8; 4];
        active.read_exact(&mut buf).expect("echo");
    }
    // The idle one must be gone by now: read sees EOF.
    let mut buf = [0u8; 1];
    let n = idle.read(&mut buf).expect("reaped idle conn yields EOF");
    assert_eq!(n, 0, "idle connection must be closed by the reaper");
    assert_eq!(closes.load(Ordering::SeqCst), 1, "only the idle connection closed");
}

#[test]
fn large_responses_survive_write_backpressure() {
    let (_reactor, addr, _) = start_echo(1);
    let mut c = TcpStream::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    // 8 MB of echo: far beyond socket buffers, so the server must park the
    // remainder and finish under EPOLLOUT.
    let payload: Vec<u8> = (0..8 * 1024 * 1024u32).map(|i| (i % 193) as u8).collect();
    let mut writer = c.try_clone().expect("clone");
    let to_send = payload.clone();
    let tx = std::thread::spawn(move || {
        writer.write_all(&to_send).expect("send");
        writer.shutdown(Shutdown::Write).expect("half-close");
    });
    let mut back = Vec::with_capacity(payload.len());
    c.read_to_end(&mut back).expect("echo all");
    tx.join().expect("writer");
    assert_eq!(back.len(), payload.len());
    assert_eq!(back, payload);
}

#[test]
fn shutdown_verdict_drains_every_connection() {
    let (mut reactor, addr, closes) = start_echo(2);
    let mut bystander = TcpStream::connect(addr).expect("connect");
    bystander.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    bystander.write_all(b"hi").expect("send");
    let mut buf = [0u8; 2];
    bystander.read_exact(&mut buf).expect("echo");

    let mut quitter = TcpStream::connect(addr).expect("connect");
    quitter.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    quitter.write_all(b"quit\n").expect("send");
    let mut ack = [0u8; 5];
    quitter.read_exact(&mut ack).expect("quit is echoed before the drain closes us");
    assert_eq!(&ack, b"quit\n");

    reactor.shutdown();
    assert!(reactor.is_shutting_down());
    assert_eq!(closes.load(Ordering::SeqCst), 2, "both connections saw on_close");

    // The bystander observes EOF once drained.
    let n = bystander.read(&mut buf).expect("drained conn yields EOF");
    assert_eq!(n, 0);
    // New connections are refused after drain.
    assert!(TcpStream::connect(addr).is_err(), "listener must be gone after shutdown");
}

#[test]
fn shutdown_is_idempotent_and_drop_safe() {
    let (mut reactor, addr, _) = start_echo(1);
    let _probe = TcpStream::connect(addr).expect("connect");
    reactor.shutdown();
    reactor.shutdown();
    drop(reactor); // Drop runs shutdown again; must not panic or hang.
}
