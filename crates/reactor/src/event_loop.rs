//! One event-loop thread: the epoll wait, per-connection state machines,
//! accept sharding, idle timers, and the drain protocol.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::buf::{FlushStatus, ReadBuf, WriteQueue};
use crate::poll::{Interest, Poller, Ready};
use crate::timer::TimerWheel;
use crate::wake::Waker;
use crate::{AcceptDecision, CloseReason, Handler, Observer, Service, Verdict};

/// Token of the loop's eventfd waker.
const WAKER_TOKEN: u64 = u64::MAX;
/// Listener tokens live at `LISTENER_BASE + index`; connection tokens
/// (generation << 32 | slot) stay strictly below.
const LISTENER_BASE: u64 = 1 << 62;
/// Connection generations wrap inside 30 bits so tokens never collide with
/// the listener range.
const GEN_MASK: u32 = (1 << 30) - 1;
/// Most connections accepted per listener readiness (the listener is
/// level-triggered, so the remainder re-arms immediately).
const ACCEPT_BURST: usize = 64;
/// Bytes asked of the socket per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// A connection handed across loops by the accepting thread.
pub(crate) enum Inject {
    Conn { stream: TcpStream, peer: SocketAddr, listener: usize },
}

/// The cross-thread face of one loop: an injection queue plus its waker.
pub(crate) struct LoopShared {
    pub(crate) injected: Mutex<Vec<Inject>>,
    pub(crate) waker: Waker,
}

/// One listening socket and the protocol served on it.
pub(crate) struct ListenerEntry {
    pub(crate) listener: Arc<TcpListener>,
    pub(crate) service: Arc<dyn Service>,
}

/// Reactor-wide shared control state.
pub(crate) struct Ctl {
    pub(crate) shutdown: AtomicBool,
    pub(crate) next_conn_id: AtomicU64,
    pub(crate) next_loop: AtomicUsize,
    pub(crate) loops: Vec<Arc<LoopShared>>,
}

impl Ctl {
    /// Flips the drain flag once and wakes every loop.
    pub(crate) fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            for l in &self.loops {
                l.waker.wake();
            }
        }
    }
}

/// The handler's window onto one connection: buffered input to consume,
/// and an output queue to fill. Handlers never touch the socket.
pub struct ConnCtx<'a> {
    inbuf: &'a mut ReadBuf,
    out: &'a mut WriteQueue,
    conn_id: u64,
    peer: SocketAddr,
}

impl ConnCtx<'_> {
    /// All received-but-unconsumed bytes. A streaming decoder takes what
    /// parses and leaves the partial tail for the next readiness.
    pub fn input(&self) -> &[u8] {
        self.inbuf.input()
    }

    /// Marks `n` input bytes consumed.
    pub fn consume(&mut self, n: usize) {
        self.inbuf.consume(n);
    }

    /// Queues an encoded response; the loop flushes with vectored writes
    /// and handles write backpressure.
    pub fn write(&mut self, bytes: Vec<u8>) {
        self.out.push(bytes);
    }

    /// Bytes queued but not yet accepted by the socket.
    pub fn queued_bytes(&self) -> usize {
        self.out.queued_bytes()
    }

    /// The reactor-wide connection id.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// The peer address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    handler: Box<dyn Handler>,
    inbuf: ReadBuf,
    out: WriteQueue,
    token: u64,
    conn_id: u64,
    peer: SocketAddr,
    /// EPOLLOUT currently armed (write backpressure engaged).
    want_write: bool,
    /// Set once the connection is condemned: no more handler calls, flush
    /// the queue, then close with this reason.
    closing: Option<CloseReason>,
    /// The peer half-closed; close once the output queue drains.
    peer_eof: bool,
    /// Loop-clock ms of the last request bytes read (or fully drained
    /// flush). Slow readers that never send do not count as active.
    last_activity_ms: u64,
    /// Idle deadline for this connection's listener, if reaping is on.
    idle_ms: Option<u64>,
}

impl Conn {
    fn drive_readable(&mut self) -> Verdict {
        let mut ctx = ConnCtx {
            inbuf: &mut self.inbuf,
            out: &mut self.out,
            conn_id: self.conn_id,
            peer: self.peer,
        };
        self.handler.on_readable(&mut ctx)
    }

    fn drive_idle(&mut self) -> Verdict {
        let mut ctx = ConnCtx {
            inbuf: &mut self.inbuf,
            out: &mut self.out,
            conn_id: self.conn_id,
            peer: self.peer,
        };
        self.handler.on_idle(&mut ctx)
    }
}

/// A handler for refused connections: discard anything the peer sends
/// while the parting error frame flushes.
struct RejectSink;

impl Handler for RejectSink {
    fn on_readable(&mut self, conn: &mut ConnCtx<'_>) -> Verdict {
        let n = conn.input().len();
        conn.consume(n);
        Verdict::Continue
    }
    fn on_close(&mut self, _reason: CloseReason) {}
}

pub(crate) struct LoopConfig {
    pub(crate) events_per_wait: usize,
    pub(crate) read_budget: usize,
    pub(crate) drain_grace_ms: u64,
}

/// One event-loop thread's whole world.
pub(crate) struct EventLoop {
    idx: usize,
    nloops: usize,
    cfg: LoopConfig,
    poller: Poller,
    wheel: TimerWheel,
    conns: Vec<Option<Conn>>,
    free: Vec<u32>,
    live: usize,
    generation: u32,
    /// Connections that hit the per-wake read budget: re-driven next
    /// iteration so one firehose peer cannot starve the rest (the edge
    /// trigger will not fire again for bytes already buffered).
    pending: Vec<u64>,
    shared: Arc<LoopShared>,
    ctl: Arc<Ctl>,
    listeners: Arc<Vec<ListenerEntry>>,
    observer: Arc<dyn Observer>,
    epoch: Instant,
    draining: bool,
    drain_started_ms: u64,
}

impl EventLoop {
    pub(crate) fn new(
        idx: usize,
        nloops: usize,
        cfg: LoopConfig,
        shared: Arc<LoopShared>,
        ctl: Arc<Ctl>,
        listeners: Arc<Vec<ListenerEntry>>,
        observer: Arc<dyn Observer>,
    ) -> io::Result<EventLoop> {
        Ok(EventLoop {
            idx,
            nloops,
            poller: Poller::new(cfg.events_per_wait)?,
            cfg,
            wheel: TimerWheel::new(),
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            generation: 0,
            pending: Vec::new(),
            shared,
            ctl,
            listeners,
            observer,
            epoch: Instant::now(),
            draining: false,
            drain_started_ms: 0,
        })
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    pub(crate) fn run(mut self) {
        if self.poller.add(self.shared.waker.as_raw_fd(), Interest::READ, WAKER_TOKEN).is_err() {
            return;
        }
        let mut i = 0;
        while i < self.listeners.len() {
            let fd = self.listeners[i].listener.as_raw_fd();
            let _ = self.poller.add(fd, Interest::ACCEPT, LISTENER_BASE + i as u64);
            i += 1;
        }

        let mut ready: Vec<Ready> = Vec::with_capacity(self.cfg.events_per_wait);
        let mut expired: Vec<u64> = Vec::new();
        loop {
            let now = self.now_ms();
            let timeout = if !self.pending.is_empty() {
                Some(0)
            } else if self.draining {
                Some(20)
            } else {
                self.wheel.next_timeout_ms(now).map(|t| t.min(60_000) as u32)
            };

            ready.clear();
            let wait_start = Instant::now();
            let n = self.poller.wait(timeout, |r| ready.push(r)).unwrap_or_default();
            self.observer.on_poll(self.idx, n, wait_start.elapsed().as_micros() as u64);

            let mut i = 0;
            while i < ready.len() {
                let r = ready[i];
                i += 1;
                if r.token == WAKER_TOKEN {
                    self.shared.waker.drain();
                } else if r.token >= LISTENER_BASE {
                    self.accept_burst((r.token - LISTENER_BASE) as usize);
                } else {
                    self.conn_ready(r);
                }
            }
            self.process_injected();

            // Budget-capped connections: keep draining their buffered input.
            let work = std::mem::take(&mut self.pending);
            for token in work {
                let slot = (token & 0xFFFF_FFFF) as usize;
                self.read_conn(slot, token);
            }

            let now = self.now_ms();
            expired.clear();
            self.wheel.advance(now, &mut expired);
            let mut i = 0;
            while i < expired.len() {
                let token = expired[i];
                i += 1;
                self.conn_timer(token, now);
            }

            if self.ctl.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.enter_drain(now);
            }
            if self.draining {
                if self.live == 0 {
                    break;
                }
                if now.saturating_sub(self.drain_started_ms) > self.cfg.drain_grace_ms {
                    self.force_close_all();
                    break;
                }
            }
        }
    }

    /// Accepts a burst off a level-triggered shared listener and places
    /// each connection round-robin across the loops.
    fn accept_burst(&mut self, li: usize) {
        if self.ctl.shutdown.load(Ordering::SeqCst) || li >= self.listeners.len() {
            return;
        }
        for _ in 0..ACCEPT_BURST {
            match self.listeners[li].listener.accept() {
                Ok((stream, peer)) => {
                    self.observer.on_accepted(self.idx);
                    let target = self.ctl.next_loop.fetch_add(1, Ordering::Relaxed) % self.nloops;
                    if target == self.idx {
                        self.install(stream, peer, li);
                    } else {
                        let remote = &self.ctl.loops[target];
                        remote
                            .injected
                            .lock()
                            .expect("injection queue poisoned")
                            .push(Inject::Conn { stream, peer, listener: li });
                        remote.waker.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Aborted handshakes and transient errors: skip this one.
                Err(_) => break,
            }
        }
    }

    /// Adopts connections other loops handed over.
    fn process_injected(&mut self) {
        let handed: Vec<Inject> = {
            let mut q = self.shared.injected.lock().expect("injection queue poisoned");
            if q.is_empty() {
                return;
            }
            q.drain(..).collect()
        };
        let draining = self.ctl.shutdown.load(Ordering::SeqCst);
        for inj in handed {
            let Inject::Conn { stream, peer, listener } = inj;
            if draining {
                drop(stream);
                continue;
            }
            self.install(stream, peer, listener);
        }
    }

    /// Installs an accepted connection on this loop: consults the service,
    /// allocates a slot + generation token, registers edge-triggered read
    /// interest, and arms the idle timer.
    fn install(&mut self, stream: TcpStream, peer: SocketAddr, li: usize) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn_id = self.ctl.next_conn_id.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = &self.listeners[li];
        let idle_ms = entry.service.idle_timeout().map(|d| (d.as_millis() as u64).max(1));
        let (handler, preload, closing): (Box<dyn Handler>, Vec<u8>, Option<CloseReason>) =
            match entry.service.on_accept(conn_id, peer) {
                AcceptDecision::Accept(h) => (h, Vec::new(), None),
                AcceptDecision::Reject(bytes) => {
                    (Box::new(RejectSink), bytes, Some(CloseReason::Requested))
                }
            };

        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            (self.conns.len() - 1) as u32
        });
        self.generation = (self.generation + 1) & GEN_MASK;
        let token = ((self.generation as u64) << 32) | slot as u64;
        let now = self.now_ms();
        let mut out = WriteQueue::new();
        out.push(preload);
        let conn = Conn {
            stream,
            handler,
            inbuf: ReadBuf::new(),
            out,
            token,
            conn_id,
            peer,
            want_write: false,
            closing,
            peer_eof: false,
            last_activity_ms: now,
            idle_ms,
        };
        if self.poller.add(conn.stream.as_raw_fd(), Interest::READ, token).is_err() {
            let mut conn = conn;
            conn.handler.on_close(CloseReason::Error);
            self.free.push(slot);
            return;
        }
        self.conns[slot as usize] = Some(conn);
        self.live += 1;
        self.observer.on_conn_count(self.idx, self.live);
        if let Some(idle) = idle_ms {
            self.wheel.schedule(token, now + idle);
        }
        // A refusal's parting frame flushes immediately; the close follows
        // once the peer's in-flight bytes are drained.
        if self.conn_live(slot as usize, token) {
            self.flush_conn(slot as usize, token);
        }
    }

    fn conn_live(&self, slot: usize, token: u64) -> bool {
        matches!(self.conns.get(slot), Some(Some(c)) if c.token == token)
    }

    /// One readiness record for a connection token.
    fn conn_ready(&mut self, r: Ready) {
        let slot = (r.token & 0xFFFF_FFFF) as usize;
        if !self.conn_live(slot, r.token) {
            return; // stale: the connection closed earlier this iteration
        }
        if r.writable && self.flush_conn(slot, r.token) {
            return;
        }
        if r.readable || r.error {
            self.read_conn(slot, r.token);
        }
    }

    /// Reads until EAGAIN (edge-triggered contract) or the fairness
    /// budget, driving the handler after every chunk.
    fn read_conn(&mut self, slot: usize, token: u64) {
        let now = self.now_ms();
        let mut budget = self.cfg.read_budget;
        let mut begin_shutdown = false;
        loop {
            let conn = match self.conns.get_mut(slot) {
                Some(Some(c)) if c.token == token => c,
                _ => return,
            };
            match conn.inbuf.fill_from(&mut conn.stream, READ_CHUNK) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity_ms = now;
                    budget = budget.saturating_sub(n);
                    if conn.closing.is_none() {
                        match conn.drive_readable() {
                            Verdict::Continue => {}
                            Verdict::Close => conn.closing = Some(CloseReason::Requested),
                            Verdict::Shutdown => begin_shutdown = true,
                        }
                    } else {
                        // Condemned connections drain input so the final
                        // close sends FIN, not RST.
                        let buffered = conn.inbuf.len();
                        conn.inbuf.consume(buffered);
                    }
                    if begin_shutdown {
                        break;
                    }
                    if budget == 0 {
                        self.pending.push(token);
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot, token, CloseReason::Error);
                    return;
                }
            }
        }
        if begin_shutdown {
            // The responding frame is already queued; the drain flushes it.
            self.ctl.begin_shutdown();
            return;
        }
        if self.flush_conn(slot, token) {
            return;
        }
        let conn = match self.conns.get_mut(slot) {
            Some(Some(c)) if c.token == token => c,
            _ => return,
        };
        if conn.peer_eof {
            let reason = conn.closing.unwrap_or(CloseReason::PeerClosed);
            if conn.out.is_empty() {
                self.close_conn(slot, token, reason);
            } else {
                // Half-close: the peer stopped sending but still reads;
                // finish flushing queued responses, then close.
                conn.closing = Some(reason);
            }
        }
    }

    /// Flushes the write queue, re-registering write interest while the
    /// socket pushes back. Returns `true` if the connection closed.
    fn flush_conn(&mut self, slot: usize, token: u64) -> bool {
        let now = self.now_ms();
        let (status, moved) = {
            let conn = match self.conns.get_mut(slot) {
                Some(Some(c)) if c.token == token => c,
                _ => return true,
            };
            if conn.out.is_empty() && !conn.want_write && conn.closing.is_none() {
                return false;
            }
            let flush_start = Instant::now();
            match conn.out.flush(&mut conn.stream) {
                Ok((status, moved)) => {
                    if moved > 0 {
                        self.observer.on_flush(
                            self.idx,
                            moved,
                            flush_start.elapsed().as_micros() as u64,
                        );
                    }
                    (status, moved)
                }
                Err(_) => {
                    self.close_conn(slot, token, CloseReason::Error);
                    return true;
                }
            }
        };
        match status {
            FlushStatus::Done => {
                let (fd, rearm, close_reason) = {
                    let conn = match self.conns.get_mut(slot) {
                        Some(Some(c)) if c.token == token => c,
                        _ => return true,
                    };
                    if moved > 0 {
                        // A fully drained flush is activity; a trickling
                        // (never-draining) reader is not.
                        conn.last_activity_ms = now;
                    }
                    let rearm = conn.want_write;
                    conn.want_write = false;
                    (conn.stream.as_raw_fd(), rearm, conn.closing)
                };
                if rearm {
                    let _ = self.poller.modify(fd, Interest::READ, token);
                }
                if let Some(reason) = close_reason {
                    self.close_conn(slot, token, reason);
                    return true;
                }
                false
            }
            FlushStatus::Pending => {
                let (fd, arm) = {
                    let conn = match self.conns.get_mut(slot) {
                        Some(Some(c)) if c.token == token => c,
                        _ => return true,
                    };
                    let arm = !conn.want_write;
                    conn.want_write = true;
                    (conn.stream.as_raw_fd(), arm)
                };
                if arm {
                    let _ = self.poller.modify(fd, Interest::READ_WRITE, token);
                    self.observer.on_write_backpressure(self.idx);
                }
                false
            }
        }
    }

    /// An idle deadline fired (possibly stale — timers are lazily
    /// cancelled by generation token).
    fn conn_timer(&mut self, token: u64, now: u64) {
        let slot = (token & 0xFFFF_FFFF) as usize;
        let (idle, last) = {
            let conn = match self.conns.get(slot) {
                Some(Some(c)) if c.token == token => c,
                _ => return,
            };
            match conn.idle_ms {
                Some(idle) => (idle, conn.last_activity_ms),
                None => return,
            }
        };
        if now < last.saturating_add(idle) {
            // Activity since the timer was armed: re-arm from it.
            self.wheel.schedule(token, last + idle);
            return;
        }
        let verdict = {
            let conn = match self.conns.get_mut(slot) {
                Some(Some(c)) if c.token == token => c,
                _ => return,
            };
            if conn.closing.is_some() {
                // Condemned but the peer never drained the final flush:
                // reap it, queued bytes and all.
                None
            } else {
                Some(conn.drive_idle())
            }
        };
        match verdict {
            None | Some(Verdict::Close) => {
                // Reap now: an unresponsive (or 1 B/s) peer must not hold
                // its buffers or stall the drain.
                self.close_conn(slot, token, CloseReason::IdleTimeout);
            }
            Some(Verdict::Continue) => {
                if let Some(Some(c)) = self.conns.get_mut(slot) {
                    c.last_activity_ms = now;
                }
                self.wheel.schedule(token, now + idle);
                self.flush_conn(slot, token);
            }
            Some(Verdict::Shutdown) => {
                self.ctl.begin_shutdown();
            }
        }
    }

    /// Tears a connection down: deregister, clear the peer's unread bytes
    /// (so the close sends FIN and the peer can still read our final
    /// frame), notify the handler, release the slot.
    fn close_conn(&mut self, slot: usize, token: u64, reason: CloseReason) {
        let conn = match self.conns.get_mut(slot) {
            Some(entry @ Some(_)) if entry.as_ref().is_some_and(|c| c.token == token) => {
                entry.take()
            }
            _ => return,
        };
        let mut conn = match conn {
            Some(c) => c,
            None => return,
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        if !conn.peer_eof && reason != CloseReason::IdleTimeout {
            let mut scratch = [0u8; 4096];
            for _ in 0..8 {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
        }
        conn.handler.on_close(reason);
        self.free.push(slot as u32);
        self.live -= 1;
        self.observer.on_conn_count(self.idx, self.live);
    }

    /// Transitions the loop into drain: stop accepting, drop queued
    /// handovers, condemn every connection (flushing queued responses),
    /// and start the grace clock.
    fn enter_drain(&mut self, now: u64) {
        self.draining = true;
        self.drain_started_ms = now;
        let mut i = 0;
        while i < self.listeners.len() {
            let fd = self.listeners[i].listener.as_raw_fd();
            let _ = self.poller.delete(fd);
            i += 1;
        }
        self.shared.injected.lock().expect("injection queue poisoned").clear();
        self.pending.clear();
        let mut slot = 0;
        while slot < self.conns.len() {
            let (token, reason, flushed) = match &mut self.conns[slot] {
                Some(c) => {
                    let reason = *c.closing.get_or_insert(CloseReason::Drain);
                    (c.token, reason, c.out.is_empty())
                }
                None => {
                    slot += 1;
                    continue;
                }
            };
            if flushed {
                self.close_conn(slot, token, reason);
            } else {
                self.flush_conn(slot, token);
            }
            slot += 1;
        }
    }

    /// The drain grace period expired: close whatever is left.
    fn force_close_all(&mut self) {
        let mut slot = 0;
        while slot < self.conns.len() {
            if let Some(c) = &self.conns[slot] {
                let token = c.token;
                self.close_conn(slot, token, CloseReason::Drain);
            }
            slot += 1;
        }
    }
}
