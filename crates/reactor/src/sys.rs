//! Raw Linux syscall surface: `epoll` and `eventfd`, declared directly
//! against the C runtime every Rust binary already links — no crates, same
//! no-deps discipline as the rest of the workspace.
//!
//! Everything above this module works in terms of [`OwnedFd`], so descriptor
//! lifetimes are handled by std; the only unsafe here is the FFI boundary
//! itself. Failures map to `std::io::Error::last_os_error()`.

use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::os::raw::c_int;

/// Readiness: data to read.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Exclusive wakeup: one waiter per event across epoll instances sharing a
/// descriptor — the sharded-accept primitive.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;
/// Edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One `struct epoll_event`. Packed on x86-64, where the kernel ABI lacks
/// the natural 8-byte alignment of `data`.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLL*`).
    pub events: u32,
    /// Caller-chosen token, echoed verbatim on readiness.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`.
pub fn epoll_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    // SAFETY: epoll_create1 returned a fresh descriptor we now own.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// `epoll_ctl(ADD)`: start watching `fd` for `events`, tagging readiness
/// with `token`.
pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data: token };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(drop)
}

/// `epoll_ctl(MOD)`: change the interest set for an already-watched `fd`.
pub fn epoll_modify(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data: token };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(drop)
}

/// `epoll_ctl(DEL)`: stop watching `fd`.
pub fn epoll_delete(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    let mut ev = EpollEvent { events: 0, data: 0 };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
}

/// `epoll_wait`: blocks up to `timeout_ms` (`-1` = forever), filling
/// `events`; returns how many readiness records arrived. `EINTR` surfaces
/// as `Ok(0)` so callers simply re-enter their loop.
pub fn epoll_wait_fd(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(n as usize)
}

/// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)` — the cross-thread wake pipe.
pub fn eventfd_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
    // SAFETY: eventfd returned a fresh descriptor we now own.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_event_matches_kernel_abi() {
        let expected = if cfg!(target_arch = "x86_64") { 12 } else { 16 };
        assert_eq!(std::mem::size_of::<EpollEvent>(), expected);
    }

    #[test]
    fn eventfd_readiness_round_trips_through_epoll() {
        let ep = epoll_create().expect("epoll");
        let ef = eventfd_create().expect("eventfd");
        epoll_add(ep.as_raw_fd(), ef.as_raw_fd(), EPOLLIN, 42).expect("add");

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a zero timeout returns immediately, empty.
        assert_eq!(epoll_wait_fd(ep.as_raw_fd(), &mut events, 0).expect("wait"), 0);

        // Writing the eventfd makes it readable.
        let mut f = std::fs::File::from(ef);
        std::io::Write::write_all(&mut f, &1u64.to_ne_bytes()).expect("wake");
        let n = epoll_wait_fd(ep.as_raw_fd(), &mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let (data, bits) = { (events[0].data, events[0].events) };
        assert_eq!(data, 42);
        assert_ne!(bits & EPOLLIN, 0);
    }
}
