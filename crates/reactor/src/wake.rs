//! Cross-thread wakeups: an `eventfd` registered in each loop's poller.
//!
//! Any thread may [`Waker::wake`] a loop — the acceptor handing over a
//! fresh connection, another loop completing a response, or a shutdown
//! request. Wakes coalesce in the kernel (the eventfd is a counter), so a
//! storm of producers costs one readiness event.

use std::fs::File;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;

use crate::sys;

/// A cloneable handle that can wake one event loop from any thread.
#[derive(Clone)]
pub struct Waker {
    fd: Arc<File>,
}

impl Waker {
    /// Creates the eventfd.
    pub fn new() -> std::io::Result<Waker> {
        Ok(Waker { fd: Arc::new(File::from(sys::eventfd_create()?)) })
    }

    /// The raw descriptor, for poller registration.
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Wakes the owning loop. Cheap, thread-safe, coalescing; an error is
    /// impossible short of descriptor exhaustion and is ignored (the loop
    /// also wakes on its poll timeout).
    pub fn wake(&self) {
        let _ = (&*self.fd).write_all(&1u64.to_ne_bytes());
    }

    /// Drains pending wake counts after readiness; called by the owning
    /// loop so the next wake edge-triggers again.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&*self.fd).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakes_coalesce_and_drain() {
        let waker = Waker::new().expect("eventfd");
        for _ in 0..100 {
            waker.wake();
        }
        let mut buf = [0u8; 8];
        let n = (&*waker.fd).read(&mut buf).expect("counter read");
        assert_eq!(n, 8);
        assert_eq!(u64::from_ne_bytes(buf), 100, "eventfd coalesces wakes into one counter");
        // Drained: the next read would block (EAGAIN on the nonblocking fd).
        assert!((&*waker.fd).read(&mut buf).is_err());
    }

    #[test]
    fn wake_from_another_thread() {
        let waker = Waker::new().expect("eventfd");
        let remote = waker.clone();
        std::thread::spawn(move || remote.wake()).join().expect("join");
        let mut buf = [0u8; 8];
        let n = (&*waker.fd).read(&mut buf).expect("woken");
        assert_eq!(n, 8, "one full eventfd counter per wake");
        waker.drain();
    }
}
