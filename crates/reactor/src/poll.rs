//! Safe wrapper over one epoll instance: an interest set plus a wait call.

use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};

use crate::sys;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable (or incoming connection).
    pub readable: bool,
    /// Wake on writable.
    pub writable: bool,
    /// Edge-triggered delivery (one wake per readiness *transition*; the
    /// consumer must drain to `EAGAIN`).
    pub edge: bool,
    /// Exclusive wakeup across epoll instances watching the same
    /// descriptor (listeners shared by several loops).
    pub exclusive: bool,
}

impl Interest {
    /// Edge-triggered read interest — the per-connection default.
    pub const READ: Interest =
        Interest { readable: true, writable: false, edge: true, exclusive: false };

    /// Edge-triggered read+write interest (write backpressure engaged).
    pub const READ_WRITE: Interest =
        Interest { readable: true, writable: true, edge: true, exclusive: false };

    /// Level-triggered exclusive accept interest for shared listeners.
    pub const ACCEPT: Interest =
        Interest { readable: true, writable: false, edge: false, exclusive: true };

    fn bits(self) -> u32 {
        // EPOLLEXCLUSIVE rejects every flag except IN/OUT/ET/WAKEUP with
        // EINVAL, so half-close interest only applies to plain conns.
        let mut ev = if self.exclusive { 0 } else { sys::EPOLLRDHUP };
        if self.readable {
            ev |= sys::EPOLLIN;
        }
        if self.writable {
            ev |= sys::EPOLLOUT;
        }
        if self.edge {
            ev |= sys::EPOLLET;
        }
        if self.exclusive {
            ev |= sys::EPOLLEXCLUSIVE;
        }
        ev
    }
}

/// One readiness record out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Ready {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable (or peer half-closed — reads will observe it).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup: the descriptor is dead or dying; the owner should
    /// attempt a final read (errors surface there) and close.
    pub error: bool,
}

/// One epoll instance.
pub struct Poller {
    epfd: OwnedFd,
    events: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates the epoll instance with room for `capacity` readiness
    /// records per wait.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
            events: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(8)],
        })
    }

    /// Registers `fd` with `interest`, tagging its readiness with `token`.
    pub fn add(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        sys::epoll_add(self.epfd.as_raw_fd(), fd, interest.bits(), token)
    }

    /// Re-registers `fd` with a new interest set (backpressure on/off).
    pub fn modify(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        sys::epoll_modify(self.epfd.as_raw_fd(), fd, interest.bits(), token)
    }

    /// Stops watching `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_delete(self.epfd.as_raw_fd(), fd)
    }

    /// Waits up to `timeout_ms` (`None` = forever) and invokes `sink` for
    /// each readiness record. Returns how many records arrived.
    pub fn wait(
        &mut self,
        timeout_ms: Option<u32>,
        mut sink: impl FnMut(Ready),
    ) -> io::Result<usize> {
        let timeout = timeout_ms.map_or(-1i32, |t| t.min(i32::MAX as u32) as i32);
        let n = sys::epoll_wait_fd(self.epfd.as_raw_fd(), &mut self.events, timeout)?;
        for ev in &self.events[..n] {
            let bits = ev.events;
            sink(Ready {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn socket_readability_is_reported_with_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new(16).expect("poller");
        poller.add(listener.as_raw_fd(), Interest::READ, 7).expect("add listener");

        let mut client = TcpStream::connect(addr).expect("connect");
        let mut seen = Vec::new();
        while seen.is_empty() {
            poller.wait(Some(1000), |r| seen.push(r.token)).expect("wait");
        }
        assert_eq!(seen, vec![7]);

        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller.add(server_side.as_raw_fd(), Interest::READ, 9).expect("add conn");
        client.write_all(b"ping").expect("send");
        let mut tokens = Vec::new();
        while !tokens.contains(&9) {
            poller.wait(Some(1000), |r| tokens.push(r.token)).expect("wait");
        }
    }
}
