//! The reactor assembly: spawn per-core loops, register listeners in every
//! loop (`EPOLLEXCLUSIVE` sharded accept), and coordinate graceful drain.

use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::event_loop::{Ctl, EventLoop, ListenerEntry, LoopConfig, LoopShared};
use crate::wake::Waker;
use crate::{default_observer, Observer, Service};

/// Reactor sizing and policy.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop threads; `0` sizes to the machine (available
    /// parallelism, capped at 8).
    pub loops: usize,
    /// Readiness records per `epoll_wait`.
    pub events_per_wait: usize,
    /// Per-connection bytes read per wake before yielding to peers (the
    /// fairness cap; capped connections resume next iteration).
    pub read_budget: usize,
    /// How long a graceful drain may wait for queued responses to flush
    /// before remaining connections are force-closed.
    pub drain_grace_ms: u64,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            loops: 0,
            events_per_wait: 256,
            read_budget: 256 * 1024,
            drain_grace_ms: 2_000,
        }
    }
}

impl ReactorConfig {
    fn resolved_loops(&self) -> usize {
        if self.loops > 0 {
            return self.loops;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
    }
}

/// Builds a [`Reactor`]: attach listeners (each with its [`Service`]), an
/// optional [`Observer`], then [`start`](ReactorBuilder::start).
pub struct ReactorBuilder {
    config: ReactorConfig,
    listeners: Vec<ListenerEntry>,
    observer: Option<Arc<dyn Observer>>,
}

impl ReactorBuilder {
    /// A builder with the given sizing.
    pub fn new(config: ReactorConfig) -> ReactorBuilder {
        ReactorBuilder { config, listeners: Vec::new(), observer: None }
    }

    /// Serves `service` on `listener`. The socket is switched to
    /// nonblocking and registered in every loop with `EPOLLEXCLUSIVE`, so
    /// the kernel spreads accept wakeups instead of thundering the herd.
    pub fn listen(
        mut self,
        listener: TcpListener,
        service: Arc<dyn Service>,
    ) -> io::Result<ReactorBuilder> {
        listener.set_nonblocking(true)?;
        self.listeners.push(ListenerEntry { listener: Arc::new(listener), service });
        Ok(self)
    }

    /// Installs instrumentation hooks.
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> ReactorBuilder {
        self.observer = Some(observer);
        self
    }

    /// Spawns the event-loop threads and begins serving.
    pub fn start(self) -> io::Result<Reactor> {
        let nloops = self.config.resolved_loops();
        let mut loop_shared = Vec::with_capacity(nloops);
        for _ in 0..nloops {
            loop_shared.push(Arc::new(LoopShared {
                injected: Mutex::new(Vec::new()),
                waker: Waker::new()?,
            }));
        }
        let ctl = Arc::new(Ctl {
            shutdown: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(0),
            next_loop: AtomicUsize::new(0),
            loops: loop_shared.clone(),
        });
        let listeners = Arc::new(self.listeners);
        let observer = self.observer.unwrap_or_else(default_observer);

        let mut threads = Vec::with_capacity(nloops);
        for (idx, shared) in loop_shared.iter().enumerate() {
            let el = EventLoop::new(
                idx,
                nloops,
                LoopConfig {
                    events_per_wait: self.config.events_per_wait,
                    read_budget: self.config.read_budget.max(4096),
                    drain_grace_ms: self.config.drain_grace_ms,
                },
                shared.clone(),
                ctl.clone(),
                listeners.clone(),
                observer.clone(),
            )?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("reactor-{idx}"))
                    .spawn(move || el.run())?,
            );
        }
        Ok(Reactor { ctl, threads, nloops })
    }
}

/// A running reactor. Dropping it performs a full graceful shutdown
/// (begin drain, join every loop).
pub struct Reactor {
    ctl: Arc<Ctl>,
    threads: Vec<JoinHandle<()>>,
    nloops: usize,
}

impl Reactor {
    /// Number of event-loop threads.
    pub fn loops(&self) -> usize {
        self.nloops
    }

    /// Starts a graceful drain without waiting: listeners deregister, live
    /// connections flush queued responses and close. Idempotent.
    pub fn begin_shutdown(&self) {
        self.ctl.begin_shutdown();
    }

    /// Whether a drain has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.ctl.shutdown.load(Ordering::SeqCst)
    }

    /// Drains and joins every loop. Idempotent and drop-safe.
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}
