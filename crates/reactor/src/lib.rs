//! A dependency-free nonblocking readiness event loop on raw Linux epoll.
//!
//! The serving tier's concurrency layer: instead of one OS thread per
//! connection (whose scheduler thrash shows up directly as multi-ms tail
//! latency), a small set of per-core event-loop threads multiplexes every
//! connection through `epoll`:
//!
//! * [`sys`] — the syscall surface: `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait` and `eventfd`, declared straight against the C runtime
//!   (no crates — the same no-deps discipline as `store` and `obs`).
//! * [`Poller`] — one epoll instance: an interest set plus a wait call.
//! * [`Waker`] — an eventfd per loop; any thread can wake a loop to hand
//!   over a connection, finish a response, or start a drain.
//! * [`TimerWheel`] — hierarchical timer wheel (8 ms ticks, four levels of
//!   64 slots) driving idle-connection deadlines.
//! * [`ReadBuf`]/[`WriteQueue`] — per-connection buffers: a compacting
//!   read window for streaming decoders, and an owned-segment write queue
//!   flushed with vectored writes and interest re-registration under
//!   write backpressure.
//! * [`Reactor`] — the assembly: N event loops, every listener registered
//!   in every loop with `EPOLLEXCLUSIVE` (the sharded accept path), each
//!   accepted connection placed round-robin across loops, edge-triggered
//!   per-connection state machines, and a bounded graceful drain.
//!
//! Protocols plug in through two traits: a [`Service`] decides what to do
//! with each accepted connection (and can refuse it with parting bytes),
//! and its per-connection [`Handler`] consumes the read buffer and queues
//! responses. The reactor owns all I/O; handlers never see a socket.
//!
//! Linux-only by construction (epoll *is* the point); the rest of the
//! workspace compiles without it.
#![warn(missing_docs)]

pub mod buf;
pub mod poll;
pub mod sys;
pub mod timer;
pub mod wake;

mod event_loop;
mod reactor;

pub use buf::{FlushStatus, ReadBuf, WriteQueue};
pub use event_loop::ConnCtx;
pub use poll::{Interest, Poller, Ready};
pub use reactor::{Reactor, ReactorBuilder, ReactorConfig};
pub use timer::TimerWheel;
pub use wake::Waker;

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// What the loop should do with a connection after a handler callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Keep serving.
    Continue,
    /// Flush whatever the handler queued, then close the connection.
    Close,
    /// Begin a reactor-wide graceful drain (a wire shutdown request). The
    /// connection's queued output is still flushed before its close.
    Shutdown,
}

/// Why a connection was torn down, passed to [`Handler::on_close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed (EOF) and every queued response was flushed.
    PeerClosed,
    /// A socket error (reset, broken pipe, write failure).
    Error,
    /// The handler asked for the close ([`Verdict::Close`]).
    Requested,
    /// The idle deadline fired and [`Handler::on_idle`] chose to close.
    IdleTimeout,
    /// The reactor drained the connection during shutdown.
    Drain,
}

/// Per-connection protocol logic. The loop owns the socket; the handler
/// sees bytes in, bytes out.
pub trait Handler: Send {
    /// Bytes arrived (or were already buffered at EOF): consume from
    /// [`ConnCtx::input`], queue responses with [`ConnCtx::write`].
    fn on_readable(&mut self, conn: &mut ConnCtx<'_>) -> Verdict;

    /// The idle deadline elapsed with no socket activity. Default: reap.
    fn on_idle(&mut self, conn: &mut ConnCtx<'_>) -> Verdict {
        let _ = conn;
        Verdict::Close
    }

    /// The connection is gone. Always called exactly once for accepted
    /// connections, with the teardown reason.
    fn on_close(&mut self, reason: CloseReason) {
        let _ = reason;
    }
}

/// Accept-time decision for one incoming connection.
pub enum AcceptDecision {
    /// Serve it with this handler.
    Accept(Box<dyn Handler>),
    /// Refuse it: flush these parting bytes (a typed error frame), then
    /// close. Refused connections never see [`Handler::on_close`].
    Reject(Vec<u8>),
}

/// A listener's protocol: builds a handler per accepted connection.
pub trait Service: Send + Sync {
    /// Called on the loop that will own the connection, for every fresh
    /// connection.
    fn on_accept(&self, conn_id: u64, peer: SocketAddr) -> AcceptDecision;

    /// Idle-connection deadline for this listener's connections; `None`
    /// disables reaping.
    fn idle_timeout(&self) -> Option<Duration> {
        None
    }
}

/// Loop instrumentation hooks, all optional. Implementations must be cheap
/// and lock-free — these run inside the event loops.
pub trait Observer: Send + Sync {
    /// One `epoll_wait` returned: `events` readiness records after
    /// `wait_us` microseconds in the call (includes sleep time; gate on
    /// `events > 0` to measure dispatch latency).
    fn on_poll(&self, loop_idx: usize, events: usize, wait_us: u64) {
        let _ = (loop_idx, events, wait_us);
    }
    /// A connection flush moved `bytes` to the socket in `flush_us`.
    fn on_flush(&self, loop_idx: usize, bytes: usize, flush_us: u64) {
        let _ = (loop_idx, bytes, flush_us);
    }
    /// A loop's open-connection count changed.
    fn on_conn_count(&self, loop_idx: usize, open: usize) {
        let _ = (loop_idx, open);
    }
    /// A connection's socket stopped accepting bytes; write interest was
    /// re-registered (write backpressure engaged).
    fn on_write_backpressure(&self, loop_idx: usize) {
        let _ = loop_idx;
    }
    /// A connection was accepted on this loop (before placement).
    fn on_accepted(&self, loop_idx: usize) {
        let _ = loop_idx;
    }
}

/// The default no-op observer.
pub struct NullObserver;

impl Observer for NullObserver {}

pub(crate) fn default_observer() -> Arc<dyn Observer> {
    Arc::new(NullObserver)
}
