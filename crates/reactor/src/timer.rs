//! Hierarchical timer wheel for coarse connection deadlines.
//!
//! Four levels of 64 slots over an 8 ms tick: level 0 resolves ~half a
//! second, each higher level is 64× coarser, topping out around 37 hours
//! (longer deadlines clamp). Insertion and cascade are O(1) amortized;
//! there is no explicit cancel — owners carry a generation and simply
//! ignore stale expirations (idle timers re-arm from the connection's
//! `last_activity` instead of being rescheduled on every byte).

/// log2 of the tick length in milliseconds (8 ms ticks).
const TICK_BITS: u32 = 3;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels.
const LEVELS: usize = 4;

/// One pending timer.
#[derive(Debug, Clone, Copy)]
struct Timer {
    /// Absolute deadline, in ticks.
    deadline: u64,
    /// Caller token (e.g. connection slot | generation).
    key: u64,
}

/// The wheel. Time is externally supplied milliseconds (monotonic, from
/// the owning loop's clock); the wheel only ever compares and shifts it.
pub struct TimerWheel {
    /// `LEVELS * SLOTS` buckets, level-major.
    slots: Vec<Vec<Timer>>,
    /// Last tick `advance` fully processed.
    now: u64,
    /// Pending timers across all buckets.
    len: usize,
}

impl TimerWheel {
    /// An empty wheel starting at time zero.
    pub fn new() -> TimerWheel {
        TimerWheel { slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(), now: 0, len: 0 }
    }

    /// Pending timer count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket(&self, deadline: u64) -> usize {
        // Distance decides the level; the deadline's own digits pick the
        // slot, so a cascade drops an entry one level at the right time.
        let delta = deadline.saturating_sub(self.now);
        for level in 0..LEVELS {
            let span = 1u64 << (SLOT_BITS * (level as u32 + 1));
            if delta < span || level == LEVELS - 1 {
                let slot = (deadline >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                return level * SLOTS + slot;
            }
        }
        unreachable!("last level accepts any delta")
    }

    /// Schedules `key` to expire at `deadline_ms` (clamped to now+1 tick if
    /// already past; far futures clamp into the top level).
    pub fn schedule(&mut self, key: u64, deadline_ms: u64) {
        // Ceil to a tick so nothing ever fires early.
        let ticks = (deadline_ms + (1 << TICK_BITS) - 1) >> TICK_BITS;
        let deadline = ticks.max(self.now + 1);
        let bucket = self.bucket(deadline);
        self.slots[bucket].push(Timer { deadline, key });
        self.len += 1;
    }

    /// Advances the wheel to `now_ms`, pushing every expired key into
    /// `expired` (in expiry order across ticks, unordered within one).
    pub fn advance(&mut self, now_ms: u64, expired: &mut Vec<u64>) {
        let target = now_ms >> TICK_BITS;
        if self.len == 0 {
            self.now = self.now.max(target);
            return;
        }
        while self.now < target {
            self.now += 1;
            let tick = self.now;
            // Cascade higher levels on their boundaries first, so their
            // entries land in the level-0 slot this tick drains.
            for level in 1..LEVELS {
                if tick.trailing_zeros() >= SLOT_BITS * level as u32 {
                    let slot = (tick >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                    let entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                    for t in entries {
                        self.len -= 1;
                        if t.deadline <= tick {
                            expired.push(t.key);
                        } else {
                            let bucket = self.bucket(t.deadline);
                            self.slots[bucket].push(t);
                            self.len += 1;
                        }
                    }
                } else {
                    break;
                }
            }
            let slot = tick as usize & (SLOTS - 1);
            let entries = &mut self.slots[slot];
            if entries.is_empty() {
                continue;
            }
            // Entries parked here from a clamped far future re-circulate.
            let mut keep = Vec::new();
            for t in entries.drain(..) {
                if t.deadline <= tick {
                    expired.push(t.key);
                    self.len -= 1;
                } else {
                    keep.push(t);
                }
            }
            self.slots[slot] = keep;
        }
    }

    /// Milliseconds until the next possible expiry (an upper bound good
    /// for a poll timeout: never sleeps past a deadline, may wake at a
    /// cascade boundary early). `None` when no timers are pending.
    pub fn next_timeout_ms(&self, now_ms: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let now = now_ms >> TICK_BITS;
        // Scan the level-0 window ahead of `now`; the earliest nonempty
        // slot bounds the sleep. Anything in higher levels cascades no
        // sooner than the next level-0 rotation boundary.
        let mut horizon = SLOTS as u64 - (now & (SLOTS as u64 - 1)).max(1);
        for ahead in 1..=horizon {
            let tick = self.now.max(now) + ahead;
            if !self.slots[tick as usize & (SLOTS - 1)].is_empty() {
                horizon = ahead;
                break;
            }
        }
        let wake_tick = self.now.max(now) + horizon;
        Some((wake_tick << TICK_BITS).saturating_sub(now_ms).max(1))
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel, now: u64) -> Vec<u64> {
        let mut out = Vec::new();
        wheel.advance(now, &mut out);
        out
    }

    #[test]
    fn near_deadline_fires_on_time_never_early() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(1, 100);
        assert!(drain(&mut wheel, 96).is_empty(), "must not fire before the deadline");
        assert_eq!(drain(&mut wheel, 110), vec![1]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn deadlines_across_levels_fire_in_order() {
        let mut wheel = TimerWheel::new();
        // Level 0 (<512ms), level 1 (<32s), level 2 (<35min), level 3.
        wheel.schedule(10, 40);
        wheel.schedule(11, 5_000);
        wheel.schedule(12, 120_000);
        wheel.schedule(13, 3_600_000);
        assert_eq!(wheel.len(), 4);

        let mut fired = Vec::new();
        let mut t = 0;
        while t <= 3_700_000 {
            wheel.advance(t, &mut fired);
            t += 256; // uneven stride exercises multi-tick catch-up
        }
        assert_eq!(fired, vec![10, 11, 12, 13]);
    }

    #[test]
    fn every_deadline_fires_within_one_tick_of_its_time() {
        let mut wheel = TimerWheel::new();
        // A pseudo-random spray of deadlines over ~90 seconds.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut deadlines = Vec::new();
        for key in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let d = x % 90_000;
            deadlines.push((key, d));
            wheel.schedule(key, d);
        }
        let mut fired_at = vec![None; 500];
        let mut expired = Vec::new();
        for now in (0..100_000).step_by(8) {
            expired.clear();
            wheel.advance(now, &mut expired);
            for &k in &expired {
                fired_at[k as usize] = Some(now);
            }
        }
        for (key, deadline) in deadlines {
            let at = fired_at[key as usize].expect("every timer fires");
            assert!(at + 16 >= deadline, "timer {key} fired early: {at} < {deadline}");
            assert!(at <= deadline + 16, "timer {key} fired late: {at} > {deadline}");
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_timeout_bounds_the_sleep() {
        let mut wheel = TimerWheel::new();
        assert_eq!(wheel.next_timeout_ms(0), None);
        wheel.schedule(1, 100);
        let t = wheel.next_timeout_ms(0).expect("pending timer");
        assert!(t <= 104, "sleep {t} must not overshoot the 100ms deadline");
        // A far deadline still yields a bounded (cascade-boundary) sleep.
        let mut far = TimerWheel::new();
        far.schedule(2, 3_600_000);
        let t = far.next_timeout_ms(0).expect("pending timer");
        assert!(t <= (SLOTS as u64) << TICK_BITS, "sleep {t} capped at one rotation");
    }

    #[test]
    fn clock_jumps_with_no_timers_are_cheap_and_correct() {
        let mut wheel = TimerWheel::new();
        let mut out = Vec::new();
        wheel.advance(10_000_000, &mut out); // long idle stall
        wheel.schedule(5, 10_000_050);
        wheel.advance(10_000_200, &mut out);
        assert_eq!(out, vec![5]);
    }
}
