//! Connection buffers: a compacting read buffer the streaming decoder
//! consumes from, and a segment write queue flushed with vectored writes.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};

/// Initial read-buffer capacity per connection.
const READ_INIT: usize = 16 * 1024;
/// A drained read buffer larger than this shrinks back, so one burst (or a
/// slow-loris feeding a huge declared frame) does not pin memory forever.
const READ_SHRINK_OVER: usize = 256 * 1024;

/// Compacting read buffer: bytes arrive at the tail, the protocol consumes
/// from the head, and the window slides without reallocating in steady
/// state.
pub struct ReadBuf {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl ReadBuf {
    /// An empty buffer (first fill allocates).
    pub fn new() -> ReadBuf {
        ReadBuf { buf: Vec::new(), start: 0, end: 0 }
    }

    /// The unconsumed bytes.
    pub fn input(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Unconsumed byte count.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether all received bytes were consumed.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Marks `n` head bytes consumed.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`ReadBuf::len`] — consuming bytes that never
    /// arrived is a protocol-driver bug.
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consume({n}) exceeds buffered {}", self.len());
        self.start += n;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
            if self.buf.len() > READ_SHRINK_OVER {
                self.buf = Vec::new();
            }
        }
    }

    /// Reads once from `r` into spare tail capacity (compacting or growing
    /// as needed), appending up to `max` bytes. Returns the byte count
    /// (`Ok(0)` is end-of-stream).
    pub fn fill_from(&mut self, r: &mut impl Read, max: usize) -> io::Result<usize> {
        let want = max.clamp(1, READ_INIT.max(max.min(READ_INIT * 4)));
        if self.buf.len() - self.end < want {
            if self.start > 0 {
                // Slide the live window to the front.
                self.buf.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.start = 0;
            }
            if self.buf.len() - self.end < want {
                let grow = (self.end + want).max(self.buf.len() * 2).max(READ_INIT);
                self.buf.resize(grow, 0);
            }
        }
        let n = r.read(&mut self.buf[self.end..self.end + want])?;
        self.end += n;
        Ok(n)
    }
}

impl Default for ReadBuf {
    fn default() -> Self {
        Self::new()
    }
}

/// How a flush attempt left the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushStatus {
    /// Everything queued hit the socket.
    Done,
    /// The socket stopped accepting bytes (kernel buffer full) — re-arm
    /// write interest and come back on writability.
    Pending,
}

/// Outbound segment queue. Responses are queued as owned byte vectors
/// (already-encoded frames) and flushed with `writev`-style vectored
/// writes, so a pipelined burst of replies costs one syscall, not one per
/// frame.
pub struct WriteQueue {
    segments: VecDeque<Vec<u8>>,
    /// Bytes of the front segment already written.
    head: usize,
    /// Total unwritten bytes across all segments.
    queued: usize,
}

/// Most segments handed to one vectored write.
const MAX_IOVEC: usize = 64;

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> WriteQueue {
        WriteQueue { segments: VecDeque::new(), head: 0, queued: 0 }
    }

    /// Queues one encoded segment (empties are dropped).
    pub fn push(&mut self, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.queued += bytes.len();
            self.segments.push_back(bytes);
        }
    }

    /// Unwritten bytes.
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Writes as much as the socket accepts. Returns the flush status and
    /// how many bytes moved; `WouldBlock` is not an error (it is what
    /// [`FlushStatus::Pending`] means).
    pub fn flush(&mut self, w: &mut impl Write) -> io::Result<(FlushStatus, usize)> {
        let mut moved = 0usize;
        while !self.segments.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(self.segments.len().min(MAX_IOVEC));
            for (i, seg) in self.segments.iter().take(MAX_IOVEC).enumerate() {
                let from = if i == 0 { self.head } else { 0 };
                slices.push(IoSlice::new(&seg[from..]));
            }
            let n = match w.write_vectored(&slices) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok((FlushStatus::Pending, moved))
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            moved += n;
            self.queued -= n;
            self.advance(n);
        }
        Ok((FlushStatus::Done, moved))
    }

    fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let remaining =
                self.segments.front().expect("bytes written imply a segment").len() - self.head;
            if n >= remaining {
                n -= remaining;
                self.head = 0;
                self.segments.pop_front();
            } else {
                self.head += n;
                n = 0;
            }
        }
    }
}

impl Default for WriteQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_buf_slides_and_grows() {
        let mut buf = ReadBuf::new();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut src = std::io::Cursor::new(&data[..]);
        let mut seen = Vec::new();
        loop {
            let n = buf.fill_from(&mut src, 4096).expect("read");
            if n == 0 {
                break;
            }
            // Consume in awkward strides to force sliding compaction.
            while buf.len() >= 1000 {
                seen.extend_from_slice(&buf.input()[..1000]);
                buf.consume(1000);
            }
        }
        seen.extend_from_slice(buf.input());
        let l = buf.len();
        buf.consume(l);
        assert_eq!(seen, data);
        assert!(buf.is_empty());
    }

    /// A writer that accepts at most `cap` bytes per call — a socket whose
    /// kernel buffer keeps filling.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
        block_next: bool,
    }

    impl Write for Dribble {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            let n = data.len().min(self.cap);
            self.out.extend_from_slice(&data[..n]);
            self.block_next = true;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_survives_partial_and_blocked_writes() {
        let mut q = WriteQueue::new();
        let mut expect = Vec::new();
        for i in 0..50u32 {
            let seg: Vec<u8> = (0..(i % 7 + 1) * 13).map(|b| (b + i) as u8).collect();
            expect.extend_from_slice(&seg);
            q.push(seg);
        }
        q.push(Vec::new()); // empties are dropped
        let total = q.queued_bytes();
        assert_eq!(total, expect.len());

        let mut sink = Dribble { out: Vec::new(), cap: 17, block_next: false };
        let mut rounds = 0;
        loop {
            match q.flush(&mut sink).expect("flush") {
                (FlushStatus::Done, _) => break,
                (FlushStatus::Pending, _) => rounds += 1,
            }
            assert!(rounds < 10_000, "flush must make progress");
        }
        assert_eq!(sink.out, expect);
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
    }
}
