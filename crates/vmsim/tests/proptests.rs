//! Property-based tests for the monitoring substrate.

use proptest::prelude::*;

use vmsim::metric::{MetricKind, VmId};
use vmsim::profiles::VmProfile;
use vmsim::rrd::RoundRobinDatabase;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// RRD consolidation equals the mean of the underlying minutes for any
    /// aligned query.
    #[test]
    fn consolidation_is_exact_average(
        values in proptest::collection::vec(0f64..100.0, 30..200),
        interval in 1u64..10,
        offset in 0u64..20,
    ) {
        let rrd = RoundRobinDatabase::new(values.len() + 1);
        for (minute, v) in values.iter().enumerate() {
            rrd.record(VmId(1), MetricKind::CpuUsedSec, minute as u64, *v);
        }
        let len = values.len() as u64;
        prop_assume!(offset + interval <= len);
        let span = ((len - offset) / interval) * interval;
        prop_assume!(span > 0);
        let out = rrd
            .consolidated(VmId(1), MetricKind::CpuUsedSec, offset, offset + span, interval)
            .unwrap();
        for (b, chunk) in out.iter().zip(values[offset as usize..].chunks(interval as usize)) {
            let mean = chunk[..interval as usize].iter().sum::<f64>() / interval as f64;
            prop_assert!((b - mean).abs() < 1e-9);
        }
    }

    /// Ring retention: after N + K writes the first K minutes are gone and
    /// the remaining window reads back exactly.
    #[test]
    fn ring_eviction_window(capacity in 5usize..40, extra in 1usize..40) {
        let rrd = RoundRobinDatabase::new(capacity);
        let total = capacity + extra;
        for minute in 0..total {
            rrd.record(VmId(2), MetricKind::Nic1Rx, minute as u64, minute as f64);
        }
        let (lo, hi) = rrd.range(VmId(2), MetricKind::Nic1Rx).unwrap();
        prop_assert_eq!(lo, extra as u64);
        prop_assert_eq!(hi, (total - 1) as u64);
        let data = rrd.consolidated(VmId(2), MetricKind::Nic1Rx, lo, hi + 1, 1).unwrap();
        for (i, v) in data.iter().enumerate() {
            prop_assert_eq!(*v, (extra + i) as f64);
        }
    }

    /// Profiles are deterministic per seed and differ across seeds.
    #[test]
    fn profile_determinism(seed in 0u64..500) {
        let mut a = VmProfile::Vm5.build(seed);
        let mut b = VmProfile::Vm5.build(seed);
        for minute in 0..50 {
            prop_assert_eq!(a.sample_all(minute), b.sample_all(minute));
        }
    }
}
