//! Randomized property tests for the monitoring substrate.
//!
//! Seeded `simrng` loops replace the original proptest strategies so the
//! suite runs without external crates; every case is deterministic per seed.

use simrng::{Rng64, Xoshiro256pp};

use vmsim::metric::{MetricKind, VmId};
use vmsim::profiles::VmProfile;
use vmsim::rrd::RoundRobinDatabase;

/// RRD consolidation equals the mean of the underlying minutes for any
/// aligned query.
#[test]
fn consolidation_is_exact_average() {
    let mut rng = Xoshiro256pp::seed_from_u64(501);
    for _ in 0..32 {
        let n = 30 + rng.next_below(170) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 100.0)).collect();
        let interval = 1 + rng.next_below(9);
        let offset = rng.next_below(20);
        let rrd = RoundRobinDatabase::new(values.len() + 1);
        for (minute, v) in values.iter().enumerate() {
            rrd.record(VmId(1), MetricKind::CpuUsedSec, minute as u64, *v);
        }
        let len = values.len() as u64;
        if offset + interval > len {
            continue;
        }
        let span = ((len - offset) / interval) * interval;
        if span == 0 {
            continue;
        }
        let out = rrd
            .consolidated(VmId(1), MetricKind::CpuUsedSec, offset, offset + span, interval)
            .unwrap();
        for (b, chunk) in out.iter().zip(values[offset as usize..].chunks(interval as usize)) {
            let mean = chunk[..interval as usize].iter().sum::<f64>() / interval as f64;
            assert!((b - mean).abs() < 1e-9);
        }
    }
}

/// Ring retention: after N + K writes the first K minutes are gone and
/// the remaining window reads back exactly.
#[test]
fn ring_eviction_window() {
    let mut rng = Xoshiro256pp::seed_from_u64(502);
    for _ in 0..32 {
        let capacity = 5 + rng.next_below(35) as usize;
        let extra = 1 + rng.next_below(39) as usize;
        let rrd = RoundRobinDatabase::new(capacity);
        let total = capacity + extra;
        for minute in 0..total {
            rrd.record(VmId(2), MetricKind::Nic1Rx, minute as u64, minute as f64);
        }
        let (lo, hi) = rrd.range(VmId(2), MetricKind::Nic1Rx).unwrap();
        assert_eq!(lo, extra as u64);
        assert_eq!(hi, (total - 1) as u64);
        let data = rrd.consolidated(VmId(2), MetricKind::Nic1Rx, lo, hi + 1, 1).unwrap();
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (extra + i) as f64);
        }
    }
}

/// Profiles are deterministic per seed and differ across seeds.
#[test]
fn profile_determinism() {
    let mut rng = Xoshiro256pp::seed_from_u64(503);
    for _ in 0..32 {
        let seed = rng.next_below(500);
        let mut a = VmProfile::Vm5.build(seed);
        let mut b = VmProfile::Vm5.build(seed);
        for minute in 0..50 {
            assert_eq!(a.sample_all(minute), b.sample_all(minute));
        }
    }
}
