//! Integration test of the paper's Figure 1 prototype: monitor agent →
//! round-robin database → profiler → prediction database → QA audit query,
//! including concurrent reader/writer operation.

use std::sync::Arc;

use vmsim::db::PredictionDatabase;
use vmsim::metric::MetricKind;
use vmsim::profiles::VmProfile;
use vmsim::{MonitorAgent, Profiler, RoundRobinDatabase};

#[test]
fn figure1_pipeline_end_to_end() {
    let profile = VmProfile::Vm2;
    let vm = profile.vm_id();
    let rrd = Arc::new(RoundRobinDatabase::new(2000));
    let mut agent = MonitorAgent::new(vec![profile.build(11)], rrd.clone());
    let profiler = Profiler::new(rrd.clone());
    let pdb = PredictionDatabase::new();

    // Warm up half a day, then run a live loop of 5-minute intervals:
    // "predict" with a trivial persistence forecast, store, reconcile, audit.
    agent.run(720);
    let mut last = profiler.extract(vm, MetricKind::CpuUsedSec, 715, 720, 5).unwrap().values()[0];
    for step in 0..48 {
        agent.run(5);
        let now = 720 + (step + 1) * 5;
        let ts = now * 60;
        pdb.store_prediction(vm, MetricKind::CpuUsedSec, ts, last, 0);
        let observed =
            profiler.extract(vm, MetricKind::CpuUsedSec, now - 5, now, 5).unwrap().values()[0];
        assert!(pdb.record_observation(vm, MetricKind::CpuUsedSec, ts, observed));
        last = observed;
    }
    assert_eq!(pdb.len(), 48);
    let audit = pdb.audit_mse(vm, MetricKind::CpuUsedSec, 24).unwrap();
    assert!(audit.is_finite() && audit >= 0.0);
    // Model-usage bookkeeping covers the only model used.
    let usage = pdb.model_usage(vm, MetricKind::CpuUsedSec);
    assert_eq!(usage.get(&0), Some(&48));
}

#[test]
fn profiler_reads_concurrently_with_monitor_writes() {
    let rrd = Arc::new(RoundRobinDatabase::new(5000));
    let profiler = Profiler::new(rrd.clone());
    let writer = {
        let rrd = rrd.clone();
        std::thread::spawn(move || {
            let mut agent = MonitorAgent::new(vec![VmProfile::Vm3.build(7)], rrd);
            for _ in 0..40 {
                agent.run(30);
            }
        })
    };
    // Poll for readable, consistent prefixes while the writer runs.
    let vm = VmProfile::Vm3.vm_id();
    let mut successes = 0;
    for _ in 0..200 {
        if let Ok(series) = profiler.extract_all(vm, MetricKind::CpuUsedSec, 5) {
            assert!(series.values().iter().all(|v| v.is_finite()));
            successes += 1;
        }
        std::thread::yield_now();
    }
    writer.join().unwrap();
    // After the writer finishes the full range must read back.
    let series = profiler.extract_all(vm, MetricKind::CpuUsedSec, 5).unwrap();
    assert_eq!(series.len(), 240); // 1200 minutes / 5
    assert!(successes > 0 || series.len() == 240);
}

#[test]
fn two_vm_monitor_keeps_streams_separate_and_complete() {
    let rrd = Arc::new(RoundRobinDatabase::new(3000));
    let mut agent =
        MonitorAgent::new(vec![VmProfile::Vm4.build(3), VmProfile::Vm5.build(3)], rrd.clone());
    agent.run(1440);
    let profiler = Profiler::new(rrd);
    let vm4 = profiler.extract(VmProfile::Vm4.vm_id(), MetricKind::Nic1Tx, 0, 1440, 5).unwrap();
    let vm5 = profiler.extract(VmProfile::Vm5.vm_id(), MetricKind::Nic1Tx, 0, 1440, 5).unwrap();
    assert_eq!(vm4.len(), 288);
    assert_eq!(vm5.len(), 288);
    // VM5's NIC1 is a dead device; VM4's carries the diurnal web traffic.
    assert!(timeseries::stats::variance(vm5.values()) < 1e-12);
    assert!(timeseries::stats::variance(vm4.values()) > 1.0);
}
