//! The performance-metric catalogue (paper Table 1 / Table 2 row names).

/// Identifier of a guest virtual machine (paper: `vmID`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u32);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VM{}", self.0)
    }
}

/// The twelve per-VM performance metrics the paper studies (Table 2 rows).
///
/// The device association (paper: `deviceID`) is implied by the variant —
/// e.g. `Nic1Rx` and `Nic1Tx` belong to NIC 1 — and exposed by
/// [`MetricKind::device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MetricKind {
    /// CPU seconds consumed per sampling interval (vmkusage `usedsec`).
    CpuUsedSec,
    /// Percentage of time the VM was runnable but not scheduled (Table 1
    /// `CPU_Ready`).
    CpuReady,
    /// Current memory allocation of the VM, bytes (Table 1 `Mem_Size`).
    MemSize,
    /// Swap space used by the VM, bytes (Table 1 `Mem_Swap`).
    MemSwapped,
    /// Packets/MBytes received per second on NIC 1 (Table 1 `Net_RX`).
    Nic1Rx,
    /// Packets/MBytes transmitted per second on NIC 1 (Table 1 `Net_TX`).
    Nic1Tx,
    /// Received traffic on NIC 2.
    Nic2Rx,
    /// Transmitted traffic on NIC 2.
    Nic2Tx,
    /// Reads per second on virtual disk 1 (Table 1 `Disk_RD`).
    Vd1Read,
    /// Writes per second on virtual disk 1 (Table 1 `Disk_WR`).
    Vd1Write,
    /// Reads per second on virtual disk 2.
    Vd2Read,
    /// Writes per second on virtual disk 2.
    Vd2Write,
}

impl MetricKind {
    /// All twelve metrics, in the paper's Table 2 row order.
    pub const ALL: [MetricKind; 12] = [
        MetricKind::CpuUsedSec,
        MetricKind::CpuReady,
        MetricKind::MemSize,
        MetricKind::MemSwapped,
        MetricKind::Nic1Rx,
        MetricKind::Nic1Tx,
        MetricKind::Nic2Rx,
        MetricKind::Nic2Tx,
        MetricKind::Vd1Read,
        MetricKind::Vd1Write,
        MetricKind::Vd2Read,
        MetricKind::Vd2Write,
    ];

    /// The paper's row label for this metric.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::CpuUsedSec => "CPU_usedsec",
            MetricKind::CpuReady => "CPU_ready",
            MetricKind::MemSize => "Memory_size",
            MetricKind::MemSwapped => "Memory_swapped",
            MetricKind::Nic1Rx => "NIC1_received",
            MetricKind::Nic1Tx => "NIC1_transmitted",
            MetricKind::Nic2Rx => "NIC2_received",
            MetricKind::Nic2Tx => "NIC2_transmitted",
            MetricKind::Vd1Read => "VD1_read",
            MetricKind::Vd1Write => "VD1_write",
            MetricKind::Vd2Read => "VD2_read",
            MetricKind::Vd2Write => "VD2_write",
        }
    }

    /// The device this metric belongs to (the paper's `deviceID`).
    pub fn device(self) -> &'static str {
        match self {
            MetricKind::CpuUsedSec | MetricKind::CpuReady => "cpu0",
            MetricKind::MemSize | MetricKind::MemSwapped => "mem0",
            MetricKind::Nic1Rx | MetricKind::Nic1Tx => "nic1",
            MetricKind::Nic2Rx | MetricKind::Nic2Tx => "nic2",
            MetricKind::Vd1Read | MetricKind::Vd1Write => "vd1",
            MetricKind::Vd2Read | MetricKind::Vd2Write => "vd2",
        }
    }

    /// Parses a paper row label back into a metric.
    pub fn from_label(label: &str) -> Option<MetricKind> {
        MetricKind::ALL.into_iter().find(|m| m.label() == label)
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_metrics_in_table_order() {
        assert_eq!(MetricKind::ALL.len(), 12);
        assert_eq!(MetricKind::ALL[0].label(), "CPU_usedsec");
        assert_eq!(MetricKind::ALL[11].label(), "VD2_write");
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = MetricKind::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn label_round_trips() {
        for m in MetricKind::ALL {
            assert_eq!(MetricKind::from_label(m.label()), Some(m));
        }
        assert_eq!(MetricKind::from_label("bogus"), None);
    }

    #[test]
    fn devices_pair_metrics() {
        assert_eq!(MetricKind::Nic1Rx.device(), MetricKind::Nic1Tx.device());
        assert_ne!(MetricKind::Nic1Rx.device(), MetricKind::Nic2Rx.device());
        assert_eq!(MetricKind::Vd1Read.device(), "vd1");
    }

    #[test]
    fn vm_id_displays() {
        assert_eq!(VmId(3).to_string(), "VM3");
    }
}
