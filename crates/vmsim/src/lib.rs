//! VM resource-monitoring substrate: the paper's testbed, simulated.
//!
//! The paper evaluates the LARPredictor on `vmkusage` traces of five VMware ESX
//! virtual machines — data we do not have. This crate rebuilds the *pipeline*
//! around synthetic workloads with the same statistical character (see
//! DESIGN.md "Substitutions"):
//!
//! * [`metric`] — the twelve performance metrics of the paper's Tables 1–2
//!   (CPU used/ready, memory size/swap, two NICs rx/tx, two virtual disks
//!   read/write);
//! * [`signal`] — composable stochastic signal generators (diurnal sinusoids,
//!   AR noise, on–off bursts, Pareto spike trains, random walks, regime
//!   switches) from which workloads are assembled;
//! * [`workload`] — the VM1 grid-job model: 310 jobs over 7 days with the
//!   paper's 93.55% / 3.87% / 2.58% short/medium/long mix;
//! * [`profiles`] — the five VM personalities of §7 (grid head node, VNC
//!   proxy, WindowsXP calendar, web+list+wiki server, web server);
//! * [`monitor`] — the per-minute sampling agent (the VMM-side collector);
//! * [`rrd`] — the flat round-robin database with interval consolidation
//!   (1-minute samples, consolidated averages on read);
//! * [`tiered`] — the full multi-archive RRD (vmkusage layout: 1-minute ×
//!   2 h, 5-minute × 24 h, 30-minute × 7 days) with cascade consolidation
//!   on write and finest-available-archive reads;
//! * [`profiler`] — extraction by (vmID, metric, time window, interval) into
//!   [`timeseries::Series`];
//! * [`db`] — the prediction database keyed `[vmID, metric, timeStamp]`
//!   with the audit queries the Quality Assuror runs;
//! * [`traceset`] — one call that reproduces the paper's full 60-trace corpus
//!   (5 VMs × 12 metrics at the paper's durations and intervals);
//! * [`faults`] — deterministic fault injection (drops, gaps, NaNs, sentinels,
//!   stuck sensors, spikes, duplicates) for exercising the serving layer's
//!   fault tolerance;
//! * [`fleet`] — per-stream deterministic trace fan-out: seeds and workload
//!   generators derived purely from `(fleet_seed, stream_id)`, independent of
//!   shard layout, for fleet-scale serving experiments.
//!
//! Everything is deterministic per seed: `paper_traces(seed)` always yields
//! byte-identical series.
#![warn(missing_docs)]

pub mod db;
pub mod faults;
pub mod fleet;
pub(crate) mod lock;
pub mod metric;
pub mod monitor;
pub mod profiler;
pub mod profiles;
pub mod rrd;
pub mod signal;
pub mod tiered;
pub mod traceset;
pub mod workload;

pub use faults::{FaultConfig, FaultCounts, FaultInjector, FaultKind};
pub use fleet::{fleet_signal, fleet_trace, stream_seed};
pub use metric::{MetricKind, VmId};
pub use monitor::MonitorAgent;
pub use profiler::Profiler;
pub use profiles::{VmProfile, VmWorkload};
pub use rrd::RoundRobinDatabase;
pub use tiered::{ArchiveSpec, TieredDatabase};
pub use traceset::{paper_traces, TraceKey};

/// Errors from the monitoring substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum VmSimError {
    /// The requested (vm, metric) stream does not exist.
    UnknownStream(String),
    /// An invalid query (empty range, zero interval, range outside retention).
    InvalidQuery(String),
    /// Propagated series-construction failure.
    Series(String),
}

impl std::fmt::Display for VmSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmSimError::UnknownStream(m) => write!(f, "unknown stream: {m}"),
            VmSimError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            VmSimError::Series(m) => write!(f, "series failure: {m}"),
        }
    }
}

impl std::error::Error for VmSimError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, VmSimError>;
