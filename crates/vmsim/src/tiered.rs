//! Multi-archive round-robin storage — full `vmkusage`/RRDtool semantics.
//!
//! The flat [`crate::RoundRobinDatabase`] retains one resolution. Real RRD
//! deployments (including the paper's `vmkusage`) keep *several archives* of
//! the same stream at different consolidation intervals and retentions — for
//! example: per-minute samples for the last two hours, 5-minute averages for
//! a day, 30-minute averages for a week. Writes land in the finest archive
//! and cascade upward through consolidation accumulators; reads are served
//! from the finest archive that still retains the requested range.
//!
//! This is exactly the storage the paper's profiler reads: VM2–VM5 traces
//! come from the day archive at 5 minutes, the week-long VM1 trace from the
//! 30-minute archive.

use std::collections::{HashMap, VecDeque};

use crate::lock::RwLock;

use crate::metric::{MetricKind, VmId};
use crate::{Result, VmSimError};

/// One archive tier: consolidation interval and retention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveSpec {
    /// Consolidation interval in minutes (1 = raw samples).
    pub interval_minutes: u64,
    /// Number of consolidated rows retained.
    pub rows: usize,
}

impl ArchiveSpec {
    /// Retention of this archive in minutes.
    pub fn retention_minutes(&self) -> u64 {
        self.interval_minutes * self.rows as u64
    }
}

/// Per-stream storage for one tier.
#[derive(Debug, Default)]
struct TierStream {
    /// Consolidated index of the first retained row.
    first_row: u64,
    rows: VecDeque<f64>,
    /// Accumulator for the in-progress consolidation bucket.
    acc_sum: f64,
    acc_count: u64,
}

/// A multi-archive round-robin database.
pub struct TieredDatabase {
    specs: Vec<ArchiveSpec>,
    /// `tiers[t]` maps stream key -> storage for archive `t`.
    tiers: Vec<RwLock<HashMap<(VmId, MetricKind), TierStream>>>,
}

impl TieredDatabase {
    /// Creates a database with the given archive tiers.
    ///
    /// # Errors
    ///
    /// Returns [`VmSimError::InvalidQuery`] unless the specs are non-empty,
    /// strictly increasing in interval, start at some base interval that
    /// divides all coarser ones, and have positive rows.
    pub fn new(specs: Vec<ArchiveSpec>) -> Result<Self> {
        if specs.is_empty() {
            return Err(VmSimError::InvalidQuery("at least one archive tier required".into()));
        }
        for (i, s) in specs.iter().enumerate() {
            if s.interval_minutes == 0 || s.rows == 0 {
                return Err(VmSimError::InvalidQuery(format!(
                    "tier {i}: interval and rows must be positive"
                )));
            }
            if i > 0 {
                let prev = specs[i - 1].interval_minutes;
                if s.interval_minutes <= prev || !s.interval_minutes.is_multiple_of(prev) {
                    return Err(VmSimError::InvalidQuery(format!(
                        "tier {i}: interval {} must be a strict multiple of tier {}'s {}",
                        s.interval_minutes,
                        i - 1,
                        prev
                    )));
                }
            }
        }
        if specs[0].interval_minutes != 1 {
            return Err(VmSimError::InvalidQuery(
                "the finest archive must run at 1-minute resolution".into(),
            ));
        }
        let tiers = specs.iter().map(|_| RwLock::new(HashMap::new())).collect();
        Ok(Self { specs, tiers })
    }

    /// The `vmkusage` default layout: 1-minute samples for 2 hours,
    /// 5-minute averages for 24 hours, 30-minute averages for 7 days.
    pub fn vmkusage_layout() -> Self {
        Self::new(vec![
            ArchiveSpec { interval_minutes: 1, rows: 120 },
            ArchiveSpec { interval_minutes: 5, rows: 288 },
            ArchiveSpec { interval_minutes: 30, rows: 7 * 48 },
        ])
        .expect("static layout is valid")
    }

    /// The configured archive tiers.
    pub fn specs(&self) -> &[ArchiveSpec] {
        &self.specs
    }

    /// Records the per-minute sample for `minute`. Samples must arrive in
    /// strictly increasing minute order per stream, starting at 0 (the
    /// monitor agent guarantees both).
    pub fn record(&self, vm: VmId, metric: MetricKind, minute: u64, value: f64) {
        let key = (vm, metric);
        for (spec, tier) in self.specs.iter().zip(&self.tiers) {
            let mut streams = tier.write();
            let stream = streams.entry(key).or_default();
            stream.acc_sum += value;
            stream.acc_count += 1;
            if (minute + 1).is_multiple_of(spec.interval_minutes) {
                // Bucket complete: push its average.
                let avg = stream.acc_sum / stream.acc_count as f64;
                stream.acc_sum = 0.0;
                stream.acc_count = 0;
                stream.rows.push_back(avg);
                if stream.rows.len() > spec.rows {
                    stream.rows.pop_front();
                    stream.first_row += 1;
                }
            }
        }
    }

    /// Reads consolidated rows for `[start_minute, end_minute)` at
    /// `interval_minutes`, served from the finest archive that (a) has an
    /// interval dividing the request and (b) still retains the whole range.
    ///
    /// # Errors
    ///
    /// * [`VmSimError::UnknownStream`] if the stream does not exist;
    /// * [`VmSimError::InvalidQuery`] for a zero/misaligned interval or a
    ///   range no archive retains.
    pub fn query(
        &self,
        vm: VmId,
        metric: MetricKind,
        start_minute: u64,
        end_minute: u64,
        interval_minutes: u64,
    ) -> Result<Vec<f64>> {
        if interval_minutes == 0 || start_minute >= end_minute {
            return Err(VmSimError::InvalidQuery(format!(
                "invalid range [{start_minute}, {end_minute}) at interval {interval_minutes}"
            )));
        }
        if !(end_minute - start_minute).is_multiple_of(interval_minutes)
            || !start_minute.is_multiple_of(interval_minutes)
        {
            return Err(VmSimError::InvalidQuery(format!(
                "range [{start_minute}, {end_minute}) misaligned to interval {interval_minutes}"
            )));
        }
        let key = (vm, metric);
        let mut stream_exists = false;
        for (spec, tier) in self.specs.iter().zip(&self.tiers) {
            if !interval_minutes.is_multiple_of(spec.interval_minutes) {
                continue;
            }
            let streams = tier.read();
            let Some(stream) = streams.get(&key) else { continue };
            stream_exists = true;
            // Row-range the request needs in this archive.
            let first_needed = start_minute / spec.interval_minutes;
            let last_needed = end_minute / spec.interval_minutes; // exclusive
            let retained_end = stream.first_row + stream.rows.len() as u64;
            if first_needed < stream.first_row || last_needed > retained_end {
                continue; // evicted here; a coarser archive may still have it
            }
            let group = (interval_minutes / spec.interval_minutes) as usize;
            let offset = (first_needed - stream.first_row) as usize;
            let n = (last_needed - first_needed) as usize;
            let out = stream
                .rows
                .iter()
                .skip(offset)
                .take(n)
                .collect::<Vec<_>>()
                .chunks(group)
                .map(|c| c.iter().copied().sum::<f64>() / c.len() as f64)
                .collect();
            return Ok(out);
        }
        if stream_exists {
            Err(VmSimError::InvalidQuery(format!(
                "no archive retains [{start_minute}, {end_minute}) at interval {interval_minutes}"
            )))
        } else {
            Err(VmSimError::UnknownStream(format!("{vm}/{metric}")))
        }
    }

    /// The retained row range `[first, last]` (in consolidated indexes) of a
    /// stream in tier `tier`, or `None` if absent/empty.
    pub fn tier_range(&self, vm: VmId, metric: MetricKind, tier: usize) -> Option<(u64, u64)> {
        let streams = self.tiers.get(tier)?.read();
        let s = streams.get(&(vm, metric))?;
        if s.rows.is_empty() {
            return None;
        }
        Some((s.first_row, s.first_row + s.rows.len() as u64 - 1))
    }
}

impl std::fmt::Debug for TieredDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredDatabase").field("specs", &self.specs).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VM: VmId = VmId(1);
    const M: MetricKind = MetricKind::CpuUsedSec;

    fn ramp(db: &TieredDatabase, minutes: u64) {
        for minute in 0..minutes {
            db.record(VM, M, minute, minute as f64);
        }
    }

    #[test]
    fn layout_validation() {
        assert!(TieredDatabase::new(vec![]).is_err());
        // Finest tier must be 1 minute.
        assert!(TieredDatabase::new(vec![ArchiveSpec { interval_minutes: 5, rows: 10 }]).is_err());
        // Intervals must be strict multiples.
        assert!(TieredDatabase::new(vec![
            ArchiveSpec { interval_minutes: 1, rows: 10 },
            ArchiveSpec { interval_minutes: 7, rows: 10 },
            ArchiveSpec { interval_minutes: 10, rows: 10 },
        ])
        .is_err());
        assert!(TieredDatabase::new(vec![
            ArchiveSpec { interval_minutes: 1, rows: 10 },
            ArchiveSpec { interval_minutes: 5, rows: 0 },
        ])
        .is_err());
        TieredDatabase::vmkusage_layout();
    }

    #[test]
    fn fine_reads_come_from_the_raw_archive() {
        let db = TieredDatabase::vmkusage_layout();
        ramp(&db, 60);
        let out = db.query(VM, M, 10, 20, 1).unwrap();
        assert_eq!(out, (10..20).map(|m| m as f64).collect::<Vec<_>>());
    }

    #[test]
    fn consolidated_reads_average_correctly() {
        let db = TieredDatabase::vmkusage_layout();
        ramp(&db, 60);
        let out = db.query(VM, M, 0, 60, 5).unwrap();
        assert_eq!(out.len(), 12);
        assert_eq!(out[0], 2.0); // mean of 0..5
        assert_eq!(out[11], 57.0); // mean of 55..60
        let coarse = db.query(VM, M, 0, 60, 30).unwrap();
        assert_eq!(coarse, vec![14.5, 44.5]);
    }

    #[test]
    fn evicted_fine_data_is_served_by_coarser_archives() {
        // 10 hours of data: the 1-minute archive keeps only 2 hours, but the
        // 5-minute archive still serves the old range.
        let db = TieredDatabase::vmkusage_layout();
        ramp(&db, 600);
        assert!(db.query(VM, M, 0, 60, 1).is_err());
        let old = db.query(VM, M, 0, 60, 5).unwrap();
        assert_eq!(old.len(), 12);
        assert_eq!(old[0], 2.0);
        // And recent data is still available at full resolution.
        let recent = db.query(VM, M, 590, 600, 1).unwrap();
        assert_eq!(recent[0], 590.0);
    }

    #[test]
    fn week_archive_outlives_the_day_archive() {
        let db = TieredDatabase::vmkusage_layout();
        ramp(&db, 3 * 1440); // three days
                             // Day-one data: evicted from raw and 5-minute archives, alive at 30.
        assert!(db.query(VM, M, 0, 60, 5).is_err());
        let day1 = db.query(VM, M, 0, 60, 30).unwrap();
        assert_eq!(day1.len(), 2);
        assert_eq!(day1[0], 14.5);
        // Full three days at 30 minutes.
        let all = db.query(VM, M, 0, 3 * 1440, 30).unwrap();
        assert_eq!(all.len(), 144);
    }

    #[test]
    fn tier_ranges_track_retention() {
        let db = TieredDatabase::vmkusage_layout();
        ramp(&db, 300);
        let (f0, l0) = db.tier_range(VM, M, 0).unwrap();
        assert_eq!((f0, l0), (180, 299)); // 120 retained raw rows
        let (f1, l1) = db.tier_range(VM, M, 1).unwrap();
        assert_eq!((f1, l1), (0, 59)); // 300/5 = 60 rows, all retained
        assert_eq!(db.tier_range(VM, M, 9), None);
    }

    #[test]
    fn query_validation_and_unknown_streams() {
        let db = TieredDatabase::vmkusage_layout();
        ramp(&db, 60);
        assert!(matches!(db.query(VmId(9), M, 0, 10, 5), Err(VmSimError::UnknownStream(_))));
        assert!(db.query(VM, M, 0, 10, 0).is_err());
        assert!(db.query(VM, M, 10, 10, 5).is_err());
        assert!(db.query(VM, M, 3, 13, 5).is_err()); // misaligned start
        assert!(db.query(VM, M, 0, 7, 5).is_err()); // misaligned span
                                                    // Interval 7 is servable from the raw archive while retained...
        assert_eq!(db.query(VM, M, 0, 14, 7).unwrap().len(), 2);
        // ...but once the raw rows are evicted, no coarser archive divides 7.
        let old = TieredDatabase::vmkusage_layout();
        for minute in 0..600 {
            old.record(VM, M, minute, minute as f64);
        }
        assert!(old.query(VM, M, 0, 14, 7).is_err());
    }

    #[test]
    fn partial_bucket_is_not_visible_until_complete() {
        let db = TieredDatabase::vmkusage_layout();
        ramp(&db, 7); // 7 minutes: one full 5-minute bucket, 2 minutes pending
        let out = db.query(VM, M, 0, 5, 5).unwrap();
        assert_eq!(out, vec![2.0]);
        assert!(db.query(VM, M, 0, 10, 5).is_err());
    }
}
