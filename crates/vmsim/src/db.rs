//! The prediction database.
//!
//! The paper's prototype stores "the retrieved performance data with the
//! corresponding time stamps … in the prediction database", keyed by
//! `[vmID, deviceID, timeStamp, metricName]`, and the Quality Assuror "audits
//! the prediction performance by calculating the average MSE of historical
//! prediction data stored in the prediction DB".
//!
//! [`PredictionDatabase`] stores forecast/observation pairs under the same
//! composite key and serves the QA's audit query.

use std::collections::BTreeMap;

use crate::lock::RwLock;

use crate::metric::{MetricKind, VmId};

/// One stored prediction, possibly not yet reconciled with its observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionRecord {
    /// Forecast value.
    pub predicted: f64,
    /// Observed value once the timestamp passed (`None` while outstanding).
    pub observed: Option<f64>,
    /// Pool index of the model that produced the forecast.
    pub model: usize,
}

type Key = (VmId, MetricKind, u64);

/// A concurrent store of predictions keyed `[vmID, metric, timestamp_secs]`.
#[derive(Debug, Default)]
pub struct PredictionDatabase {
    records: RwLock<BTreeMap<Key, PredictionRecord>>,
}

impl PredictionDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a forecast for `(vm, metric)` at `timestamp_secs`, replacing any
    /// previous forecast for the same key.
    pub fn store_prediction(
        &self,
        vm: VmId,
        metric: MetricKind,
        timestamp_secs: u64,
        predicted: f64,
        model: usize,
    ) {
        self.records.write().insert(
            (vm, metric, timestamp_secs),
            PredictionRecord { predicted, observed: None, model },
        );
    }

    /// Reconciles a stored forecast with the observed value. Returns `false`
    /// if no forecast exists for the key.
    pub fn record_observation(
        &self,
        vm: VmId,
        metric: MetricKind,
        timestamp_secs: u64,
        observed: f64,
    ) -> bool {
        let mut records = self.records.write();
        match records.get_mut(&(vm, metric, timestamp_secs)) {
            Some(r) => {
                r.observed = Some(observed);
                true
            }
            None => false,
        }
    }

    /// Fetches one record.
    pub fn get(
        &self,
        vm: VmId,
        metric: MetricKind,
        timestamp_secs: u64,
    ) -> Option<PredictionRecord> {
        self.records.read().get(&(vm, metric, timestamp_secs)).copied()
    }

    /// Number of stored records (all streams).
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// The QA audit query: mean squared error of the most recent `window`
    /// *reconciled* records of a stream, or `None` if none exist.
    pub fn audit_mse(&self, vm: VmId, metric: MetricKind, window: usize) -> Option<f64> {
        let records = self.records.read();
        let lo = (vm, metric, 0u64);
        let hi = (vm, metric, u64::MAX);
        let mut errors: Vec<f64> = records
            .range(lo..=hi)
            .rev()
            .filter_map(|(_, r)| r.observed.map(|o| (r.predicted - o).powi(2)))
            .take(window)
            .collect();
        if errors.is_empty() {
            return None;
        }
        let n = errors.len() as f64;
        Some(errors.drain(..).sum::<f64>() / n)
    }

    /// Per-model usage counts over a stream — which pool members the selector
    /// actually exercised (diagnostics for the selection figures).
    pub fn model_usage(&self, vm: VmId, metric: MetricKind) -> BTreeMap<usize, usize> {
        let records = self.records.read();
        let lo = (vm, metric, 0u64);
        let hi = (vm, metric, u64::MAX);
        let mut usage = BTreeMap::new();
        for (_, r) in records.range(lo..=hi) {
            *usage.entry(r.model).or_insert(0) += 1;
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VM: VmId = VmId(1);
    const M: MetricKind = MetricKind::Nic1Rx;

    #[test]
    fn store_and_reconcile() {
        let db = PredictionDatabase::new();
        assert!(db.is_empty());
        db.store_prediction(VM, M, 300, 5.0, 1);
        assert_eq!(db.len(), 1);
        let r = db.get(VM, M, 300).unwrap();
        assert_eq!(r.predicted, 5.0);
        assert_eq!(r.observed, None);
        assert!(db.record_observation(VM, M, 300, 6.0));
        assert_eq!(db.get(VM, M, 300).unwrap().observed, Some(6.0));
        assert!(!db.record_observation(VM, M, 999, 1.0));
    }

    #[test]
    fn audit_uses_only_reconciled_recent_records() {
        let db = PredictionDatabase::new();
        // Three reconciled with errors 1, 2, 3 (squared 1, 4, 9) and one
        // outstanding.
        for (i, err) in [1.0, 2.0, 3.0].iter().enumerate() {
            let ts = (i as u64 + 1) * 300;
            db.store_prediction(VM, M, ts, 0.0, 0);
            db.record_observation(VM, M, ts, *err);
        }
        db.store_prediction(VM, M, 4 * 300, 0.0, 0);
        // Window 2: the two most recent reconciled records (errors 2, 3).
        let mse = db.audit_mse(VM, M, 2).unwrap();
        assert!((mse - (4.0 + 9.0) / 2.0).abs() < 1e-12);
        // Window larger than history: all three.
        let mse_all = db.audit_mse(VM, M, 10).unwrap();
        assert!((mse_all - (1.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn audit_none_without_observations() {
        let db = PredictionDatabase::new();
        assert_eq!(db.audit_mse(VM, M, 5), None);
        db.store_prediction(VM, M, 300, 1.0, 0);
        assert_eq!(db.audit_mse(VM, M, 5), None);
    }

    #[test]
    fn streams_do_not_interfere() {
        let db = PredictionDatabase::new();
        db.store_prediction(VM, M, 300, 0.0, 0);
        db.record_observation(VM, M, 300, 1.0);
        db.store_prediction(VmId(2), M, 300, 0.0, 1);
        db.record_observation(VmId(2), M, 300, 10.0);
        assert_eq!(db.audit_mse(VM, M, 10).unwrap(), 1.0);
        assert_eq!(db.audit_mse(VmId(2), M, 10).unwrap(), 100.0);
    }

    #[test]
    fn model_usage_counts() {
        let db = PredictionDatabase::new();
        for (ts, model) in [(300, 0), (600, 1), (900, 1), (1200, 2)] {
            db.store_prediction(VM, M, ts, 0.0, model);
        }
        let usage = db.model_usage(VM, M);
        assert_eq!(usage.get(&0), Some(&1));
        assert_eq!(usage.get(&1), Some(&2));
        assert_eq!(usage.get(&2), Some(&1));
    }
}
