//! Per-stream deterministic trace fan-out for fleet-scale serving.
//!
//! A fleet serving engine runs thousands of independent prediction streams.
//! Each stream needs its own reproducible workload, and the reproduction must
//! not depend on *how the fleet is deployed*: re-sharding from 4 to 8 workers,
//! or registering streams in a different order, must not change any stream's
//! data. [`stream_seed`] therefore derives every per-stream RNG seed purely
//! from `(fleet_seed, stream_id)` — one SplitMix64 mixing pass, no positional
//! state — and [`fleet_signal`]/[`fleet_trace`] build a cheap per-stream
//! workload generator on top of it.
//!
//! The generated workloads reuse the [`crate::signal`] primitives with
//! per-stream variation (level, diurnal amplitude/phase, AR noise colour,
//! spike rate), so a fleet is statistically heterogeneous while remaining
//! byte-deterministic per `(fleet_seed, stream_id)`.

use simrng::{Rng64, SplitMix64};

use crate::signal::{positive, ArNoise, Constant, Diurnal, Signal, Spikes};

/// Derives the RNG seed for one stream of a fleet.
///
/// Depends only on `(fleet_seed, stream_id)`: the result is identical no
/// matter how many shards the fleet runs, which shard the stream lands on, or
/// in what order streams were registered. Distinct ids yield well-separated
/// seeds (SplitMix64's output mixing), so per-stream generators are
/// statistically independent.
pub fn stream_seed(fleet_seed: u64, stream_id: u64) -> u64 {
    // Two dependent draws: the first whitens the fleet seed, the second mixes
    // the stream id in through the full avalanche rather than a plain XOR
    // (ids are typically small consecutive integers).
    let mut mix = SplitMix64::new(fleet_seed);
    let whitened = mix.next_u64();
    SplitMix64::new(whitened ^ stream_id).next_u64()
}

/// Builds the deterministic workload signal for one stream of a fleet.
///
/// The signal is a positive-clamped sum of a per-stream base level, a diurnal
/// cycle, AR(1) noise and a sparse spike train, with every parameter drawn
/// from [`stream_seed`] — heterogeneous across the fleet, reproducible per
/// `(fleet_seed, stream_id)`.
pub fn fleet_signal(fleet_seed: u64, stream_id: u64) -> Box<dyn Signal> {
    let seed = stream_seed(fleet_seed, stream_id);
    let mut rng = SplitMix64::new(seed);
    let unit = |r: &mut SplitMix64| (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64;

    let level = 20.0 + 180.0 * unit(&mut rng);
    let amplitude = level * (0.1 + 0.4 * unit(&mut rng));
    let period_minutes = if rng.next_u64().is_multiple_of(4) { 10080.0 } else { 1440.0 };
    let phase_minutes = 1440.0 * unit(&mut rng);
    let phi = 0.55 + 0.4 * unit(&mut rng);
    let sigma = level * (0.02 + 0.08 * unit(&mut rng));
    let spike_rate = 0.01 * unit(&mut rng);
    let noise_seed = rng.next_u64();
    let spike_seed = rng.next_u64();

    positive(
        vec![
            Box::new(Constant(level)),
            Box::new(Diurnal { amplitude, period_minutes, phase_minutes }),
            Box::new(ArNoise::new(phi, sigma, noise_seed)),
            Box::new(Spikes::new(spike_rate, level * 0.5, 1.5, spike_seed)),
        ],
        10.0 * level,
    )
}

/// Materializes `len` minutes of one stream's workload (minute 0 onward).
///
/// Equivalent to driving [`fleet_signal`] directly; use the signal form for
/// streaming serving and this form for tests and benches.
pub fn fleet_trace(fleet_seed: u64, stream_id: u64, len: usize) -> Vec<f64> {
    let mut signal = fleet_signal(fleet_seed, stream_id);
    (0..len as u64).map(|m| signal.sample(m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seed_is_deterministic_and_positionless() {
        for id in [0u64, 1, 2, 63, 1_000_003] {
            assert_eq!(stream_seed(2007, id), stream_seed(2007, id));
        }
        // Different fleets and different streams disagree.
        assert_ne!(stream_seed(1, 5), stream_seed(2, 5));
        assert_ne!(stream_seed(1, 5), stream_seed(1, 6));
    }

    #[test]
    fn consecutive_ids_get_well_separated_seeds() {
        // Small consecutive ids must not produce correlated seeds: check that
        // all pairwise low bits differ across a run of ids.
        let seeds: Vec<u64> = (0..256).map(|id| stream_seed(42, id)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision in 256 stream seeds");
        // Low byte should look uniform-ish: every value class non-degenerate.
        let low_zero = seeds.iter().filter(|s| *s & 0xFF == 0).count();
        assert!(low_zero < 8, "{low_zero} of 256 seeds share a zero low byte");
    }

    #[test]
    fn traces_are_deterministic_and_heterogeneous() {
        let a = fleet_trace(7, 3, 200);
        let b = fleet_trace(7, 3, 200);
        assert_eq!(a, b);
        let c = fleet_trace(7, 4, 200);
        assert_ne!(a, c);
        for &v in &a {
            assert!(v.is_finite() && v >= 0.0);
        }
        // The workload actually varies (not a constant line).
        assert!(timeseries::stats::variance(&a) > 1e-6);
    }

    #[test]
    fn trace_matches_streamed_signal() {
        let trace = fleet_trace(11, 9, 100);
        let mut signal = fleet_signal(11, 9);
        for (m, &v) in trace.iter().enumerate() {
            assert_eq!(signal.sample(m as u64), v);
        }
    }
}
