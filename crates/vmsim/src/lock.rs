//! Thin `std::sync::RwLock` wrapper with the ergonomic, non-poisoning API the
//! database modules use: `.read()`/`.write()` return guards directly. A
//! poisoned lock (a writer panicked) is recovered rather than propagated —
//! the databases hold plain sample buffers, which stay structurally valid
//! even if a panicking writer left a partial logical update behind.

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock whose guards are acquired infallibly.
#[derive(Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}
