//! The paper's full trace corpus, reproduced in one call.
//!
//! [`paper_traces`] runs the whole pipeline — profile construction → monitor
//! agent sampling every minute → RRD consolidation → profiler extraction —
//! for all five VMs and returns the 60 `(key, series)` pairs the paper
//! evaluates: VM1 over 7 days at 30-minute intervals (336 points), VM2–VM5
//! over 24 hours at 5-minute intervals (288 points each).

use std::sync::Arc;

use timeseries::Series;

use crate::metric::MetricKind;
use crate::monitor::MonitorAgent;
use crate::profiler::Profiler;
use crate::profiles::VmProfile;
use crate::rrd::RoundRobinDatabase;

/// Identifies one trace of the corpus.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Which VM the trace belongs to.
    pub profile: VmProfile,
    /// Which metric.
    pub metric: MetricKind,
}

impl TraceKey {
    /// Human-readable identifier, e.g. `"VM2/NIC1_received"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.profile.vm_id(), self.metric)
    }
}

impl std::fmt::Display for TraceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Generates the paper's 60-trace corpus deterministically from `seed`.
///
/// Traces appear in (VM, metric) order: VM1's twelve metrics first, then
/// VM2's, and so on — matching the row order of the paper's tables.
pub fn paper_traces(seed: u64) -> Vec<(TraceKey, Series)> {
    let mut out = Vec::with_capacity(60);
    for profile in VmProfile::ALL {
        // One monitor/RRD per VM keeps retention small and sampling exact.
        let horizon = profile.horizon_minutes();
        let rrd = Arc::new(RoundRobinDatabase::new(horizon as usize + 1));
        let mut agent = MonitorAgent::new(vec![profile.build(seed)], rrd.clone());
        agent.run(horizon);
        let profiler = Profiler::new(rrd);
        let interval_minutes = profile.profile_interval_secs() / 60;
        for metric in MetricKind::ALL {
            let series = profiler
                .extract(profile.vm_id(), metric, 0, horizon, interval_minutes)
                .expect("monitor populated the full horizon");
            out.push((TraceKey { profile, metric }, series));
        }
    }
    out
}

/// Generates only one VM's twelve traces (cheaper for focused experiments).
pub fn vm_traces(profile: VmProfile, seed: u64) -> Vec<(TraceKey, Series)> {
    let horizon = profile.horizon_minutes();
    let rrd = Arc::new(RoundRobinDatabase::new(horizon as usize + 1));
    let mut agent = MonitorAgent::new(vec![profile.build(seed)], rrd.clone());
    agent.run(horizon);
    let profiler = Profiler::new(rrd);
    let interval_minutes = profile.profile_interval_secs() / 60;
    MetricKind::ALL
        .into_iter()
        .map(|metric| {
            let series = profiler
                .extract(profile.vm_id(), metric, 0, horizon, interval_minutes)
                .expect("monitor populated the full horizon");
            (TraceKey { profile, metric }, series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_sixty_traces_with_paper_geometry() {
        let traces = paper_traces(1);
        assert_eq!(traces.len(), 60);
        for (key, series) in &traces {
            match key.profile {
                VmProfile::Vm1 => {
                    assert_eq!(series.len(), 336, "{key}"); // 7d / 30min
                    assert_eq!(series.interval_secs(), 1800);
                }
                _ => {
                    assert_eq!(series.len(), 288, "{key}"); // 24h / 5min
                    assert_eq!(series.interval_secs(), 300);
                }
            }
        }
    }

    #[test]
    fn corpus_order_matches_table_rows() {
        let traces = paper_traces(1);
        assert_eq!(traces[0].0.label(), "VM1/CPU_usedsec");
        assert_eq!(traces[11].0.label(), "VM1/VD2_write");
        assert_eq!(traces[12].0.label(), "VM2/CPU_usedsec");
        assert_eq!(traces[59].0.label(), "VM5/VD2_write");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = paper_traces(42);
        let b = paper_traces(42);
        for ((ka, sa), (kb, sb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = paper_traces(1);
        let b = paper_traces(2);
        let any_diff = a.iter().zip(&b).any(|((_, sa), (_, sb))| sa != sb);
        assert!(any_diff);
    }

    #[test]
    fn vm_traces_matches_corpus_slice() {
        let corpus = paper_traces(7);
        let vm2 = vm_traces(VmProfile::Vm2, 7);
        assert_eq!(vm2.len(), 12);
        for (i, (key, series)) in vm2.iter().enumerate() {
            assert_eq!(key, &corpus[12 + i].0);
            assert_eq!(series, &corpus[12 + i].1);
        }
    }

    #[test]
    fn dead_streams_are_flat_and_live_streams_vary() {
        let traces = paper_traces(3);
        let find = |label: &str| {
            traces.iter().find(|(k, _)| k.label() == label).map(|(_, s)| s.clone()).unwrap()
        };
        let dead = find("VM3/NIC2_received");
        assert!(timeseries::stats::variance(dead.values()) < 1e-12);
        let live = find("VM2/NIC1_received");
        assert!(timeseries::stats::variance(live.values()) > 1.0);
    }
}
