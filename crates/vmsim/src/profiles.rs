//! The five VM personalities of the paper's §7 evaluation.
//!
//! Each profile assembles twelve metric signals whose *shape* mirrors the
//! paper's description of the real machines:
//!
//! * **VM1** — web server + Globus GRAM/MDS + GridFTP + PBS head node,
//!   traced for 7 days; drives the 310-job mix of [`crate::workload`];
//! * **VM2** — Linux VNC port-forwarding proxy: smooth, autocorrelated CPU
//!   (the paper's Fig. 4 trace is its 15-minute load average) and bursty
//!   packet trains (Fig. 5);
//! * **VM3** — WindowsXP calendar: mostly idle with periodic sync spikes;
//!   its NIC2 and first virtual disk are inactive (the traces the paper's
//!   Table 3 reports as `NaN`);
//! * **VM4** — web + list + wiki server: strong diurnal cycle with
//!   correlated NIC and disk activity;
//! * **VM5** — plain web server; NIC1 unused (traffic rides NIC2),
//!   matching more `NaN` rows of Table 3.
//!
//! # Metric archetypes
//!
//! Each metric is an instance of one of four archetypes, calibrated (see the
//! `diag_recipe` binary in `larp-bench`) so the corpus reproduces the paper's
//! normalized-MSE landscape:
//!
//! * **switchy** — a quiet *step-hold* regime (exactly flat between level
//!   changes; persistence is exactly right) alternating with a busy elevated
//!   noisy regime (averaging wins). The regime is identifiable from the
//!   prediction window, which is what the k-NN selector learns;
//! * **smooth** — autocorrelated AR noise, optionally with a diurnal cycle:
//!   the AR model's home turf;
//! * **bursty** — ON–OFF heavy-tailed activity over a noise floor: nothing
//!   predicts the transitions, averaging wins inside noisy stretches;
//! * **steppy** — a pure step-hold level with rare spikes (memory-like):
//!   LAST's home turf.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::metric::{MetricKind, VmId};
use crate::signal::{
    positive, ArNoise, Constant, Diurnal, DriftingAr, OnOffBurst, RegimeSwitch, Signal, Spikes,
    StepLevel, Sum,
};
use crate::workload::{JobLoadSignal, JobSchedule, LoadDimension};

/// Minutes in a day / a week.
const DAY: u64 = 24 * 60;
const WEEK: u64 = 7 * DAY;

/// The five paper VMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VmProfile {
    /// Grid head node (web, GRAM/MDS, GridFTP, PBS), 7-day horizon.
    Vm1,
    /// VNC port-forwarding proxy, 24-hour horizon.
    Vm2,
    /// WindowsXP calendar host, 24-hour horizon.
    Vm3,
    /// Web + list + wiki server, 24-hour horizon.
    Vm4,
    /// Web server, 24-hour horizon.
    Vm5,
}

impl VmProfile {
    /// All five profiles in paper order.
    pub const ALL: [VmProfile; 5] =
        [VmProfile::Vm1, VmProfile::Vm2, VmProfile::Vm3, VmProfile::Vm4, VmProfile::Vm5];

    /// The paper's VM id.
    pub fn vm_id(self) -> VmId {
        match self {
            VmProfile::Vm1 => VmId(1),
            VmProfile::Vm2 => VmId(2),
            VmProfile::Vm3 => VmId(3),
            VmProfile::Vm4 => VmId(4),
            VmProfile::Vm5 => VmId(5),
        }
    }

    /// Simulated horizon in minutes (paper: VM1 7 days, others 24 hours).
    pub fn horizon_minutes(self) -> u64 {
        match self {
            VmProfile::Vm1 => WEEK,
            _ => DAY,
        }
    }

    /// The paper's profiling interval for this VM, in seconds
    /// (VM1: 30 minutes; others: 5 minutes).
    pub fn profile_interval_secs(self) -> u64 {
        match self {
            VmProfile::Vm1 => 30 * 60,
            _ => 5 * 60,
        }
    }

    /// The paper's prediction window `m` for this VM's traces
    /// (Table 2: order 16 for VM1; 5 elsewhere).
    pub fn prediction_window(self) -> usize {
        match self {
            VmProfile::Vm1 => 16,
            _ => 5,
        }
    }

    /// The paper's description of the hosted services.
    pub fn description(self) -> &'static str {
        match self {
            VmProfile::Vm1 => "web server, Globus GRAM/MDS + GridFTP, PBS head node",
            VmProfile::Vm2 => "Linux port-forwarding proxy for VNC sessions",
            VmProfile::Vm3 => "WindowsXP-based calendar",
            VmProfile::Vm4 => "web server, list server, and wiki server",
            VmProfile::Vm5 => "web server",
        }
    }

    /// Builds the deterministic workload for this profile.
    pub fn build(self, seed: u64) -> VmWorkload {
        // Derive per-metric seeds from (vm, metric, master seed) so profiles
        // are independent and stable under reordering.
        let base = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(self.vm_id().0 as u64);
        let s = move |i: u64| base.wrapping_add(i.wrapping_mul(0x2545F4914F6CDD1D));
        let sample = (self.profile_interval_secs() / 60) as f64;

        let signals = match self {
            VmProfile::Vm1 => vm1_signals(s, sample),
            VmProfile::Vm2 => vm2_signals(s, sample),
            VmProfile::Vm3 => vm3_signals(s, sample),
            VmProfile::Vm4 => vm4_signals(s, sample),
            VmProfile::Vm5 => vm5_signals(s, sample),
        };
        VmWorkload { profile: self, signals }
    }
}

/// A fully assembled VM workload: one signal per metric.
pub struct VmWorkload {
    profile: VmProfile,
    signals: BTreeMap<MetricKind, Box<dyn Signal>>,
}

impl VmWorkload {
    /// The profile this workload implements.
    pub fn profile(&self) -> VmProfile {
        self.profile
    }

    /// The VM id.
    pub fn vm_id(&self) -> VmId {
        self.profile.vm_id()
    }

    /// Samples every metric for `minute`, in [`MetricKind::ALL`] order.
    pub fn sample_all(&mut self, minute: u64) -> Vec<(MetricKind, f64)> {
        MetricKind::ALL
            .into_iter()
            .map(|m| {
                let v = self
                    .signals
                    .get_mut(&m)
                    .expect("every profile defines all 12 metrics")
                    .sample(minute);
                (m, v)
            })
            .collect()
    }
}

fn boxed(s: impl Signal + 'static) -> Box<dyn Signal> {
    Box::new(s)
}

// ---------------------------------------------------------------------------
// Archetype constructors (calibrated by larp-bench's diag_recipe binary).
// ---------------------------------------------------------------------------

/// "switchy": quiet step-hold regime vs busy noisy regime (see module docs).
///
/// `scale` sets the amplitude, `sample` the consolidation interval in
/// minutes. Regime dwell defaults to 48 samples and quiet level holds to ~12
/// samples, the values at which the diag_recipe calibration showed the
/// LARPredictor matching the best single model while NWS lags.
fn switchy(
    base: f64,
    scale: f64,
    sample: f64,
    s0: u64,
    s1: u64,
    s2: u64,
    hi: f64,
) -> Box<dyn Signal> {
    let dwell = 48.0 * sample;
    positive(
        vec![
            boxed(Constant(base)),
            boxed(RegimeSwitch::with_drift(
                vec![
                    boxed(StepLevel::new(
                        0.0,
                        0.7 * scale,
                        12.0 * sample,
                        -1.5 * scale,
                        1.5 * scale,
                        s0,
                    )),
                    boxed(Sum(vec![
                        boxed(Constant(2.5 * scale)),
                        // Alternates sign at the consolidated rate
                        // (consolidated amplitude = 2/π of the raw one):
                        // punishes persistence on every busy step.
                        boxed(Diurnal {
                            amplitude: 1.9 * scale,
                            period_minutes: 2.0 * sample,
                            phase_minutes: 0.0,
                        }),
                        boxed(ArNoise::new(0.0, 0.65 * scale * sample.sqrt(), s1)),
                    ])),
                ],
                dwell,
                // Drift period ~260 samples: for the 288-sample short traces
                // and the 336-sample VM1 trace alike, the two halves of any
                // 50/50 split see materially different regime mixes.
                260.0 * sample,
                s2,
            )),
        ],
        hi,
    )
}

/// "smooth": autocorrelated noise around a base level, optional diurnal.
fn smooth(
    base: f64,
    sigma: f64,
    diurnal_amplitude: f64,
    phase: f64,
    s0: u64,
    hi: f64,
) -> Box<dyn Signal> {
    let mut parts: Vec<Box<dyn Signal>> = vec![
        boxed(Constant(base)),
        // The *dynamics drift*: real host-load series do not follow one
        // fixed linear process, so the per-fold Yule-Walker AR fit is a
        // stale compromise on the test half. The coefficient wanders
        // between strongly autocorrelated (persistence-friendly) and
        // near-white (averaging-friendly) over a few hours.
        boxed(DriftingAr::new(0.2, 0.97, sigma, 0.02, s0)),
        // White ripple keeps the consolidated lag-1 correlation moderate
        // (the paper's traces live near normalized MSE ~1 for LAST).
        boxed(ArNoise::new(0.0, 0.8 * sigma, s0.wrapping_add(7919))),
    ];
    if diurnal_amplitude > 0.0 {
        parts.push(boxed(Diurnal {
            amplitude: diurnal_amplitude,
            period_minutes: DAY as f64,
            phase_minutes: phase,
        }));
    }
    positive(parts, hi)
}

/// "bursty": heavy-tailed ON–OFF activity over a noisy floor.
#[allow(clippy::too_many_arguments)] // positional recipe constructor
fn bursty(
    floor: f64,
    mean_on: f64,
    mean_off: f64,
    amp: f64,
    noise: f64,
    s0: u64,
    s1: u64,
    hi: f64,
) -> Box<dyn Signal> {
    // ON levels carry multiplicative jitter sized so the consolidated busy
    // samples have deviation ~0.45x the level: averaging wins while active,
    // persistence is exact while idle. The idle floor carries only a tiny
    // white ripple (a few percent of the burst amplitude): idle windows are
    // near-flat — every model is near-exact there, so selection mistakes on
    // idle windows are free, while the elevated noisy ON windows are
    // unambiguous in the k-NN feature space.
    let _ = noise;
    positive(
        vec![
            boxed(Constant(floor)),
            boxed(OnOffBurst::with_jitter(mean_on, mean_off, amp, 2.0, 1.0, s0)),
            boxed(ArNoise::new(0.0, 0.02 * amp, s1)),
        ],
        hi,
    )
}

/// "steppy": memory-like pure step-hold level plus rare spikes.
#[allow(clippy::too_many_arguments)] // positional recipe constructor
fn steppy(
    start: f64,
    step: f64,
    mean_dwell: f64,
    lo: f64,
    hi: f64,
    spike_rate: f64,
    s0: u64,
    s1: u64,
) -> Box<dyn Signal> {
    positive(
        vec![
            boxed(StepLevel::new(start, step, mean_dwell, lo, hi, s0)),
            boxed(Spikes::new(spike_rate, step * 0.5, 2.5, s1)),
        ],
        hi * 2.0,
    )
}

/// A dead device: constant zero (a paper `NaN` row).
fn dead() -> Box<dyn Signal> {
    boxed(Constant(0.0))
}

// ---------------------------------------------------------------------------
// The five profiles.
// ---------------------------------------------------------------------------

/// VM1: grid head node over a week (30-minute consolidation); CPU and disk
/// are driven by the 310-job schedule.
fn vm1_signals(s: impl Fn(u64) -> u64, sample: f64) -> BTreeMap<MetricKind, Box<dyn Signal>> {
    let schedule = Arc::new(JobSchedule::paper_mix(310, WEEK, s(0)));
    let mut map: BTreeMap<MetricKind, Box<dyn Signal>> = BTreeMap::new();
    map.insert(
        MetricKind::CpuUsedSec,
        positive(
            vec![
                boxed(Scale(JobLoadSignal::new(schedule.clone(), LoadDimension::Cpu), 20.0)),
                boxed(Constant(5.0)),
                boxed(ArNoise::new(0.95, 0.8, s(1))),
            ],
            60.0,
        ),
    );
    map.insert(MetricKind::CpuReady, switchy(4.0, 1.5, sample, s(2), s(3), s(4), 100.0));
    map.insert(
        MetricKind::MemSize,
        steppy(512.0, 48.0, 18.0 * sample, 256.0, 1024.0, 0.002, s(5), s(6)),
    );
    map.insert(
        MetricKind::MemSwapped,
        bursty(2.0, 10.0 * sample, 40.0 * sample, 20.0, 1.0, s(7), s(8), 512.0),
    );
    map.insert(MetricKind::Nic1Rx, switchy(50.0, 18.0, sample, s(9), s(10), s(11), 2000.0));
    map.insert(MetricKind::Nic1Tx, smooth(70.0, 10.0, 25.0, 60.0, s(12), 2000.0));
    // NIC2: GridFTP transfers — heavy on-off bursts.
    map.insert(
        MetricKind::Nic2Rx,
        bursty(3.0, 8.0 * sample, 30.0 * sample, 150.0, 4.0, s(13), s(14), 5000.0),
    );
    map.insert(
        MetricKind::Nic2Tx,
        bursty(2.0, 10.0 * sample, 35.0 * sample, 220.0, 5.0, s(15), s(16), 5000.0),
    );
    map.insert(
        MetricKind::Vd1Read,
        positive(
            vec![
                boxed(Scale(JobLoadSignal::new(schedule.clone(), LoadDimension::Disk), 30.0)),
                boxed(Constant(8.0)),
                boxed(ArNoise::new(0.9, 3.0, s(17))),
            ],
            3000.0,
        ),
    );
    map.insert(MetricKind::Vd1Write, smooth(15.0, 4.0, 6.0, 200.0, s(18), 3000.0));
    map.insert(MetricKind::Vd2Read, switchy(14.0, 5.0, sample, s(19), s(20), s(21), 800.0));
    map.insert(
        MetricKind::Vd2Write,
        bursty(5.0, 6.0 * sample, 20.0 * sample, 18.0, 2.0, s(22), s(23), 800.0),
    );
    map
}

/// VM2: VNC proxy — smooth autocorrelated CPU (Fig. 4), bursty packets (Fig. 5).
fn vm2_signals(s: impl Fn(u64) -> u64, sample: f64) -> BTreeMap<MetricKind, Box<dyn Signal>> {
    let mut map: BTreeMap<MetricKind, Box<dyn Signal>> = BTreeMap::new();
    // Smooth "load average"-like CPU with slow session regime shifts.
    map.insert(
        MetricKind::CpuUsedSec,
        positive(
            vec![
                boxed(RegimeSwitch::new(
                    vec![
                        boxed(Constant(2.0)),
                        boxed(Sum(vec![
                            boxed(Constant(12.0)),
                            boxed(Diurnal {
                                amplitude: 3.0,
                                period_minutes: 180.0,
                                phase_minutes: 0.0,
                            }),
                        ])),
                    ],
                    40.0 * sample,
                    s(0),
                )),
                boxed(ArNoise::new(0.95, 0.5, s(1))),
            ],
            100.0,
        ),
    );
    map.insert(MetricKind::CpuReady, switchy(3.0, 1.0, sample, s(2), s(3), s(4), 100.0));
    map.insert(
        MetricKind::MemSize,
        steppy(300.0, 20.0, 15.0 * sample, 200.0, 400.0, 0.002, s(5), s(6)),
    );
    map.insert(
        MetricKind::MemSwapped,
        bursty(1.0, 6.0 * sample, 60.0 * sample, 10.0, 0.5, s(7), s(8), 256.0),
    );
    // Packet trains: VNC sessions come and go (Fig. 5's PktIn shape).
    map.insert(
        MetricKind::Nic1Rx,
        bursty(20.0, 5.0 * sample, 12.0 * sample, 250.0, 12.0, s(9), s(10), 10_000.0),
    );
    map.insert(
        MetricKind::Nic1Tx,
        bursty(30.0, 5.0 * sample, 12.0 * sample, 380.0, 20.0, s(11), s(12), 20_000.0),
    );
    map.insert(MetricKind::Nic2Rx, smooth(10.0, 2.5, 0.0, 0.0, s(13), 1000.0));
    map.insert(MetricKind::Nic2Tx, switchy(8.0, 3.0, sample, s(14), s(15), s(16), 5000.0));
    map.insert(MetricKind::Vd1Read, switchy(5.0, 2.0, sample, s(17), s(18), s(19), 500.0));
    map.insert(
        MetricKind::Vd1Write,
        bursty(4.0, 4.0 * sample, 16.0 * sample, 9.0, 1.2, s(20), s(21), 500.0),
    );
    map.insert(MetricKind::Vd2Read, switchy(7.0, 2.5, sample, s(22), s(23), s(24), 200.0));
    map.insert(
        MetricKind::Vd2Write,
        bursty(2.0, 5.0 * sample, 25.0 * sample, 6.0, 0.8, s(25), s(26), 300.0),
    );
    map
}

/// VM3: mostly idle calendar host; several devices are dead (paper NaN rows).
fn vm3_signals(s: impl Fn(u64) -> u64, sample: f64) -> BTreeMap<MetricKind, Box<dyn Signal>> {
    let mut map: BTreeMap<MetricKind, Box<dyn Signal>> = BTreeMap::new();
    map.insert(
        MetricKind::CpuUsedSec,
        positive(
            vec![
                boxed(Spikes::new(1.0 / 60.0, 20.0, 2.2, s(0))), // hourly-ish sync
                boxed(ArNoise::new(0.0, 0.4, s(1))),
                boxed(Constant(1.5)),
            ],
            100.0,
        ),
    );
    map.insert(MetricKind::CpuReady, smooth(1.0, 0.5, 0.0, 0.0, s(2), 100.0));
    map.insert(
        MetricKind::MemSize,
        steppy(256.0, 10.0, 25.0 * sample, 230.0, 290.0, 0.001, s(3), s(4)),
    );
    map.insert(MetricKind::MemSwapped, smooth(2.0, 0.4, 0.0, 0.0, s(5), 64.0));
    map.insert(
        MetricKind::Nic1Rx,
        positive(
            vec![
                boxed(Spikes::new(1.0 / 55.0, 40.0, 2.0, s(6))),
                boxed(ArNoise::new(0.0, 1.0, s(7))),
                boxed(Constant(3.0)),
            ],
            1000.0,
        ),
    );
    map.insert(
        MetricKind::Nic1Tx,
        positive(
            vec![
                boxed(Spikes::new(1.0 / 55.0, 30.0, 2.0, s(8))),
                boxed(ArNoise::new(0.0, 0.8, s(9))),
                boxed(Constant(2.0)),
            ],
            1000.0,
        ),
    );
    // Dead devices: constant zero (the paper reports these traces as NaN).
    map.insert(MetricKind::Nic2Rx, dead());
    map.insert(MetricKind::Nic2Tx, dead());
    map.insert(MetricKind::Vd1Read, dead());
    map.insert(MetricKind::Vd1Write, dead());
    map.insert(MetricKind::Vd2Read, switchy(4.0, 1.2, sample, s(10), s(11), s(12), 100.0));
    map.insert(
        MetricKind::Vd2Write,
        positive(vec![boxed(Spikes::new(0.02, 3.0, 2.6, s(13))), boxed(Constant(0.5))], 50.0),
    );
    map
}

/// VM4: web + list + wiki — strong diurnal cycle, correlated NIC/disk.
fn vm4_signals(s: impl Fn(u64) -> u64, sample: f64) -> BTreeMap<MetricKind, Box<dyn Signal>> {
    let mut map: BTreeMap<MetricKind, Box<dyn Signal>> = BTreeMap::new();
    map.insert(MetricKind::CpuUsedSec, smooth(15.0, 3.5, 10.0, 420.0, s(0), 100.0));
    map.insert(MetricKind::CpuReady, switchy(5.0, 1.8, sample, s(1), s(2), s(3), 100.0));
    map.insert(
        MetricKind::MemSize,
        steppy(700.0, 40.0, 20.0 * sample, 500.0, 900.0, 0.002, s(4), s(5)),
    );
    map.insert(
        MetricKind::MemSwapped,
        bursty(3.0, 12.0 * sample, 48.0 * sample, 25.0, 1.5, s(6), s(7), 512.0),
    );
    map.insert(
        MetricKind::Nic1Rx,
        positive(
            vec![
                boxed(Constant(150.0)),
                boxed(Diurnal {
                    amplitude: 120.0,
                    period_minutes: DAY as f64,
                    phase_minutes: 420.0,
                }),
                boxed(ArNoise::new(0.85, 35.0, s(8))),
                boxed(Spikes::new(0.03, 120.0, 2.1, s(9))),
            ],
            10_000.0,
        ),
    );
    map.insert(
        MetricKind::Nic1Tx,
        positive(
            vec![
                boxed(Constant(300.0)),
                boxed(Diurnal {
                    amplitude: 250.0,
                    period_minutes: DAY as f64,
                    phase_minutes: 430.0,
                }),
                boxed(ArNoise::new(0.85, 70.0, s(10))),
                boxed(Spikes::new(0.03, 220.0, 2.1, s(11))),
            ],
            20_000.0,
        ),
    );
    // NIC2: list-server digests — bursty batch sends.
    map.insert(
        MetricKind::Nic2Rx,
        bursty(3.0, 2.0 * sample, 40.0 * sample, 90.0, 2.0, s(12), s(13), 5000.0),
    );
    map.insert(
        MetricKind::Nic2Tx,
        bursty(2.0, 3.0 * sample, 48.0 * sample, 160.0, 1.5, s(14), s(15), 8000.0),
    );
    map.insert(MetricKind::Vd1Read, switchy(30.0, 9.0, sample, s(16), s(17), s(18), 2000.0));
    map.insert(
        MetricKind::Vd1Write,
        positive(
            vec![
                boxed(Constant(20.0)),
                boxed(Diurnal {
                    amplitude: 15.0,
                    period_minutes: DAY as f64,
                    phase_minutes: 460.0,
                }),
                boxed(ArNoise::new(0.85, 5.0, s(19))),
                boxed(Spikes::new(0.08, 28.0, 2.4, s(20))),
            ],
            2000.0,
        ),
    );
    map.insert(MetricKind::Vd2Read, switchy(10.0, 3.5, sample, s(21), s(22), s(23), 1000.0));
    map.insert(
        MetricKind::Vd2Write,
        bursty(8.0, 5.0 * sample, 20.0 * sample, 15.0, 2.5, s(24), s(25), 1000.0),
    );
    map
}

/// VM5: plain web server; NIC1 unused, VD2 read-side dead.
fn vm5_signals(s: impl Fn(u64) -> u64, sample: f64) -> BTreeMap<MetricKind, Box<dyn Signal>> {
    let mut map: BTreeMap<MetricKind, Box<dyn Signal>> = BTreeMap::new();
    map.insert(MetricKind::CpuUsedSec, smooth(8.0, 2.0, 6.0, 380.0, s(0), 100.0));
    map.insert(MetricKind::CpuReady, switchy(3.0, 1.2, sample, s(1), s(2), s(3), 100.0));
    map.insert(
        MetricKind::MemSize,
        steppy(400.0, 25.0, 16.0 * sample, 320.0, 480.0, 0.002, s(4), s(5)),
    );
    map.insert(
        MetricKind::MemSwapped,
        bursty(1.0, 8.0 * sample, 70.0 * sample, 12.0, 0.6, s(6), s(7), 128.0),
    );
    // NIC1 unused (paper Table 3 NaN rows for VM5 NIC1).
    map.insert(MetricKind::Nic1Rx, dead());
    map.insert(MetricKind::Nic1Tx, dead());
    map.insert(
        MetricKind::Nic2Rx,
        positive(
            vec![
                boxed(Constant(90.0)),
                boxed(Diurnal {
                    amplitude: 80.0,
                    period_minutes: DAY as f64,
                    phase_minutes: 380.0,
                }),
                boxed(ArNoise::new(0.85, 30.0, s(8))),
            ],
            5000.0,
        ),
    );
    map.insert(MetricKind::Nic2Tx, switchy(180.0, 60.0, sample, s(9), s(10), s(11), 10_000.0));
    map.insert(MetricKind::Vd1Read, switchy(15.0, 5.0, sample, s(12), s(13), s(14), 1000.0));
    map.insert(MetricKind::Vd1Write, smooth(12.0, 2.5, 8.0, 400.0, s(15), 1000.0));
    // VD2 read dead (paper NaN), write carries sparse log flushes.
    map.insert(MetricKind::Vd2Read, dead());
    map.insert(
        MetricKind::Vd2Write,
        bursty(3.0, 4.0 * sample, 24.0 * sample, 7.0, 0.9, s(16), s(17), 500.0),
    );
    map
}

/// Adapter scaling a [`JobLoadSignal`] (a newtype to keep profile code terse).
struct Scale(JobLoadSignal, f64);

impl Signal for Scale {
    fn sample(&mut self, minute: u64) -> f64 {
        self.0.sample(minute) * self.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_defines_all_twelve_metrics() {
        for p in VmProfile::ALL {
            let mut w = p.build(1);
            let samples = w.sample_all(0);
            assert_eq!(samples.len(), 12, "{p:?}");
            for (m, v) in samples {
                assert!(v.is_finite(), "{p:?}/{m}");
            }
        }
    }

    #[test]
    fn horizons_and_intervals_match_the_paper() {
        assert_eq!(VmProfile::Vm1.horizon_minutes(), 7 * 24 * 60);
        assert_eq!(VmProfile::Vm2.horizon_minutes(), 24 * 60);
        assert_eq!(VmProfile::Vm1.profile_interval_secs(), 1800);
        assert_eq!(VmProfile::Vm4.profile_interval_secs(), 300);
        assert_eq!(VmProfile::Vm1.prediction_window(), 16);
        assert_eq!(VmProfile::Vm3.prediction_window(), 5);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let mut a = VmProfile::Vm2.build(7);
        let mut b = VmProfile::Vm2.build(7);
        for minute in 0..500 {
            assert_eq!(a.sample_all(minute), b.sample_all(minute));
        }
        // A different seed produces a different stream (fresh instances,
        // because signals are single-pass).
        let mut a2 = VmProfile::Vm2.build(7);
        let mut c = VmProfile::Vm2.build(8);
        let differs = (0..500).any(|m| a2.sample_all(m) != c.sample_all(m));
        assert!(differs);
    }

    #[test]
    fn all_samples_are_non_negative() {
        for p in VmProfile::ALL {
            let mut w = p.build(3);
            for minute in 0..1000 {
                for (m, v) in w.sample_all(minute) {
                    assert!(v >= 0.0, "{p:?}/{m} at {minute}: {v}");
                }
            }
        }
    }

    #[test]
    fn dead_devices_are_flat() {
        let mut w = VmProfile::Vm3.build(5);
        for minute in 0..1000 {
            let samples = w.sample_all(minute);
            let nic2rx = samples.iter().find(|(m, _)| *m == MetricKind::Nic2Rx).unwrap().1;
            let vd1r = samples.iter().find(|(m, _)| *m == MetricKind::Vd1Read).unwrap().1;
            assert_eq!(nic2rx, 0.0);
            assert_eq!(vd1r, 0.0);
        }
    }

    #[test]
    fn vm2_cpu_is_smooth_and_nic_is_bursty() {
        // The paper's premise: CPU-like metrics are smoother (higher lag-1
        // autocorrelation) than network metrics on the proxy VM.
        let mut w = VmProfile::Vm2.build(11);
        let mut cpu = Vec::new();
        let mut nic = Vec::new();
        for minute in 0..1440 {
            let samples = w.sample_all(minute);
            cpu.push(samples.iter().find(|(m, _)| *m == MetricKind::CpuUsedSec).unwrap().1);
            nic.push(samples.iter().find(|(m, _)| *m == MetricKind::Nic1Rx).unwrap().1);
        }
        let cpu_acf = timeseries::stats::autocorrelation(&cpu, 1).unwrap()[1];
        let nic_cv = timeseries::stats::std_dev(&nic) / timeseries::stats::mean(&nic);
        let cpu_cv = timeseries::stats::std_dev(&cpu) / timeseries::stats::mean(&cpu);
        assert!(cpu_acf > 0.7, "cpu lag-1 acf {cpu_acf}");
        assert!(nic_cv > cpu_cv, "nic cv {nic_cv} vs cpu cv {cpu_cv}");
    }

    #[test]
    fn vm4_nic_traffic_follows_a_diurnal_cycle() {
        let mut w = VmProfile::Vm4.build(13);
        let mut nic = Vec::new();
        for minute in 0..1440 {
            let samples = w.sample_all(minute);
            nic.push(samples.iter().find(|(m, _)| *m == MetricKind::Nic1Tx).unwrap().1);
        }
        // Average of the busiest 6 hours must clearly exceed the quietest 6.
        let mut hours: Vec<f64> = nic.chunks(60).map(timeseries::stats::mean).collect();
        hours.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let quiet: f64 = hours[..6].iter().sum::<f64>() / 6.0;
        let busy: f64 = hours[hours.len() - 6..].iter().sum::<f64>() / 6.0;
        assert!(busy > quiet * 1.5, "busy {busy} vs quiet {quiet}");
    }

    #[test]
    fn vm1_cpu_reflects_job_activity() {
        let mut w = VmProfile::Vm1.build(17);
        let mut cpu = Vec::new();
        for minute in 0..(7 * 24 * 60) {
            let samples = w.sample_all(minute);
            cpu.push(samples.iter().find(|(m, _)| *m == MetricKind::CpuUsedSec).unwrap().1);
        }
        // Long jobs (45-50 min at cpu ~0.6-1.0, scaled by 20) must produce
        // sustained elevated stretches well above the baseline of ~5.
        let above = cpu.iter().filter(|&&v| v > 14.0).count();
        assert!(above > 300, "elevated minutes: {above}");
    }

    #[test]
    fn steppy_memory_has_flat_consolidated_runs() {
        // The step-hold memory metric must yield runs of *exactly equal*
        // consolidated samples — the property that makes LAST exactly right.
        let mut w = VmProfile::Vm4.build(19);
        let mut mem = Vec::new();
        for minute in 0..1440 {
            let samples = w.sample_all(minute);
            mem.push(samples.iter().find(|(m, _)| *m == MetricKind::MemSize).unwrap().1);
        }
        let consolidated: Vec<f64> =
            mem.chunks(5).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect();
        let equal_pairs = consolidated.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            equal_pairs > consolidated.len() / 3,
            "flat pairs: {equal_pairs}/{}",
            consolidated.len()
        );
    }
}
