//! The profiler: extraction of time series from the RRD.
//!
//! The paper's profiler (Perl/Shell in the prototype) "retrieves the VM
//! performance data, which are identified by vmID, deviceID, and a time
//! window" and hands the LARPredictor an equally-spaced series.
//! [`Profiler::extract`] is that component: consolidated RRD reads packaged as
//! [`timeseries::Series`] with correct timing metadata.

use std::sync::Arc;

use timeseries::Series;

use crate::metric::{MetricKind, VmId};
use crate::rrd::RoundRobinDatabase;
use crate::tiered::TieredDatabase;
use crate::{Result, VmSimError};

/// A profiler bound to one performance database.
#[derive(Debug)]
pub struct Profiler {
    rrd: Arc<RoundRobinDatabase>,
}

impl Profiler {
    /// Creates a profiler over the shared database.
    pub fn new(rrd: Arc<RoundRobinDatabase>) -> Self {
        Self { rrd }
    }

    /// Extracts the series for `(vm, metric)` over minutes
    /// `[start_minute, end_minute)` consolidated at `interval_minutes`.
    ///
    /// # Errors
    ///
    /// Propagates RRD query errors; fails if the consolidated data would be
    /// empty.
    pub fn extract(
        &self,
        vm: VmId,
        metric: MetricKind,
        start_minute: u64,
        end_minute: u64,
        interval_minutes: u64,
    ) -> Result<Series> {
        let values =
            self.rrd.consolidated(vm, metric, start_minute, end_minute, interval_minutes)?;
        Series::new(values, start_minute * 60, interval_minutes * 60)
            .map_err(|e| VmSimError::Series(e.to_string()))
    }

    /// Extracts the full retained range of a stream at the given interval,
    /// truncating the tail so the range divides evenly.
    ///
    /// # Errors
    ///
    /// * [`VmSimError::UnknownStream`] if the stream does not exist;
    /// * [`VmSimError::InvalidQuery`] if fewer than one full interval is
    ///   retained.
    pub fn extract_all(
        &self,
        vm: VmId,
        metric: MetricKind,
        interval_minutes: u64,
    ) -> Result<Series> {
        let (first, last) = self
            .rrd
            .range(vm, metric)
            .ok_or_else(|| VmSimError::UnknownStream(format!("{vm}/{metric}")))?;
        let available = last - first + 1;
        let usable = (available / interval_minutes) * interval_minutes;
        if usable == 0 {
            return Err(VmSimError::InvalidQuery(format!(
                "only {available} minutes retained, need at least {interval_minutes}"
            )));
        }
        self.extract(vm, metric, first, first + usable, interval_minutes)
    }
}

/// Extracts a series from a multi-archive [`TieredDatabase`] — the profiler
/// front-end for the full vmkusage storage layout. The database picks the
/// finest archive that retains the range.
///
/// # Errors
///
/// Propagates tiered query errors; fails if the consolidated data would be
/// empty.
pub fn extract_tiered(
    db: &TieredDatabase,
    vm: VmId,
    metric: MetricKind,
    start_minute: u64,
    end_minute: u64,
    interval_minutes: u64,
) -> Result<Series> {
    let values = db.query(vm, metric, start_minute, end_minute, interval_minutes)?;
    Series::new(values, start_minute * 60, interval_minutes * 60)
        .map_err(|e| VmSimError::Series(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitorAgent;
    use crate::profiles::VmProfile;

    fn populated() -> (Profiler, VmId) {
        let rrd = Arc::new(RoundRobinDatabase::new(20_000));
        let mut agent = MonitorAgent::new(vec![VmProfile::Vm2.build(1)], rrd.clone());
        agent.run(1440);
        (Profiler::new(rrd), VmId(2))
    }

    #[test]
    fn extract_produces_correctly_timed_series() {
        let (profiler, vm) = populated();
        let s = profiler.extract(vm, MetricKind::CpuUsedSec, 0, 1440, 5).unwrap();
        assert_eq!(s.len(), 288); // 24h at 5-minute consolidation
        assert_eq!(s.interval_secs(), 300);
        assert_eq!(s.start_secs(), 0);
    }

    #[test]
    fn consolidation_matches_manual_average() {
        let (profiler, vm) = populated();
        let fine = profiler.extract(vm, MetricKind::Nic1Rx, 0, 10, 1).unwrap();
        let coarse = profiler.extract(vm, MetricKind::Nic1Rx, 0, 10, 5).unwrap();
        let manual: f64 = fine.values()[..5].iter().sum::<f64>() / 5.0;
        assert!((coarse.values()[0] - manual).abs() < 1e-12);
    }

    #[test]
    fn extract_all_truncates_to_whole_intervals() {
        let rrd = Arc::new(RoundRobinDatabase::new(20_000));
        let mut agent = MonitorAgent::new(vec![VmProfile::Vm3.build(1)], rrd.clone());
        agent.run(103); // not a multiple of 5
        let profiler = Profiler::new(rrd);
        let s = profiler.extract_all(VmId(3), MetricKind::CpuUsedSec, 5).unwrap();
        assert_eq!(s.len(), 20); // 100 minutes / 5
    }

    #[test]
    fn tiered_extraction_serves_old_ranges_from_coarse_archives() {
        use crate::tiered::TieredDatabase;
        let db = TieredDatabase::vmkusage_layout();
        let mut workload = VmProfile::Vm2.build(4);
        for minute in 0..600 {
            for (metric, value) in workload.sample_all(minute) {
                db.record(VmId(2), metric, minute, value);
            }
        }
        // Recent minutes at raw resolution.
        let fine = extract_tiered(&db, VmId(2), MetricKind::CpuUsedSec, 590, 600, 1).unwrap();
        assert_eq!(fine.len(), 10);
        // Old minutes only at 5-minute consolidation.
        let old = extract_tiered(&db, VmId(2), MetricKind::CpuUsedSec, 0, 100, 5).unwrap();
        assert_eq!(old.len(), 20);
        assert_eq!(old.interval_secs(), 300);
        assert!(extract_tiered(&db, VmId(2), MetricKind::CpuUsedSec, 0, 100, 1).is_err());
    }

    #[test]
    fn unknown_stream_and_bad_window() {
        let (profiler, vm) = populated();
        assert!(matches!(
            profiler.extract(VmId(9), MetricKind::CpuUsedSec, 0, 10, 5),
            Err(VmSimError::UnknownStream(_))
        ));
        assert!(profiler.extract(vm, MetricKind::CpuUsedSec, 0, 7, 5).is_err());
        let empty_rrd = Arc::new(RoundRobinDatabase::new(100));
        let p2 = Profiler::new(empty_rrd.clone());
        empty_rrd.record(vm, MetricKind::CpuUsedSec, 0, 1.0);
        assert!(p2.extract_all(vm, MetricKind::CpuUsedSec, 5).is_err());
    }
}
