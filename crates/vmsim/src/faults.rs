//! Deterministic fault injection for monitor streams.
//!
//! Real `vmkusage`-style collectors do not deliver the clean, gap-free
//! per-minute streams the rest of this crate synthesises: agents restart and
//! drop samples, sensors wedge and repeat their last reading, counters
//! overflow into sentinel values, and transport layers duplicate or corrupt
//! records. [`FaultInjector`] reproduces those failure modes *deterministically*
//! (driven by [`simrng`], like every other source of randomness in this crate)
//! so the serving layer's fault tolerance can be exercised and regression
//! tested against byte-identical corrupted streams.
//!
//! The injector transforms a clean `(minute, value)` reading into zero, one,
//! or two emitted readings:
//!
//! * **dropped samples / gaps** — the reading vanishes; multi-sample gaps
//!   model agent restarts;
//! * **NaN readings** — the value is replaced by `f64::NAN`;
//! * **sentinel values** — the value is replaced by a fixed out-of-band
//!   constant (collectors often emit `-1` or `65535` on read failure);
//! * **stuck-at-last-value** — the sensor repeats the previous clean value
//!   for a run of samples;
//! * **spike outliers** — the value is scaled far outside its normal range;
//! * **duplicated readings** — the same `(minute, value)` is emitted twice.

use simrng::{Rng64, Xoshiro256pp};

use crate::{Result, VmSimError};

/// Which fault (if any) the injector applied to a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sample passed through untouched.
    None,
    /// Sample was dropped (possibly as part of a multi-sample gap).
    Dropped,
    /// Value replaced with `f64::NAN`.
    Nan,
    /// Value replaced with the configured sentinel constant.
    Sentinel,
    /// Value replaced with the previous clean value (stuck sensor).
    Stuck,
    /// Value multiplied into a spike outlier.
    Spike,
    /// Sample emitted twice.
    Duplicated,
}

/// Per-fault-type injection rates and shape parameters.
///
/// All rates are per-sample probabilities in `[0, 1]`. The default is a
/// fault-free pass-through; [`FaultConfig::uniform`] sets every rate at once
/// for sweep experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a sample is dropped outright.
    pub drop_rate: f64,
    /// Probability a multi-sample gap (agent restart) starts at a sample.
    pub gap_rate: f64,
    /// Maximum gap length in samples (uniform in `1..=max_gap_len`).
    pub max_gap_len: usize,
    /// Probability a value is replaced with NaN.
    pub nan_rate: f64,
    /// Probability a value is replaced with `sentinel_value`.
    pub sentinel_rate: f64,
    /// The out-of-band constant used for sentinel faults.
    pub sentinel_value: f64,
    /// Probability a stuck-at-last-value run starts at a sample.
    pub stuck_rate: f64,
    /// Maximum stuck-run length in samples (uniform in `1..=max_stuck_len`).
    pub max_stuck_len: usize,
    /// Probability a value becomes a spike outlier.
    pub spike_rate: f64,
    /// Spike multiplier: the faulted value is `value * spike_factor`
    /// (sign-alternating per spike).
    pub spike_factor: f64,
    /// Probability a sample is emitted twice.
    pub duplicate_rate: f64,
}

impl Default for FaultConfig {
    /// Fault-free pass-through with the conventional shape parameters.
    fn default() -> Self {
        Self {
            drop_rate: 0.0,
            gap_rate: 0.0,
            max_gap_len: 10,
            nan_rate: 0.0,
            sentinel_rate: 0.0,
            sentinel_value: -1.0,
            stuck_rate: 0.0,
            max_stuck_len: 8,
            spike_rate: 0.0,
            spike_factor: 25.0,
            duplicate_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// Every fault type enabled at the same per-sample `rate` — the sweep
    /// configuration used by the fault drills.
    pub fn uniform(rate: f64) -> Self {
        Self {
            drop_rate: rate,
            gap_rate: rate / 4.0,
            nan_rate: rate,
            sentinel_rate: rate,
            stuck_rate: rate / 4.0,
            spike_rate: rate,
            duplicate_rate: rate,
            ..Self::default()
        }
    }

    /// Validates rates and shape parameters.
    ///
    /// # Errors
    ///
    /// Returns [`VmSimError::InvalidQuery`] for a rate outside `[0, 1]`, a
    /// non-finite sentinel/spike parameter, or a zero gap/stuck length.
    pub fn validate(&self) -> Result<()> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("gap_rate", self.gap_rate),
            ("nan_rate", self.nan_rate),
            ("sentinel_rate", self.sentinel_rate),
            ("stuck_rate", self.stuck_rate),
            ("spike_rate", self.spike_rate),
            ("duplicate_rate", self.duplicate_rate),
        ] {
            if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                return Err(VmSimError::InvalidQuery(format!(
                    "{name} must be in [0, 1], got {rate}"
                )));
            }
        }
        if !self.sentinel_value.is_finite() || !self.spike_factor.is_finite() {
            return Err(VmSimError::InvalidQuery(
                "sentinel_value and spike_factor must be finite".into(),
            ));
        }
        if self.max_gap_len == 0 || self.max_stuck_len == 0 {
            return Err(VmSimError::InvalidQuery(
                "max_gap_len and max_stuck_len must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Counts of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Samples dropped (single drops plus gap members).
    pub dropped: usize,
    /// Values replaced with NaN.
    pub nans: usize,
    /// Values replaced with the sentinel constant.
    pub sentinels: usize,
    /// Values stuck at the previous clean reading.
    pub stuck: usize,
    /// Values turned into spike outliers.
    pub spikes: usize,
    /// Samples duplicated.
    pub duplicated: usize,
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> usize {
        self.dropped + self.nans + self.sentinels + self.stuck + self.spikes + self.duplicated
    }
}

/// A deterministic, stateful corruptor of monitor streams.
pub struct FaultInjector {
    config: FaultConfig,
    rng: Xoshiro256pp,
    stuck_value: f64,
    gap_remaining: usize,
    stuck_remaining: usize,
    spike_sign: f64,
    counts: FaultCounts,
}

impl FaultInjector {
    /// Creates an injector from a validated config and a seed.
    ///
    /// # Errors
    ///
    /// Returns [`VmSimError::InvalidQuery`] if the config is invalid.
    pub fn new(config: FaultConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            rng: Xoshiro256pp::seed_from_u64(seed),
            stuck_value: 0.0,
            gap_remaining: 0,
            stuck_remaining: 0,
            spike_sign: 1.0,
            counts: FaultCounts::default(),
        })
    }

    /// Corrupts one clean `(minute, value)` reading. Returns the readings the
    /// downstream consumer actually sees: empty for a drop, one entry for a
    /// pass-through or value fault, two entries for a duplication.
    pub fn corrupt(&mut self, minute: u64, value: f64) -> Vec<(u64, f64, FaultKind)> {
        // Continuing multi-sample states take precedence over fresh draws so
        // gap and stuck-run lengths are honoured exactly.
        if self.gap_remaining > 0 {
            self.gap_remaining -= 1;
            self.counts.dropped += 1;
            return Vec::new();
        }
        if self.stuck_remaining > 0 {
            self.stuck_remaining -= 1;
            self.counts.stuck += 1;
            // A stuck sensor repeats the reading it wedged on.
            return vec![(minute, self.stuck_value, FaultKind::Stuck)];
        }

        if self.rng.bernoulli(self.config.gap_rate) {
            let len = 1 + self.rng.next_below(self.config.max_gap_len as u64) as usize;
            self.gap_remaining = len - 1;
            self.counts.dropped += 1;
            return Vec::new();
        }
        if self.rng.bernoulli(self.config.drop_rate) {
            self.counts.dropped += 1;
            return Vec::new();
        }
        if self.rng.bernoulli(self.config.stuck_rate) {
            let len = 1 + self.rng.next_below(self.config.max_stuck_len as u64) as usize;
            self.stuck_remaining = len - 1;
            self.stuck_value = value;
            self.counts.stuck += 1;
            return vec![(minute, value, FaultKind::Stuck)];
        }
        if self.rng.bernoulli(self.config.nan_rate) {
            self.counts.nans += 1;
            return vec![(minute, f64::NAN, FaultKind::Nan)];
        }
        if self.rng.bernoulli(self.config.sentinel_rate) {
            self.counts.sentinels += 1;
            return vec![(minute, self.config.sentinel_value, FaultKind::Sentinel)];
        }
        if self.rng.bernoulli(self.config.spike_rate) {
            self.counts.spikes += 1;
            self.spike_sign = -self.spike_sign;
            let spiked = value * self.config.spike_factor * self.spike_sign;
            return vec![(minute, spiked, FaultKind::Spike)];
        }
        if self.rng.bernoulli(self.config.duplicate_rate) {
            self.counts.duplicated += 1;
            return vec![(minute, value, FaultKind::None), (minute, value, FaultKind::Duplicated)];
        }
        vec![(minute, value, FaultKind::None)]
    }

    /// Corrupts a whole clean series starting at `start_minute`, returning the
    /// corrupted `(minute, value)` stream (fault kinds elided).
    pub fn corrupt_series(&mut self, values: &[f64], start_minute: u64) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(values.len());
        for (i, &v) in values.iter().enumerate() {
            for (minute, value, _) in self.corrupt(start_minute + i as u64, v) {
                out.push((minute, value));
            }
        }
        out
    }

    /// Faults injected so far, by kind.
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("config", &self.config)
            .field("counts", &self.counts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> Vec<f64> {
        (0..n).map(|i| 10.0 + (i as f64 * 0.3).sin()).collect()
    }

    #[test]
    fn zero_rates_pass_through_unchanged() {
        let mut inj = FaultInjector::new(FaultConfig::default(), 1).unwrap();
        let s = series(100);
        let out = inj.corrupt_series(&s, 0);
        assert_eq!(out.len(), 100);
        for (i, (minute, v)) in out.iter().enumerate() {
            assert_eq!(*minute, i as u64);
            assert_eq!(*v, s[i]);
        }
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = series(500);
        let config = FaultConfig::uniform(0.1);
        let a = FaultInjector::new(config.clone(), 7).unwrap().corrupt_series(&s, 0);
        let b = FaultInjector::new(config, 7).unwrap().corrupt_series(&s, 0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            assert!(x.1 == y.1 || (x.1.is_nan() && y.1.is_nan()));
        }
    }

    #[test]
    fn rates_are_approximately_honoured() {
        let s = series(20_000);
        let config = FaultConfig { nan_rate: 0.1, ..FaultConfig::default() };
        let mut inj = FaultInjector::new(config, 11).unwrap();
        inj.corrupt_series(&s, 0);
        let rate = inj.counts().nans as f64 / s.len() as f64;
        assert!((rate - 0.1).abs() < 0.01, "nan rate {rate}");
    }

    #[test]
    fn drops_shorten_and_duplicates_lengthen() {
        let s = series(5_000);
        let mut dropper =
            FaultInjector::new(FaultConfig { drop_rate: 0.2, ..FaultConfig::default() }, 3)
                .unwrap();
        assert!(dropper.corrupt_series(&s, 0).len() < s.len());
        let mut duper =
            FaultInjector::new(FaultConfig { duplicate_rate: 0.2, ..FaultConfig::default() }, 3)
                .unwrap();
        assert!(duper.corrupt_series(&s, 0).len() > s.len());
    }

    #[test]
    fn stuck_runs_repeat_the_wedged_value() {
        let config = FaultConfig { stuck_rate: 1.0, max_stuck_len: 5, ..FaultConfig::default() };
        let mut inj = FaultInjector::new(config, 9).unwrap();
        let s: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let out = inj.corrupt_series(&s, 0);
        // Every emitted value within a run equals the run's first value.
        assert_eq!(out.len(), 20);
        assert!(inj.counts().stuck > 0);
        // The stream contains repeated values that the clean ramp never has.
        let repeats = out.windows(2).filter(|w| w[0].1 == w[1].1).count();
        assert!(repeats > 0);
    }

    #[test]
    fn gaps_drop_consecutive_minutes() {
        let config = FaultConfig { gap_rate: 0.05, max_gap_len: 6, ..FaultConfig::default() };
        let mut inj = FaultInjector::new(config, 13).unwrap();
        let s = series(2_000);
        let out = inj.corrupt_series(&s, 0);
        assert!(out.len() < s.len());
        // Minutes stay strictly increasing (drops leave holes, never reorder).
        for w in out.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(FaultConfig { nan_rate: 1.5, ..FaultConfig::default() }.validate().is_err());
        assert!(FaultConfig { drop_rate: -0.1, ..FaultConfig::default() }.validate().is_err());
        assert!(FaultConfig { max_gap_len: 0, ..FaultConfig::default() }.validate().is_err());
        assert!(FaultConfig { sentinel_value: f64::NAN, ..FaultConfig::default() }
            .validate()
            .is_err());
        assert!(FaultInjector::new(FaultConfig { spike_rate: 2.0, ..FaultConfig::default() }, 1)
            .is_err());
    }

    #[test]
    fn uniform_sets_every_rate() {
        let c = FaultConfig::uniform(0.08);
        assert_eq!(c.nan_rate, 0.08);
        assert_eq!(c.drop_rate, 0.08);
        assert_eq!(c.spike_rate, 0.08);
        assert_eq!(c.duplicate_rate, 0.08);
        assert!(c.gap_rate > 0.0 && c.stuck_rate > 0.0);
        c.validate().unwrap();
    }
}
