//! The VM1 grid-job workload model.
//!
//! §7 of the paper: during VM1's 7-day trace "total 310 jobs were executed
//! varying with a mix of 93.55% short running jobs (1–2 seconds), 3.87% medium
//! running jobs (2–10 minutes), and 2.58% long running jobs (45–50 minutes)".
//! [`JobSchedule::paper_mix`] reproduces exactly that mix; [`JobLoadSignal`]
//! converts the schedule into per-minute CPU/disk/network load contributions.

use simrng::{Rng64, Xoshiro256pp};

use crate::signal::Signal;

/// A scheduled batch job.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Arrival minute.
    pub start_minute: f64,
    /// Run length in minutes (fractional for sub-minute jobs).
    pub duration_minutes: f64,
    /// CPU demand while running (arbitrary load units).
    pub cpu_load: f64,
    /// Disk throughput while running.
    pub disk_load: f64,
    /// Network throughput while running.
    pub net_load: f64,
}

/// Job size classes from the paper's mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// 1–2 second jobs (93.55% of the mix).
    Short,
    /// 2–10 minute jobs (3.87%).
    Medium,
    /// 45–50 minute jobs (2.58%).
    Long,
}

/// A full schedule of jobs over the simulated horizon.
#[derive(Debug, Clone)]
pub struct JobSchedule {
    jobs: Vec<Job>,
    horizon_minutes: u64,
}

impl JobSchedule {
    /// Builds the paper's VM1 job mix: `total` jobs over `horizon_minutes`,
    /// with arrivals uniform over the horizon and exactly the paper's class
    /// proportions (rounded to whole jobs: 290 short / 12 medium / 8 long for
    /// `total = 310`).
    pub fn paper_mix(total: usize, horizon_minutes: u64, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        // Paper proportions.
        let n_medium = (total as f64 * 0.0387).round() as usize;
        let n_long = (total as f64 * 0.0258).round() as usize;
        let n_short = total - n_medium - n_long;

        let mut classes = Vec::with_capacity(total);
        classes.extend(std::iter::repeat_n(JobClass::Short, n_short));
        classes.extend(std::iter::repeat_n(JobClass::Medium, n_medium));
        classes.extend(std::iter::repeat_n(JobClass::Long, n_long));
        rng.shuffle(&mut classes);

        let mut jobs: Vec<Job> = classes
            .into_iter()
            .map(|class| {
                let start_minute = rng.uniform(0.0, horizon_minutes as f64);
                let (duration_minutes, cpu, disk, net) = match class {
                    // 1-2 s expressed in minutes.
                    JobClass::Short => {
                        (rng.uniform(1.0 / 60.0, 2.0 / 60.0), rng.uniform(0.5, 1.0), 0.2, 0.1)
                    }
                    JobClass::Medium => (rng.uniform(2.0, 10.0), rng.uniform(0.4, 0.9), 1.0, 0.5),
                    JobClass::Long => (rng.uniform(45.0, 50.0), rng.uniform(0.6, 1.0), 2.0, 1.0),
                };
                Job {
                    start_minute,
                    duration_minutes,
                    cpu_load: cpu,
                    disk_load: disk,
                    net_load: net,
                }
            })
            .collect();
        jobs.sort_by(|a, b| a.start_minute.partial_cmp(&b.start_minute).expect("finite starts"));
        Self { jobs, horizon_minutes }
    }

    /// The scheduled jobs, sorted by arrival.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The schedule horizon.
    pub fn horizon_minutes(&self) -> u64 {
        self.horizon_minutes
    }

    /// Aggregate load of all jobs overlapping minute `[minute, minute + 1)`,
    /// weighted by the overlap fraction: `(cpu, disk, net)`.
    pub fn load_at(&self, minute: u64) -> (f64, f64, f64) {
        let lo = minute as f64;
        let hi = lo + 1.0;
        let mut cpu = 0.0;
        let mut disk = 0.0;
        let mut net = 0.0;
        for job in &self.jobs {
            if job.start_minute >= hi {
                break; // sorted by start: nothing later overlaps
            }
            let end = job.start_minute + job.duration_minutes;
            if end <= lo {
                continue;
            }
            let overlap = (end.min(hi) - job.start_minute.max(lo)).max(0.0);
            cpu += job.cpu_load * overlap;
            disk += job.disk_load * overlap;
            net += job.net_load * overlap;
        }
        (cpu, disk, net)
    }
}

/// Which load dimension of a schedule a signal exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadDimension {
    /// CPU load units.
    Cpu,
    /// Disk throughput units.
    Disk,
    /// Network throughput units.
    Net,
}

/// Adapts one dimension of a shared [`JobSchedule`] into a [`Signal`].
pub struct JobLoadSignal {
    schedule: std::sync::Arc<JobSchedule>,
    dimension: LoadDimension,
}

impl JobLoadSignal {
    /// Creates a signal view over the schedule.
    pub fn new(schedule: std::sync::Arc<JobSchedule>, dimension: LoadDimension) -> Self {
        Self { schedule, dimension }
    }
}

impl Signal for JobLoadSignal {
    fn sample(&mut self, minute: u64) -> f64 {
        let (cpu, disk, net) = self.schedule.load_at(minute);
        match self.dimension {
            LoadDimension::Cpu => cpu,
            LoadDimension::Disk => disk,
            LoadDimension::Net => net,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WEEK: u64 = 7 * 24 * 60;

    #[test]
    fn paper_mix_has_310_jobs_with_correct_proportions() {
        let s = JobSchedule::paper_mix(310, WEEK, 1);
        assert_eq!(s.jobs().len(), 310);
        let medium = s.jobs().iter().filter(|j| (2.0..=10.0).contains(&j.duration_minutes)).count();
        let long = s.jobs().iter().filter(|j| (45.0..=50.0).contains(&j.duration_minutes)).count();
        let short = s.jobs().iter().filter(|j| j.duration_minutes < 0.05).count();
        assert_eq!(medium, 12); // round(310 * 0.0387)
        assert_eq!(long, 8); // round(310 * 0.0258)
        assert_eq!(short, 290);
    }

    #[test]
    fn jobs_are_sorted_and_inside_horizon() {
        let s = JobSchedule::paper_mix(310, WEEK, 2);
        for w in s.jobs().windows(2) {
            assert!(w[0].start_minute <= w[1].start_minute);
        }
        assert!(s.jobs().iter().all(|j| (0.0..WEEK as f64).contains(&j.start_minute)));
    }

    #[test]
    fn load_at_accounts_for_overlap_fraction() {
        // One 30-second job starting exactly at minute 10.0 contributes half
        // its CPU load to minute 10 and nothing elsewhere.
        let schedule = JobSchedule {
            jobs: vec![Job {
                start_minute: 10.0,
                duration_minutes: 0.5,
                cpu_load: 1.0,
                disk_load: 2.0,
                net_load: 4.0,
            }],
            horizon_minutes: 100,
        };
        let (cpu, disk, net) = schedule.load_at(10);
        assert!((cpu - 0.5).abs() < 1e-12);
        assert!((disk - 1.0).abs() < 1e-12);
        assert!((net - 2.0).abs() < 1e-12);
        assert_eq!(schedule.load_at(9), (0.0, 0.0, 0.0));
        assert_eq!(schedule.load_at(11), (0.0, 0.0, 0.0));
    }

    #[test]
    fn long_job_spans_many_minutes() {
        let schedule = JobSchedule {
            jobs: vec![Job {
                start_minute: 5.0,
                duration_minutes: 45.0,
                cpu_load: 0.8,
                disk_load: 0.0,
                net_load: 0.0,
            }],
            horizon_minutes: 100,
        };
        for minute in 5..50 {
            let (cpu, _, _) = schedule.load_at(minute);
            assert!((cpu - 0.8).abs() < 1e-12, "minute {minute}");
        }
        assert_eq!(schedule.load_at(51).0, 0.0);
    }

    #[test]
    fn signal_views_share_one_schedule() {
        let schedule = std::sync::Arc::new(JobSchedule::paper_mix(310, WEEK, 3));
        let mut cpu = JobLoadSignal::new(schedule.clone(), LoadDimension::Cpu);
        let mut disk = JobLoadSignal::new(schedule.clone(), LoadDimension::Disk);
        // Long jobs make some minutes busy on both dimensions simultaneously.
        let busy: Vec<u64> =
            (0..WEEK).filter(|&m| cpu.sample(m) > 0.0 && disk.sample(m) > 0.0).collect();
        assert!(!busy.is_empty());
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = JobSchedule::paper_mix(310, WEEK, 9);
        let b = JobSchedule::paper_mix(310, WEEK, 9);
        assert_eq!(a.jobs(), b.jobs());
        let c = JobSchedule::paper_mix(310, WEEK, 10);
        assert_ne!(a.jobs(), c.jobs());
    }
}
