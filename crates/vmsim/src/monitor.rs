//! The performance monitoring agent.
//!
//! The paper installs a monitor in the VMM that samples every guest VM's
//! resource metrics once a minute and stores them in the round-robin database.
//! [`MonitorAgent`] does exactly that against simulated workloads: it owns the
//! workloads (they are stateful signal graphs) and appends to a shared RRD.

use std::sync::Arc;

use crate::profiles::VmWorkload;
use crate::rrd::RoundRobinDatabase;

/// A monitoring agent sampling one or more VM workloads into an RRD.
pub struct MonitorAgent {
    workloads: Vec<VmWorkload>,
    rrd: Arc<RoundRobinDatabase>,
    /// Next minute to sample.
    clock: u64,
}

impl MonitorAgent {
    /// Creates an agent over the given workloads, writing into `rrd`.
    pub fn new(workloads: Vec<VmWorkload>, rrd: Arc<RoundRobinDatabase>) -> Self {
        Self { workloads, rrd, clock: 0 }
    }

    /// The shared database handle.
    pub fn rrd(&self) -> &Arc<RoundRobinDatabase> {
        &self.rrd
    }

    /// The current simulated minute (next to be sampled).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the simulation by `minutes`, sampling every VM's twelve
    /// metrics once per minute.
    pub fn run(&mut self, minutes: u64) {
        for _ in 0..minutes {
            let minute = self.clock;
            for workload in &mut self.workloads {
                let vm = workload.vm_id();
                for (metric, value) in workload.sample_all(minute) {
                    self.rrd.record(vm, metric, minute, value);
                }
            }
            self.clock += 1;
        }
    }
}

impl std::fmt::Debug for MonitorAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorAgent")
            .field("vms", &self.workloads.len())
            .field("clock", &self.clock)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{MetricKind, VmId};
    use crate::profiles::VmProfile;

    #[test]
    fn run_populates_every_stream() {
        let rrd = Arc::new(RoundRobinDatabase::new(10_000));
        let workloads = vec![VmProfile::Vm2.build(1), VmProfile::Vm3.build(1)];
        let mut agent = MonitorAgent::new(workloads, rrd.clone());
        agent.run(120);
        assert_eq!(agent.clock(), 120);
        for vm in [VmId(2), VmId(3)] {
            for metric in MetricKind::ALL {
                assert_eq!(rrd.len(vm, metric), 120, "{vm}/{metric}");
            }
        }
    }

    #[test]
    fn run_is_resumable() {
        let rrd = Arc::new(RoundRobinDatabase::new(10_000));
        let mut agent = MonitorAgent::new(vec![VmProfile::Vm5.build(2)], rrd.clone());
        agent.run(50);
        agent.run(70);
        assert_eq!(rrd.len(VmId(5), MetricKind::CpuUsedSec), 120);
        assert_eq!(rrd.range(VmId(5), MetricKind::CpuUsedSec), Some((0, 119)));
    }

    #[test]
    fn resumed_run_equals_single_run() {
        let rrd_a = Arc::new(RoundRobinDatabase::new(10_000));
        let mut a = MonitorAgent::new(vec![VmProfile::Vm4.build(3)], rrd_a.clone());
        a.run(100);

        let rrd_b = Arc::new(RoundRobinDatabase::new(10_000));
        let mut b = MonitorAgent::new(vec![VmProfile::Vm4.build(3)], rrd_b.clone());
        b.run(40);
        b.run(60);

        for metric in MetricKind::ALL {
            let xa = rrd_a.consolidated(VmId(4), metric, 0, 100, 1).unwrap();
            let xb = rrd_b.consolidated(VmId(4), metric, 0, 100, 1).unwrap();
            assert_eq!(xa, xb, "{metric}");
        }
    }
}
