//! The round-robin performance database.
//!
//! Mirrors the paper's `vmkusage` storage: fixed-retention ring buffers of
//! 1-minute samples per `(vmID, metric)` stream, with consolidated (averaged)
//! reads at coarser intervals — "The tool samples every minute, and updates its
//! data every five minutes with an average of the one-minute statistics".
//!
//! Writers (the monitor agent) and readers (the profiler) may run from
//! different threads; streams are guarded by an `RwLock`.

use std::collections::HashMap;

use crate::lock::RwLock;

use crate::metric::{MetricKind, VmId};
use crate::{Result, VmSimError};

/// One stream's ring storage.
#[derive(Debug, Clone)]
struct Stream {
    /// Minute index of the first retained sample.
    first_minute: u64,
    /// Retained samples, oldest first (bounded by `capacity`).
    samples: std::collections::VecDeque<f64>,
    capacity: usize,
}

impl Stream {
    fn push(&mut self, value: f64) {
        self.samples.push_back(value);
        if self.samples.len() > self.capacity {
            self.samples.pop_front();
            self.first_minute += 1;
        }
    }
}

/// A concurrent round-robin database of per-minute samples.
pub struct RoundRobinDatabase {
    streams: RwLock<HashMap<(VmId, MetricKind), Stream>>,
    capacity: usize,
}

impl RoundRobinDatabase {
    /// Creates a database retaining `capacity_minutes` of history per stream.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_minutes == 0`.
    pub fn new(capacity_minutes: usize) -> Self {
        assert!(capacity_minutes > 0, "RRD capacity must be positive");
        Self { streams: RwLock::new(HashMap::new()), capacity: capacity_minutes }
    }

    /// Appends the sample for `minute` to the stream. Samples must arrive in
    /// minute order per stream (the monitor guarantees it); the first write
    /// fixes the stream's epoch.
    pub fn record(&self, vm: VmId, metric: MetricKind, minute: u64, value: f64) {
        let mut streams = self.streams.write();
        let stream = streams.entry((vm, metric)).or_insert_with(|| Stream {
            first_minute: minute,
            samples: std::collections::VecDeque::with_capacity(self.capacity.min(1 << 20)),
            capacity: self.capacity,
        });
        stream.push(value);
    }

    /// Number of retained samples for a stream (0 if absent).
    pub fn len(&self, vm: VmId, metric: MetricKind) -> usize {
        self.streams.read().get(&(vm, metric)).map_or(0, |s| s.samples.len())
    }

    /// Whether the database holds no streams at all.
    pub fn is_empty(&self) -> bool {
        self.streams.read().is_empty()
    }

    /// Retained range of a stream as `[first_minute, last_minute]`, or `None`.
    pub fn range(&self, vm: VmId, metric: MetricKind) -> Option<(u64, u64)> {
        let streams = self.streams.read();
        let s = streams.get(&(vm, metric))?;
        if s.samples.is_empty() {
            return None;
        }
        Some((s.first_minute, s.first_minute + s.samples.len() as u64 - 1))
    }

    /// Reads consolidated data: averages of `interval_minutes`-sized buckets
    /// covering `[start_minute, end_minute)`. Every bucket must be fully
    /// retained.
    ///
    /// # Errors
    ///
    /// * [`VmSimError::UnknownStream`] if the stream does not exist;
    /// * [`VmSimError::InvalidQuery`] for a zero interval, an empty or
    ///   misaligned range, or a range outside the retained window.
    pub fn consolidated(
        &self,
        vm: VmId,
        metric: MetricKind,
        start_minute: u64,
        end_minute: u64,
        interval_minutes: u64,
    ) -> Result<Vec<f64>> {
        if interval_minutes == 0 {
            return Err(VmSimError::InvalidQuery("interval must be positive".into()));
        }
        if start_minute >= end_minute {
            return Err(VmSimError::InvalidQuery(format!(
                "empty range [{start_minute}, {end_minute})"
            )));
        }
        let span = end_minute - start_minute;
        if !span.is_multiple_of(interval_minutes) {
            return Err(VmSimError::InvalidQuery(format!(
                "range of {span} minutes is not a multiple of the {interval_minutes}-minute interval"
            )));
        }
        let streams = self.streams.read();
        let stream = streams
            .get(&(vm, metric))
            .ok_or_else(|| VmSimError::UnknownStream(format!("{vm}/{metric}")))?;
        let last = stream.first_minute + stream.samples.len() as u64;
        if start_minute < stream.first_minute || end_minute > last {
            return Err(VmSimError::InvalidQuery(format!(
                "range [{start_minute}, {end_minute}) outside retained [{}, {last})",
                stream.first_minute
            )));
        }
        let offset = (start_minute - stream.first_minute) as usize;
        let n_buckets = (span / interval_minutes) as usize;
        let iv = interval_minutes as usize;
        let mut out = Vec::with_capacity(n_buckets);
        for b in 0..n_buckets {
            let lo = offset + b * iv;
            let sum: f64 = stream.samples.iter().skip(lo).take(iv).sum();
            out.push(sum / interval_minutes as f64);
        }
        Ok(out)
    }
}

impl std::fmt::Debug for RoundRobinDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let streams = self.streams.read();
        f.debug_struct("RoundRobinDatabase")
            .field("streams", &streams.len())
            .field("capacity_minutes", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VM: VmId = VmId(1);
    const M: MetricKind = MetricKind::CpuUsedSec;

    #[test]
    fn record_and_range() {
        let rrd = RoundRobinDatabase::new(100);
        assert!(rrd.is_empty());
        for minute in 0..10 {
            rrd.record(VM, M, minute, minute as f64);
        }
        assert_eq!(rrd.len(VM, M), 10);
        assert_eq!(rrd.range(VM, M), Some((0, 9)));
        assert_eq!(rrd.range(VM, MetricKind::CpuReady), None);
    }

    #[test]
    fn consolidation_averages_buckets() {
        let rrd = RoundRobinDatabase::new(100);
        for minute in 0..10 {
            rrd.record(VM, M, minute, minute as f64);
        }
        let out = rrd.consolidated(VM, M, 0, 10, 5).unwrap();
        assert_eq!(out, vec![2.0, 7.0]);
        let fine = rrd.consolidated(VM, M, 2, 6, 1).unwrap();
        assert_eq!(fine, vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn ring_eviction_advances_epoch() {
        let rrd = RoundRobinDatabase::new(5);
        for minute in 0..8 {
            rrd.record(VM, M, minute, minute as f64);
        }
        assert_eq!(rrd.len(VM, M), 5);
        assert_eq!(rrd.range(VM, M), Some((3, 7)));
        // Evicted minutes are unreadable.
        assert!(rrd.consolidated(VM, M, 0, 5, 1).is_err());
        assert_eq!(rrd.consolidated(VM, M, 3, 8, 1).unwrap(), vec![3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn query_validation() {
        let rrd = RoundRobinDatabase::new(100);
        for minute in 0..20 {
            rrd.record(VM, M, minute, 1.0);
        }
        assert!(matches!(
            rrd.consolidated(VM, MetricKind::Nic1Rx, 0, 10, 5),
            Err(VmSimError::UnknownStream(_))
        ));
        assert!(rrd.consolidated(VM, M, 0, 10, 0).is_err());
        assert!(rrd.consolidated(VM, M, 10, 10, 5).is_err());
        assert!(rrd.consolidated(VM, M, 0, 7, 5).is_err()); // misaligned
        assert!(rrd.consolidated(VM, M, 0, 25, 5).is_err()); // beyond retention
    }

    #[test]
    fn streams_are_independent() {
        let rrd = RoundRobinDatabase::new(100);
        rrd.record(VM, M, 0, 1.0);
        rrd.record(VmId(2), M, 0, 2.0);
        rrd.record(VM, MetricKind::Nic1Rx, 0, 3.0);
        assert_eq!(rrd.consolidated(VM, M, 0, 1, 1).unwrap(), vec![1.0]);
        assert_eq!(rrd.consolidated(VmId(2), M, 0, 1, 1).unwrap(), vec![2.0]);
        assert_eq!(rrd.consolidated(VM, MetricKind::Nic1Rx, 0, 1, 1).unwrap(), vec![3.0]);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let rrd = std::sync::Arc::new(RoundRobinDatabase::new(10_000));
        let writer = {
            let rrd = rrd.clone();
            std::thread::spawn(move || {
                for minute in 0..5000 {
                    rrd.record(VM, M, minute, minute as f64);
                }
            })
        };
        // Concurrent reads must never panic or see torn state.
        for _ in 0..100 {
            if let Some((lo, hi)) = rrd.range(VM, M) {
                assert!(lo <= hi);
            }
        }
        writer.join().unwrap();
        assert_eq!(rrd.len(VM, M), 5000);
    }
}
