//! Composable stochastic signal generators.
//!
//! A [`Signal`] produces one sample per simulated minute. Workload profiles
//! assemble metrics from these primitives: e.g. a web server's NIC traffic is
//! `Clamp(Sum[Diurnal, ArNoise, OnOffBurst, Spikes]) ≥ 0`. The generators own
//! their RNG state, so a composed workload is fully determined by its seeds.
//!
//! The primitives are chosen to reproduce the *property the paper depends on*:
//! CPU-like metrics are smooth and autocorrelated (LAST/AR-friendly), network
//! and disk metrics are bursty with heavy tails (where averaging models win on
//! noise floors and nothing wins on spikes), and regime switches make the best
//! predictor time-varying.

use simrng::dist::{Exponential, Normal, Pareto};
use simrng::{Rng64, Xoshiro256pp};

/// A deterministic discrete-time signal: one value per minute.
pub trait Signal: Send {
    /// Produces the sample for minute `minute` (called with strictly
    /// increasing values, once each).
    fn sample(&mut self, minute: u64) -> f64;
}

/// A constant level.
#[derive(Debug, Clone)]
pub struct Constant(pub f64);

impl Signal for Constant {
    fn sample(&mut self, _minute: u64) -> f64 {
        self.0
    }
}

/// A sinusoid with the given period — the diurnal (or weekly) load cycle.
#[derive(Debug, Clone)]
pub struct Diurnal {
    /// Peak deviation from zero.
    pub amplitude: f64,
    /// Cycle length in minutes (1440 = daily).
    pub period_minutes: f64,
    /// Phase offset in minutes.
    pub phase_minutes: f64,
}

impl Signal for Diurnal {
    fn sample(&mut self, minute: u64) -> f64 {
        let x = (minute as f64 + self.phase_minutes) / self.period_minutes;
        self.amplitude * (2.0 * std::f64::consts::PI * x).sin()
    }
}

/// Colored AR(1) noise: smooth, autocorrelated fluctuation (host-load-like;
/// Dinda's studies found CPU load strongly autocorrelated).
#[derive(Debug)]
pub struct ArNoise {
    phi: f64,
    noise: Normal,
    state: f64,
    rng: Xoshiro256pp,
}

impl ArNoise {
    /// Creates AR(1) noise `x ← phi·x + N(0, sigma²)`.
    ///
    /// # Panics
    ///
    /// Panics if `|phi| >= 1` (non-stationary) or `sigma < 0`.
    pub fn new(phi: f64, sigma: f64, seed: u64) -> Self {
        assert!(phi.abs() < 1.0, "AR(1) requires |phi| < 1, got {phi}");
        Self {
            phi,
            noise: Normal::new(0.0, sigma).expect("sigma validated by caller"),
            state: 0.0,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }
}

impl Signal for ArNoise {
    fn sample(&mut self, _minute: u64) -> f64 {
        self.state = self.phi * self.state + self.noise.sample(&mut self.rng);
        self.state
    }
}

/// An ON–OFF burst process: exponentially distributed dwell times, Pareto
/// amplitudes while ON — the classic heavy-tailed traffic model.
#[derive(Debug)]
pub struct OnOffBurst {
    on_dwell: Exponential,
    off_dwell: Exponential,
    amplitude: Pareto,
    jitter: f64,
    rng: Xoshiro256pp,
    on: bool,
    remaining: f64,
    level: f64,
}

impl OnOffBurst {
    /// Creates a burst process with flat ON levels.
    ///
    /// * `mean_on`/`mean_off` — mean dwell in minutes of each state;
    /// * `amp_min`/`amp_alpha` — Pareto scale/shape of the ON level.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(mean_on: f64, mean_off: f64, amp_min: f64, amp_alpha: f64, seed: u64) -> Self {
        Self::with_jitter(mean_on, mean_off, amp_min, amp_alpha, 0.0, seed)
    }

    /// Creates a burst process whose ON level carries multiplicative
    /// per-minute noise: `level · (1 + jitter · N(0,1))`, floored at zero.
    ///
    /// Real transfer activity is noisy *while active* and exactly zero while
    /// idle — which is precisely the structure that makes the best predictor
    /// regime-dependent (LAST exact when idle, averaging better when busy).
    ///
    /// # Panics
    ///
    /// Panics if any dwell/amplitude parameter is non-positive or `jitter`
    /// is negative.
    pub fn with_jitter(
        mean_on: f64,
        mean_off: f64,
        amp_min: f64,
        amp_alpha: f64,
        jitter: f64,
        seed: u64,
    ) -> Self {
        assert!(jitter >= 0.0, "jitter must be >= 0");
        Self {
            on_dwell: Exponential::with_mean(mean_on).expect("mean_on must be positive"),
            off_dwell: Exponential::with_mean(mean_off).expect("mean_off must be positive"),
            amplitude: Pareto::new(amp_min, amp_alpha).expect("amplitude params must be positive"),
            jitter,
            rng: Xoshiro256pp::seed_from_u64(seed),
            on: false,
            remaining: 0.0,
            level: 0.0,
        }
    }
}

impl Signal for OnOffBurst {
    fn sample(&mut self, _minute: u64) -> f64 {
        while self.remaining <= 0.0 {
            self.on = !self.on;
            if self.on {
                self.remaining += self.on_dwell.sample(&mut self.rng).max(0.01);
                self.level = self.amplitude.sample(&mut self.rng);
            } else {
                self.remaining += self.off_dwell.sample(&mut self.rng).max(0.01);
                self.level = 0.0;
            }
        }
        self.remaining -= 1.0;
        if self.on && self.jitter > 0.0 {
            // Box-Muller-free jitter: reuse the normal sampler inline.
            let u1 = self.rng.next_f64_open();
            let u2 = self.rng.next_f64();
            let z = (-2.0f64 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.level * (1.0 + self.jitter * z)).max(0.0)
        } else {
            self.level
        }
    }
}

/// Isolated heavy-tailed spikes: each minute, with probability `rate`, a
/// Pareto-sized spike (otherwise zero).
#[derive(Debug)]
pub struct Spikes {
    rate: f64,
    amplitude: Pareto,
    rng: Xoshiro256pp,
}

impl Spikes {
    /// Creates a spike train with per-minute probability `rate` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the amplitude parameters are non-positive.
    pub fn new(rate: f64, amp_min: f64, amp_alpha: f64, seed: u64) -> Self {
        Self {
            rate: rate.clamp(0.0, 1.0),
            amplitude: Pareto::new(amp_min, amp_alpha).expect("amplitude params must be positive"),
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }
}

impl Signal for Spikes {
    fn sample(&mut self, _minute: u64) -> f64 {
        if self.rng.bernoulli(self.rate) {
            self.amplitude.sample(&mut self.rng)
        } else {
            0.0
        }
    }
}

/// A reflected random walk within `[min, max]` — slow level drift
/// (memory-footprint-like).
#[derive(Debug)]
pub struct RandomWalk {
    step: Normal,
    state: f64,
    min: f64,
    max: f64,
    rng: Xoshiro256pp,
}

impl RandomWalk {
    /// Creates a walk starting at `start`, stepping `N(0, sigma²)` per minute,
    /// reflected at the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `start` is outside the bounds.
    pub fn new(start: f64, sigma: f64, min: f64, max: f64, seed: u64) -> Self {
        assert!(min <= max && (min..=max).contains(&start), "walk bounds invalid");
        Self {
            step: Normal::new(0.0, sigma).expect("sigma must be >= 0"),
            state: start,
            min,
            max,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }
}

impl Signal for RandomWalk {
    fn sample(&mut self, _minute: u64) -> f64 {
        self.state += self.step.sample(&mut self.rng);
        // Reflect at the boundaries.
        if self.state > self.max {
            self.state = 2.0 * self.max - self.state;
        }
        if self.state < self.min {
            self.state = 2.0 * self.min - self.state;
        }
        self.state = self.state.clamp(self.min, self.max);
        self.state
    }
}

/// A step-hold level process: the value stays *exactly* constant for an
/// exponentially distributed dwell, then jumps by a Gaussian step (reflected
/// at the bounds).
///
/// This is how several real resource metrics behave — memory allocations,
/// idle CPU floors, configuration-driven levels — and it matters for
/// prediction: within a hold every consolidated sample is identical, so the
/// LAST model is *exactly* right and the per-step best-predictor label is
/// deterministic (the strongest signal the k-NN selector can learn).
#[derive(Debug)]
pub struct StepLevel {
    dwell: Exponential,
    step: Normal,
    min: f64,
    max: f64,
    level: f64,
    remaining: f64,
    rng: Xoshiro256pp,
}

impl StepLevel {
    /// Creates a step process starting at `start`, holding each level for
    /// `Exp(mean_dwell)` minutes, jumping by `N(0, step_sigma²)` within
    /// `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are invalid, `start` is outside them, or
    /// `mean_dwell <= 0`.
    pub fn new(
        start: f64,
        step_sigma: f64,
        mean_dwell: f64,
        min: f64,
        max: f64,
        seed: u64,
    ) -> Self {
        assert!(min <= max && (min..=max).contains(&start), "step bounds invalid");
        Self {
            dwell: Exponential::with_mean(mean_dwell).expect("mean_dwell must be positive"),
            step: Normal::new(0.0, step_sigma).expect("step_sigma must be >= 0"),
            min,
            max,
            level: start,
            remaining: 0.0,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }
}

impl Signal for StepLevel {
    fn sample(&mut self, _minute: u64) -> f64 {
        if self.remaining <= 0.0 {
            self.remaining = self.dwell.sample(&mut self.rng).max(1.0);
            self.level += self.step.sample(&mut self.rng);
            if self.level > self.max {
                self.level = 2.0 * self.max - self.level;
            }
            if self.level < self.min {
                self.level = 2.0 * self.min - self.level;
            }
            self.level = self.level.clamp(self.min, self.max);
        }
        self.remaining -= 1.0;
        self.level
    }
}

/// AR(1) noise whose coefficient *drifts* over time — the non-stationarity
/// knob of the workload models.
///
/// Real resource traces do not follow a fixed linear process: their local
/// dynamics change as applications come and go, which is exactly why the
/// paper's globally-fitted AR model is mis-specified and adaptive predictor
/// selection pays off. `DriftingAr` reproduces that: the coefficient `φ`
/// performs a slow reflected random walk inside `[phi_min, phi_max]`, so the
/// series wanders between strongly autocorrelated (persistence-friendly)
/// stretches and noisy mean-reverting (averaging-friendly) stretches, while
/// any *fixed* AR fit is a stale compromise.
#[derive(Debug)]
pub struct DriftingAr {
    phi_min: f64,
    phi_max: f64,
    phi: f64,
    phi_step: Normal,
    noise: Normal,
    state: f64,
    rng: Xoshiro256pp,
}

impl DriftingAr {
    /// Creates drifting AR noise.
    ///
    /// * `phi_min`/`phi_max` — the coefficient's range (within `(-1, 1)`);
    /// * `sigma` — innovation deviation;
    /// * `phi_step` — per-minute deviation of the coefficient walk (e.g.
    ///   `0.01` crosses a unit range in ~10⁴ minutes of random walking, or
    ///   `0.03` within a few hours).
    ///
    /// # Panics
    ///
    /// Panics unless `-1 < phi_min <= phi_max < 1`, `sigma >= 0` and
    /// `phi_step > 0`.
    pub fn new(phi_min: f64, phi_max: f64, sigma: f64, phi_step: f64, seed: u64) -> Self {
        assert!(
            -1.0 < phi_min && phi_min <= phi_max && phi_max < 1.0,
            "DriftingAr requires -1 < phi_min <= phi_max < 1"
        );
        assert!(phi_step > 0.0, "phi_step must be positive");
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let phi = rng.uniform(phi_min, phi_max);
        Self {
            phi_min,
            phi_max,
            phi,
            phi_step: Normal::new(0.0, phi_step).expect("phi_step validated"),
            noise: Normal::new(0.0, sigma).expect("sigma must be >= 0"),
            state: 0.0,
            rng,
        }
    }
}

impl Signal for DriftingAr {
    fn sample(&mut self, _minute: u64) -> f64 {
        // Walk the coefficient, reflecting at the bounds.
        self.phi += self.phi_step.sample(&mut self.rng);
        if self.phi > self.phi_max {
            self.phi = 2.0 * self.phi_max - self.phi;
        }
        if self.phi < self.phi_min {
            self.phi = 2.0 * self.phi_min - self.phi;
        }
        self.phi = self.phi.clamp(self.phi_min, self.phi_max);
        self.state = self.phi * self.state + self.noise.sample(&mut self.rng);
        self.state
    }
}

/// Markov regime switching between component signals: each minute, with
/// probability `1/mean_dwell`, jump to a uniformly random other regime.
///
/// This is what makes "the best predictor changes over time" literally true
/// in the synthetic traces.
pub struct RegimeSwitch {
    regimes: Vec<Box<dyn Signal>>,
    current: usize,
    mean_dwell: f64,
    /// Optional slow drift of the regime mix: `(period_minutes, phase_01)`.
    drift: Option<(f64, f64)>,
    rng: Xoshiro256pp,
}

impl RegimeSwitch {
    /// Creates a switcher over `regimes` with the given mean dwell (minutes).
    ///
    /// # Panics
    ///
    /// Panics if `regimes` is empty or `mean_dwell < 1`.
    pub fn new(regimes: Vec<Box<dyn Signal>>, mean_dwell: f64, seed: u64) -> Self {
        assert!(!regimes.is_empty(), "RegimeSwitch needs at least one regime");
        assert!(mean_dwell >= 1.0, "mean dwell must be >= 1 minute");
        Self {
            regimes,
            current: 0,
            mean_dwell,
            drift: None,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Creates a *drifting* two-plus-regime switcher: when a dwell expires,
    /// the destination regime is drawn with weights that slide sinusoidally
    /// over `drift_period_minutes` (phase derived from the seed).
    ///
    /// This is the trace-scale non-stationarity knob: with a drift period
    /// comparable to the trace length, the early and late halves spend
    /// different fractions of time in each regime, so a model selected by
    /// *cumulative historical* error (the NWS rule) is anchored to a mix
    /// that no longer holds — while window-based selection is unaffected.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RegimeSwitch::new`], plus `drift_period >= 1`.
    pub fn with_drift(
        regimes: Vec<Box<dyn Signal>>,
        mean_dwell: f64,
        drift_period_minutes: f64,
        seed: u64,
    ) -> Self {
        assert!(drift_period_minutes >= 1.0, "drift period must be >= 1 minute");
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let phase = rng.next_f64();
        let mut s = Self::new(regimes, mean_dwell, seed.wrapping_add(1));
        s.drift = Some((drift_period_minutes, phase));
        s.rng = rng;
        s
    }
}

impl Signal for RegimeSwitch {
    fn sample(&mut self, minute: u64) -> f64 {
        if self.regimes.len() > 1 && self.rng.bernoulli(1.0 / self.mean_dwell) {
            match self.drift {
                None => {
                    let jump = 1 + self.rng.next_below(self.regimes.len() as u64 - 1) as usize;
                    self.current = (self.current + jump) % self.regimes.len();
                }
                Some((period, phase)) => {
                    // Weight of the *last* regime slides in [0.05, 0.95];
                    // remaining mass is spread evenly over the others.
                    let x = minute as f64 / period + phase;
                    let w_last = 0.5 + 0.45 * (2.0 * std::f64::consts::PI * x).sin();
                    let n = self.regimes.len();
                    self.current = if self.rng.bernoulli(w_last) {
                        n - 1
                    } else if n == 2 {
                        0
                    } else {
                        self.rng.next_below(n as u64 - 1) as usize
                    };
                }
            }
        }
        // Keep every regime's internal clock advancing so switching back does
        // not replay stale state.
        let mut value = 0.0;
        for (i, r) in self.regimes.iter_mut().enumerate() {
            let v = r.sample(minute);
            if i == self.current {
                value = v;
            }
        }
        value
    }
}

/// Sum of component signals.
pub struct Sum(pub Vec<Box<dyn Signal>>);

impl Signal for Sum {
    fn sample(&mut self, minute: u64) -> f64 {
        self.0.iter_mut().map(|s| s.sample(minute)).sum()
    }
}

/// Affine transform of an inner signal: `mul * x + add`.
pub struct Scaled {
    /// The transformed signal.
    pub inner: Box<dyn Signal>,
    /// Multiplier.
    pub mul: f64,
    /// Offset.
    pub add: f64,
}

impl Signal for Scaled {
    fn sample(&mut self, minute: u64) -> f64 {
        self.mul * self.inner.sample(minute) + self.add
    }
}

/// Clamps an inner signal into `[lo, hi]` — resource metrics cannot go
/// negative and utilisations cannot exceed 100%.
pub struct Clamped {
    /// The clamped signal.
    pub inner: Box<dyn Signal>,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Signal for Clamped {
    fn sample(&mut self, minute: u64) -> f64 {
        self.inner.sample(minute).clamp(self.lo, self.hi)
    }
}

/// Quantizes an inner signal to multiples of `grain`.
///
/// Resource counters are quantized in reality (page counts, packet counts,
/// percent points), which matters for prediction: quiet stretches become
/// *exactly* flat, where the LAST model is exactly right — the strongest
/// best-predictor signal in real monitoring data.
pub struct Quantized {
    /// The quantized signal.
    pub inner: Box<dyn Signal>,
    /// Quantization step (must be positive).
    pub grain: f64,
}

impl Signal for Quantized {
    fn sample(&mut self, minute: u64) -> f64 {
        debug_assert!(self.grain > 0.0, "quantization grain must be positive");
        (self.inner.sample(minute) / self.grain).round() * self.grain
    }
}

/// Convenience: clamp a summed pipeline to `[0, hi]`.
pub fn positive(parts: Vec<Box<dyn Signal>>, hi: f64) -> Box<dyn Signal> {
    Box::new(Clamped { inner: Box::new(Sum(parts)), lo: 0.0, hi })
}

/// Convenience: clamp a summed pipeline to `[0, hi]` and quantize to `grain`.
pub fn positive_quantized(parts: Vec<Box<dyn Signal>>, hi: f64, grain: f64) -> Box<dyn Signal> {
    Box::new(Quantized {
        inner: Box::new(Clamped { inner: Box::new(Sum(parts)), lo: 0.0, hi }),
        grain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(signal: &mut dyn Signal, n: u64) -> Vec<f64> {
        (0..n).map(|m| signal.sample(m)).collect()
    }

    #[test]
    fn constant_is_constant() {
        let xs = run(&mut Constant(3.5), 10);
        assert!(xs.iter().all(|&x| x == 3.5));
    }

    #[test]
    fn diurnal_has_the_right_period() {
        let mut d = Diurnal { amplitude: 2.0, period_minutes: 100.0, phase_minutes: 0.0 };
        let xs = run(&mut d, 200);
        // One full cycle later the value repeats.
        for t in 0..100 {
            assert!((xs[t] - xs[t + 100]).abs() < 1e-9);
        }
        assert!(xs.iter().cloned().fold(f64::MIN, f64::max) <= 2.0 + 1e-12);
    }

    #[test]
    fn ar_noise_is_autocorrelated_and_stationary() {
        let mut s = ArNoise::new(0.9, 1.0, 7);
        let xs = run(&mut s, 20_000);
        let acf = timeseries::stats::autocorrelation(&xs[1000..], 1).unwrap();
        assert!(acf[1] > 0.8, "lag-1 autocorrelation {}", acf[1]);
        // Stationary variance ~ sigma^2 / (1 - phi^2) = 5.26.
        let var = timeseries::stats::variance(&xs[1000..]);
        assert!((var - 5.26).abs() < 1.0, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "|phi| < 1")]
    fn ar_noise_rejects_nonstationary() {
        ArNoise::new(1.0, 1.0, 1);
    }

    #[test]
    fn on_off_burst_visits_both_states() {
        let mut s = OnOffBurst::new(5.0, 10.0, 2.0, 1.5, 3);
        let xs = run(&mut s, 5000);
        let zeros = xs.iter().filter(|&&x| x == 0.0).count();
        let on = xs.len() - zeros;
        assert!(zeros > 1000, "zeros {zeros}");
        assert!(on > 500, "on {on}");
        // ON levels honour the Pareto minimum.
        assert!(xs.iter().filter(|&&x| x > 0.0).all(|&x| x >= 2.0));
        // Mean OFF dwell is twice the ON dwell: zeros should dominate.
        assert!(zeros > on);
    }

    #[test]
    fn spikes_fire_at_roughly_the_requested_rate() {
        let mut s = Spikes::new(0.05, 1.0, 2.0, 9);
        let xs = run(&mut s, 20_000);
        let fired = xs.iter().filter(|&&x| x > 0.0).count() as f64 / xs.len() as f64;
        assert!((fired - 0.05).abs() < 0.01, "rate {fired}");
    }

    #[test]
    fn random_walk_respects_bounds() {
        let mut s = RandomWalk::new(50.0, 5.0, 0.0, 100.0, 11);
        let xs = run(&mut s, 10_000);
        assert!(xs.iter().all(|&x| (0.0..=100.0).contains(&x)));
        // It actually moves.
        let var = timeseries::stats::variance(&xs);
        assert!(var > 10.0, "variance {var}");
    }

    #[test]
    fn regime_switch_changes_levels() {
        let regimes: Vec<Box<dyn Signal>> = vec![Box::new(Constant(0.0)), Box::new(Constant(10.0))];
        let mut s = RegimeSwitch::new(regimes, 20.0, 5);
        let xs = run(&mut s, 2000);
        let low = xs.iter().filter(|&&x| x == 0.0).count();
        let high = xs.iter().filter(|&&x| x == 10.0).count();
        assert_eq!(low + high, 2000);
        assert!(low > 200 && high > 200, "low {low}, high {high}");
    }

    #[test]
    fn combinators_compose() {
        let mut s = Clamped {
            inner: Box::new(Scaled { inner: Box::new(Constant(2.0)), mul: 3.0, add: 1.0 }),
            lo: 0.0,
            hi: 5.0,
        };
        // 3*2 + 1 = 7, clamped to 5.
        assert_eq!(s.sample(0), 5.0);
        let mut sum = Sum(vec![Box::new(Constant(1.0)), Box::new(Constant(2.5))]);
        assert_eq!(sum.sample(0), 3.5);
        let mut pos = positive(vec![Box::new(Constant(-4.0))], 100.0);
        assert_eq!(pos.sample(0), 0.0);
    }

    #[test]
    fn signals_are_deterministic_per_seed() {
        let a = run(&mut OnOffBurst::new(3.0, 6.0, 1.0, 2.0, 42), 500);
        let b = run(&mut OnOffBurst::new(3.0, 6.0, 1.0, 2.0, 42), 500);
        assert_eq!(a, b);
        let c = run(&mut OnOffBurst::new(3.0, 6.0, 1.0, 2.0, 43), 500);
        assert_ne!(a, c);
    }
}
