//! The metric registry: names → shared metric handles.
//!
//! A [`Registry`] is the rendezvous point between recorders and expositions.
//! Registration is idempotent — asking for an existing name returns a handle
//! to the same cells, which is how label-free per-stream recorders roll up
//! into fleet-wide totals: every stream registers (or receives a clone of)
//! the same named counter. The registry's internal lock is held only during
//! registration and [`Registry::snapshot`]; recording through a handle never
//! touches it.

use std::sync::{Arc, Mutex};

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    metric: Metric,
}

/// A named collection of metrics. Clone freely; clones share the same set.
#[derive(Clone)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

/// One metric's point-in-time value, from [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter {
        /// Metric name.
        name: String,
        /// Current count.
        value: u64,
    },
    /// An f64 gauge.
    Gauge {
        /// Metric name.
        name: String,
        /// Current value.
        value: f64,
    },
    /// A histogram, captured whole.
    Histogram {
        /// Metric name.
        name: String,
        /// Bucket counts, sum, min/max and quantile access.
        snapshot: HistogramSnapshot,
    },
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self { entries: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Returns the counter named `name`, creating it at zero if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Counter(c) => return c.clone(),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let c = Counter::new();
        entries.push(Entry { name: name.to_string(), metric: Metric::Counter(c.clone()) });
        c
    }

    /// Returns the gauge named `name`, creating it at zero if absent.
    ///
    /// # Panics
    ///
    /// Same kind-mismatch condition as [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Gauge(g) => return g.clone(),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let g = Gauge::new();
        entries.push(Entry { name: name.to_string(), metric: Metric::Gauge(g.clone()) });
        g
    }

    /// Returns the histogram named `name`, creating it empty if absent.
    ///
    /// # Panics
    ///
    /// Same kind-mismatch condition as [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Histogram(h) => return h.clone(),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let h = Histogram::new();
        entries.push(Entry { name: name.to_string(), metric: Metric::Histogram(h.clone()) });
        h
    }

    /// Point-in-time values of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricValue> {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out: Vec<MetricValue> = entries
            .iter()
            .map(|e| match &e.metric {
                Metric::Counter(c) => MetricValue::Counter { name: e.name.clone(), value: c.get() },
                Metric::Gauge(g) => MetricValue::Gauge { name: e.name.clone(), value: g.get() },
                Metric::Histogram(h) => {
                    MetricValue::Histogram { name: e.name.clone(), snapshot: h.snapshot() }
                }
            })
            .collect();
        out.sort_by(|a, b| metric_name(a).cmp(metric_name(b)));
        out
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry poisoned").len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// The name of a snapshotted metric.
pub(crate) fn metric_name(m: &MetricValue) -> &str {
    match m {
        MetricValue::Counter { name, .. }
        | MetricValue::Gauge { name, .. }
        | MetricValue::Histogram { name, .. } => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same name must alias the same cell");
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.gauge("a_depth").set(1.5);
        r.histogram("c_us").record(10.0);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(metric_name).collect();
        assert_eq!(names, vec!["a_depth", "b_total", "c_us"]);
    }

    #[test]
    fn handles_outlive_cheaply_cloned_registries() {
        let r = Registry::new();
        let c = r.counter("kept_total");
        let r2 = r.clone();
        drop(r);
        c.add(3);
        match &r2.snapshot()[0] {
            MetricValue::Counter { value, .. } => assert_eq!(*value, 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
