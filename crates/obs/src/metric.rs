//! Metric primitives: counters, gauges, log-linear histograms, and the
//! ceil-rank percentile rule they all share.
//!
//! Every handle is a thin `Arc` over atomics: cloning is cheap, recording is
//! lock-free, and a handle stays valid (and keeps aggregating) independently
//! of the [`crate::Registry`] that minted it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Linear sub-buckets per power-of-two decade (log-linear layout). Bounds
/// the histogram's relative quantile error at `1/SUBS` = 6.25%.
const SUBS: usize = 16;
/// Highest power-of-two decade; values ≥ 2^40 (~12.7 days in µs) clamp into
/// the last bucket.
const MAX_EXP: usize = 40;
/// Bucket 0 covers `[0, 1)`; then `SUBS` buckets per decade.
const BUCKETS: usize = 1 + MAX_EXP * SUBS;

/// Ceil-rank percentile of an ascending-sorted sample.
///
/// Uses the conservative zero-based rank `ceil((n-1)·p)`: the tail is never
/// underestimated (p99 of 100 samples reports the maximum, where the
/// round-to-nearest rule this replaces reported the 99th-smallest). `p` is
/// clamped to `[0, 1]`; an empty slice yields `None`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    let idx = (((sorted.len() - 1) as f64) * p).ceil() as usize;
    Some(sorted[idx.min(sorted.len() - 1)])
}

/// A monotonic event counter. Clone freely; all clones share one cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero (registry-independent; tests and ad-hoc use).
    pub fn new() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// An f64 gauge (last-write-wins). Clone freely; all clones share one cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the gauge. Non-finite values are ignored — a NaN must never
    /// reach an exposition.
    #[inline]
    pub fn set(&self, value: f64) {
        if value.is_finite() {
            self.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bits; CAS-accumulated.
    sum: AtomicU64,
    /// f64 bits of the smallest recorded value.
    min: AtomicU64,
    /// f64 bits of the largest recorded value.
    max: AtomicU64,
    /// Non-finite or negative samples refused (they would corrupt quantiles).
    invalid: AtomicU64,
}

/// A log-linear bucketed histogram for non-negative samples (latencies in
/// µs, sizes in bytes): 16 linear sub-buckets per power-of-two decade, so
/// any quantile is exact in rank and within 6.25% in value. Clone freely;
/// all clones share the same cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// Maps a sample to its bucket index.
fn bucket_of(value: f64) -> usize {
    if value < 1.0 {
        return 0;
    }
    let exp = (value.log2().floor() as usize).min(MAX_EXP - 1);
    let sub = (((value / (1u64 << exp) as f64) - 1.0) * SUBS as f64) as usize;
    1 + exp * SUBS + sub.min(SUBS - 1)
}

/// Inclusive upper bound of bucket `i` (the value a quantile that lands in
/// the bucket reports, before clamping to the observed min/max).
fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        return 1.0;
    }
    let exp = (i - 1) / SUBS;
    let sub = (i - 1) % SUBS;
    (1u64 << exp) as f64 * (1.0 + (sub + 1) as f64 / SUBS as f64)
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self(Arc::new(HistogramInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            invalid: AtomicU64::new(0),
        }))
    }

    /// Records one sample. Non-finite or negative samples are refused and
    /// counted in [`HistogramSnapshot::invalid`].
    pub fn record(&self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            self.0.invalid.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.0.sum, |s| s + value);
        atomic_f64_update(&self.0.min, |m| m.min(value));
        atomic_f64_update(&self.0.max, |m| m.max(value));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all cells, for quantiles and exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.0.sum.load(Ordering::Relaxed)),
            min: f64::from_bits(self.0.min.load(Ordering::Relaxed)),
            max: f64::from_bits(self.0.max.load(Ordering::Relaxed)),
            invalid: self.0.invalid.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, sum={}, min={}, max={})", s.count, s.sum, s.min, s.max)
    }
}

/// A point-in-time view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (log-linear layout).
    buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: f64,
    /// Smallest recorded sample (`+inf` when empty).
    pub min: f64,
    /// Largest recorded sample (`-inf` when empty).
    pub max: f64,
    /// Samples refused as non-finite or negative.
    pub invalid: u64,
}

impl HistogramSnapshot {
    /// Ceil-rank quantile: exact in rank, within one bucket (6.25%) in
    /// value, and always inside `[min, max]` of the recorded samples. `None`
    /// when the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return Some(self.min);
        }
        // Zero-based ceil rank, same rule as `percentile_sorted`.
        let rank = (((self.count - 1) as f64) * p).ceil() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Mean of the recorded samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

/// CAS loop applying `f` to an f64 stored as bits.
fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        let shared = c.clone();
        shared.inc();
        assert_eq!(c.get(), 6, "clones share the cell");

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(f64::NAN);
        assert_eq!(g.get(), 3.25, "NaN must never be stored");
    }

    #[test]
    fn bucket_layout_is_monotonic_and_covering() {
        let mut prev_upper = 0.0;
        for i in 0..BUCKETS {
            let u = bucket_upper(i);
            assert!(u > prev_upper, "bucket {i}: {u} <= {prev_upper}");
            prev_upper = u;
        }
        // Every representable sample maps to a bucket whose bound covers it.
        for v in [0.0, 0.5, 1.0, 1.9, 2.0, 3.7, 100.0, 1e6, 1e9, 1e13] {
            let b = bucket_of(v);
            assert!(b < BUCKETS);
            if v < (1u64 << MAX_EXP) as f64 {
                assert!(bucket_upper(b) >= v, "bucket {b} upper {} < {v}", bucket_upper(b));
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_rank_exact_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        for (p, exact) in [(0.5, 500.5), (0.9, 900.0), (0.99, 990.0), (1.0, 1000.0)] {
            let got = s.percentile(p).unwrap();
            assert!(got >= s.min && got <= s.max, "p{p}: {got} outside [min,max]");
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.07, "p{p}: {got} vs {exact} (rel {rel})");
        }
        assert_eq!(s.percentile(0.0), Some(1.0));
    }

    #[test]
    fn histogram_refuses_invalid_samples() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        h.record(2.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.invalid, 3);
        assert_eq!(s.percentile(0.99), Some(2.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.mean(), None);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn percentile_sorted_uses_ceil_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_sorted(&v, 0.0), Some(1.0));
        // Ceil rank never underestimates: p99 of 100 samples is the max
        // (round-to-nearest, which this replaces, reported 99.0 here).
        assert_eq!(percentile_sorted(&v, 0.99), Some(100.0));
        assert_eq!(percentile_sorted(&v, 0.5), Some(51.0));
        assert_eq!(percentile_sorted(&v, 1.0), Some(100.0));
        assert_eq!(percentile_sorted(&[], 0.5), None);
        assert_eq!(percentile_sorted(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    fn sum_and_mean_accumulate() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!((s.sum - 10.0).abs() < 1e-12);
        assert_eq!(s.mean(), Some(2.5));
    }
}
