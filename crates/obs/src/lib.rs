//! Observability substrate for the serving path: metrics and event tracing.
//!
//! The fault-tolerance layer (quarantines, degradation ladder — DESIGN.md
//! §3b) and the fleet engine (sharded queues, backpressure — §4) make
//! runtime decisions that were previously invisible: which predictor the
//! k-NN selector chose, when a stream fell down the ladder, how many samples
//! a full queue evicted. This crate is the substrate that makes those
//! decisions observable without slowing the hot path down:
//!
//! * [`Registry`] — a label-free metric registry handing out lock-free
//!   handles: monotonic [`Counter`]s, f64 [`Gauge`]s, and log-linear
//!   bucketed [`Histogram`]s with ceil-rank p50/p90/p99 extraction.
//!   Recording is a single atomic RMW; the registry lock is touched only at
//!   registration and exposition time.
//! * [`EventRing`] — a bounded, drop-counting ring buffer of structured
//!   [`Event`]s for discrete occurrences: selector decisions, quarantine
//!   enter/exit, degradation-ladder transitions, backpressure drops and
//!   rejects, checkpoint save/restore, stream evictions.
//! * [`expo`] — two exposition formats over both: Prometheus text format
//!   and a self-contained JSON dump (used by the `fleet_throughput` and
//!   `obs_dump` binaries).
//!
//! Naming scheme (enforced by convention, documented in DESIGN.md §5):
//! `<crate>_<subsystem>_<what>[_total|_us]` — e.g.
//! `larp_retrain_failures_total`, `fleet_push_enqueue_us`,
//! `fleet_shard0_queue_depth`. Counters end in `_total`, duration
//! histograms in `_us` (microseconds), gauges are bare nouns.
#![warn(missing_docs)]

pub mod expo;
pub mod metric;
pub mod registry;
pub mod trace;

pub use metric::{percentile_sorted, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricValue, Registry};
pub use trace::{Event, EventKind, EventRing, ServingRung};
