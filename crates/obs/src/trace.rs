//! Structured event tracing: a bounded, drop-counting ring buffer.
//!
//! Metrics answer "how many / how fast"; the event ring answers "what
//! happened, in what order": which predictor the selector switched to, when
//! a stream entered quarantine, which shard rejected samples. Events are
//! discrete and comparatively rare (transitions, not per-sample ticks), so a
//! mutex-guarded ring is cheap; when producers outrun the buffer the oldest
//! events are evicted and counted, never silently lost.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which rung of the degradation ladder served a forecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingRung {
    /// The k-NN-selected pool member (healthy serving).
    Primary,
    /// The lowest-windowed-error non-quarantined fallback member.
    Degraded,
    /// Last-value persistence (whole pool unavailable).
    Persistence,
}

impl ServingRung {
    /// Stable lowercase name, used by both expositions.
    pub fn name(self) -> &'static str {
        match self {
            ServingRung::Primary => "primary",
            ServingRung::Degraded => "degraded",
            ServingRung::Persistence => "persistence",
        }
    }
}

/// What happened. Payloads are plain numbers so the ring stays allocation-
/// free after construction and the vocabulary stays crate-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The serving ladder's choice changed: which pool member now serves
    /// (`None` = persistence) and on which rung.
    SelectorDecision {
        /// Chosen pool member index.
        predictor: Option<u64>,
        /// Rung that produced the choice.
        rung: ServingRung,
    },
    /// A pool member was benched.
    QuarantineEnter {
        /// Pool member index.
        predictor: u64,
        /// Step clock at which it will be re-admitted.
        until_step: u64,
    },
    /// A pool member's quarantine expired.
    QuarantineExit {
        /// Pool member index.
        predictor: u64,
    },
    /// Serving health moved between rungs of the degradation ladder.
    DegradationTransition {
        /// Rung before this step.
        from: ServingRung,
        /// Rung after this step.
        to: ServingRung,
    },
    /// A full queue evicted queued samples (`DropOldest`).
    BackpressureDrop {
        /// Shard whose queue overflowed.
        shard: u64,
        /// Samples evicted in this enqueue call.
        count: u64,
    },
    /// A full queue refused new samples (`RejectNew`, or `Block` during
    /// shutdown).
    BackpressureReject {
        /// Shard whose queue overflowed.
        shard: u64,
        /// Samples refused in this enqueue call.
        count: u64,
    },
    /// A (re)training succeeded.
    RetrainSucceeded {
        /// Wall-clock training duration in microseconds.
        duration_us: u64,
    },
    /// A (re)training failed; the stale model keeps serving under backoff.
    RetrainFailed {
        /// Consecutive failures since the last success.
        consecutive: u64,
    },
    /// A (re)training fit exceeded the slow-retrain threshold.
    SlowRetrain {
        /// Wall-clock fit time in microseconds.
        fit_us: u64,
        /// The threshold it exceeded.
        threshold_us: u64,
    },
    /// A fleet checkpoint was serialized.
    CheckpointSave {
        /// Streams captured.
        streams: u64,
        /// Encoded size in bytes.
        bytes: u64,
    },
    /// A fleet was restored from checkpoint bytes.
    CheckpointRestore {
        /// Streams restored.
        streams: u64,
        /// Checkpoint size in bytes.
        bytes: u64,
    },
    /// A stream was evicted from the fleet.
    StreamEvicted {
        /// True for idle-sweep expiry, false for explicit eviction.
        idle: bool,
    },
    /// A network client connection was accepted.
    NetConnOpened {
        /// Server-assigned connection id.
        conn: u64,
    },
    /// A network client connection ended (clean or not).
    NetConnClosed {
        /// Server-assigned connection id.
        conn: u64,
        /// Requests served on this connection.
        requests: u64,
    },
    /// A frame failed to decode (bad CRC, truncation, oversized length,
    /// unsupported version); the connection is usually closed after this.
    NetMalformedFrame {
        /// Server-assigned connection id.
        conn: u64,
        /// The wire error code sent back (see the netserve crate's
        /// error-code table).
        code: u64,
    },
    /// A write-ahead log was recovered after a restart or crash.
    WalRecovery {
        /// Records replayed past the checkpoint.
        replayed: u64,
        /// Records lost to sequence gaps (corruption, missing segments).
        gaps: u64,
    },
    /// The write-ahead log rotated to a fresh segment.
    WalRotation {
        /// First sequence number of the new segment.
        segment: u64,
    },
    /// A WAL append failed: the in-memory state advanced without a durable
    /// record of it (recovery may disagree with the live engine).
    WalAppendFailed {
        /// Record kind that failed: 0 = samples, 1 = register, 2 = evict.
        kind: u64,
    },
    /// A stream's serving state was spilled to the hibernation store; only
    /// a tombstone stays resident.
    StreamHibernated {
        /// Size of the spilled snapshot in bytes.
        bytes: u64,
    },
    /// A hibernated stream's serving state was restored from the spill
    /// store.
    StreamWoken {
        /// Size of the restored snapshot in bytes.
        bytes: u64,
    },
    /// The background maintenance thread ran an automatic hibernation cycle
    /// that spilled at least one idle stream.
    AutoHibernate {
        /// Streams hibernated in this cycle.
        hibernated: u64,
    },
    /// A stream's serving state was exported for migration to another node.
    StreamExported {
        /// Size of the exported snapshot in bytes.
        bytes: u64,
    },
    /// A stream's serving state was imported from another node's export.
    StreamImported {
        /// Size of the imported snapshot in bytes.
        bytes: u64,
    },
    /// A warm-standby feed batch was accepted from a cluster peer.
    StandbyFeed {
        /// Stream snapshots carried by the batch.
        streams: u64,
        /// WAL-tail records carried by the batch.
        records: u64,
    },
    /// A node took over a dead peer's streams from its standby state.
    FailoverTakeover {
        /// Streams materialized from standby snapshots.
        streams: u64,
        /// WAL-tail samples replayed to close the gap.
        replayed: u64,
    },
    /// The cluster ring was replaced with a newer version.
    RingUpdated {
        /// Version of the adopted ring.
        version: u64,
    },
}

impl EventKind {
    /// Stable snake_case kind name, used by both expositions.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SelectorDecision { .. } => "selector_decision",
            EventKind::QuarantineEnter { .. } => "quarantine_enter",
            EventKind::QuarantineExit { .. } => "quarantine_exit",
            EventKind::DegradationTransition { .. } => "degradation_transition",
            EventKind::BackpressureDrop { .. } => "backpressure_drop",
            EventKind::BackpressureReject { .. } => "backpressure_reject",
            EventKind::RetrainSucceeded { .. } => "retrain_succeeded",
            EventKind::RetrainFailed { .. } => "retrain_failed",
            EventKind::SlowRetrain { .. } => "slow_retrain",
            EventKind::CheckpointSave { .. } => "checkpoint_save",
            EventKind::CheckpointRestore { .. } => "checkpoint_restore",
            EventKind::StreamEvicted { .. } => "stream_evicted",
            EventKind::NetConnOpened { .. } => "net_conn_opened",
            EventKind::NetConnClosed { .. } => "net_conn_closed",
            EventKind::NetMalformedFrame { .. } => "net_malformed_frame",
            EventKind::WalRecovery { .. } => "wal_recovery",
            EventKind::WalRotation { .. } => "wal_rotation",
            EventKind::WalAppendFailed { .. } => "wal_append_failed",
            EventKind::StreamHibernated { .. } => "stream_hibernated",
            EventKind::StreamWoken { .. } => "stream_woken",
            EventKind::AutoHibernate { .. } => "auto_hibernate",
            EventKind::StreamExported { .. } => "stream_exported",
            EventKind::StreamImported { .. } => "stream_imported",
            EventKind::StandbyFeed { .. } => "standby_feed",
            EventKind::FailoverTakeover { .. } => "failover_takeover",
            EventKind::RingUpdated { .. } => "ring_updated",
        }
    }
}

/// One traced occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (gaps reveal evicted events).
    pub seq: u64,
    /// The stream this event belongs to, when stream-scoped.
    pub stream: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug)]
struct RingInner {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    next_seq: AtomicU64,
    dropped: AtomicU64,
}

/// A bounded ring of [`Event`]s. Clone freely; clones share the buffer.
#[derive(Debug, Clone)]
pub struct EventRing(Arc<RingInner>);

impl EventRing {
    /// A ring holding at most `capacity` events (evicting the oldest).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a ring that can hold nothing is a bug at
    /// the construction site.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EventRing capacity must be positive");
        Self(Arc::new(RingInner {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }))
    }

    /// Appends an event, evicting (and counting) the oldest when full.
    /// Returns the event's sequence number.
    pub fn push(&self, stream: Option<u64>, kind: EventKind) -> u64 {
        let seq = self.0.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.0.buf.lock().expect("event ring poisoned");
        if buf.len() == self.0.capacity {
            buf.pop_front();
            self.0.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(Event { seq, stream, kind });
        seq
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.0.buf.lock().expect("event ring poisoned").iter().copied().collect()
    }

    /// Events evicted to make room since construction.
    pub fn dropped(&self) -> u64 {
        self.0.dropped.load(Ordering::Relaxed)
    }

    /// Events recorded since construction (retained + evicted).
    pub fn recorded(&self) -> u64 {
        self.0.next_seq.load(Ordering::Relaxed)
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.0.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_newest_and_counts_drops() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(Some(i), EventKind::QuarantineExit { predictor: i });
        }
        let events = ring.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two evicted");
        assert_eq!(events[2].seq, 4);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.recorded(), 5);
    }

    #[test]
    fn sequence_numbers_are_gapless_until_eviction() {
        let ring = EventRing::new(8);
        for _ in 0..4 {
            ring.push(None, EventKind::RetrainFailed { consecutive: 1 });
        }
        let seqs: Vec<u64> = ring.recent().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        EventRing::new(0);
    }

    #[test]
    fn clones_share_the_buffer() {
        let a = EventRing::new(4);
        let b = a.clone();
        a.push(None, EventKind::CheckpointSave { streams: 1, bytes: 10 });
        assert_eq!(b.recent().len(), 1);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            EventKind::SelectorDecision { predictor: None, rung: ServingRung::Persistence }.name(),
            "selector_decision"
        );
        assert_eq!(ServingRung::Degraded.name(), "degraded");
        assert_eq!(EventKind::NetConnOpened { conn: 1 }.name(), "net_conn_opened");
        assert_eq!(EventKind::NetConnClosed { conn: 1, requests: 9 }.name(), "net_conn_closed");
        assert_eq!(EventKind::NetMalformedFrame { conn: 1, code: 2 }.name(), "net_malformed_frame");
    }
}
