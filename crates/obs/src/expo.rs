//! Exposition: Prometheus text format and a self-contained JSON dump.
//!
//! Both formats render a [`Registry`] snapshot (plus, optionally, an
//! [`EventRing`]) without any serialization dependency. The JSON dump is the
//! machine-readable surface the `fleet_throughput` and `obs_dump` binaries
//! emit; [`validate_json`] is a strict syntax checker used by the CI smoke
//! step to prove the dump parses (it rejects `NaN`/`Infinity` tokens, which
//! are invalid JSON — a NaN metric is a bug, not a formatting choice).

use crate::registry::{metric_name, MetricValue, Registry};
use crate::trace::{Event, EventKind, EventRing};

/// Renders the registry in the Prometheus text exposition format.
///
/// Histograms emit cumulative `_bucket{le="…"}` lines for non-empty buckets
/// (plus the mandatory `+Inf`), `_sum` and `_count`. When `events` is given,
/// two meta-counters describe the ring: `obs_events_recorded_total` and
/// `obs_events_dropped_total`.
pub fn prometheus(registry: &Registry, events: Option<&EventRing>) -> String {
    let mut out = String::new();
    for metric in registry.snapshot() {
        let name = metric_name(&metric).to_string();
        match metric {
            MetricValue::Counter { value, .. } => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
            }
            MetricValue::Gauge { value, .. } => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_f64(value)));
            }
            MetricValue::Histogram { snapshot, .. } => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cum = 0u64;
                for (upper, count) in snapshot.nonzero_buckets() {
                    cum += count;
                    out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cum}\n", fmt_f64(upper)));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snapshot.count));
                out.push_str(&format!("{name}_sum {}\n", fmt_f64(snapshot.sum)));
                out.push_str(&format!("{name}_count {}\n", snapshot.count));
            }
        }
    }
    if let Some(ring) = events {
        out.push_str(&format!(
            "# TYPE obs_events_recorded_total counter\nobs_events_recorded_total {}\n",
            ring.recorded()
        ));
        out.push_str(&format!(
            "# TYPE obs_events_dropped_total counter\nobs_events_dropped_total {}\n",
            ring.dropped()
        ));
    }
    out
}

/// Renders the registry (and, optionally, the event ring) as one JSON
/// object: `{"counters": {...}, "gauges": {...}, "histograms": {...},
/// "events": {...}}`. Histogram quantiles use the ceil-rank rule; empty
/// histograms report `null` statistics rather than NaN.
pub fn json(registry: &Registry, events: Option<&EventRing>) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for metric in registry.snapshot() {
        let name = metric_name(&metric).to_string();
        match metric {
            MetricValue::Counter { value, .. } => {
                counters.push(format!("{}: {value}", quote(&name)));
            }
            MetricValue::Gauge { value, .. } => {
                gauges.push(format!("{}: {}", quote(&name), fmt_f64(value)));
            }
            MetricValue::Histogram { snapshot: s, .. } => {
                let stat = |v: Option<f64>| v.map_or("null".to_string(), fmt_f64);
                histograms.push(format!(
                    "{}: {{\"count\": {}, \"invalid\": {}, \"sum\": {}, \"min\": {}, \
                     \"max\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    quote(&name),
                    s.count,
                    s.invalid,
                    fmt_f64(s.sum),
                    stat((s.count > 0).then_some(s.min)),
                    stat((s.count > 0).then_some(s.max)),
                    stat(s.mean()),
                    stat(s.percentile(0.50)),
                    stat(s.percentile(0.90)),
                    stat(s.percentile(0.99)),
                ));
            }
        }
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"counters\": {{{}}},\n", counters.join(", ")));
    out.push_str(&format!("  \"gauges\": {{{}}},\n", gauges.join(", ")));
    out.push_str(&format!("  \"histograms\": {{{}}},\n", histograms.join(", ")));
    match events {
        Some(ring) => {
            let recent: Vec<String> = ring.recent().iter().map(event_json).collect();
            out.push_str(&format!(
                "  \"events\": {{\"recorded\": {}, \"dropped\": {}, \"recent\": [{}]}}\n",
                ring.recorded(),
                ring.dropped(),
                recent.join(", ")
            ));
        }
        None => out.push_str("  \"events\": null\n"),
    }
    out.push('}');
    out
}

/// One event as a JSON object with its payload fields flattened.
fn event_json(e: &Event) -> String {
    let stream = e.stream.map_or("null".to_string(), |s| s.to_string());
    let payload = match e.kind {
        EventKind::SelectorDecision { predictor, rung } => format!(
            "\"predictor\": {}, \"rung\": {}",
            predictor.map_or("null".to_string(), |p| p.to_string()),
            quote(rung.name())
        ),
        EventKind::QuarantineEnter { predictor, until_step } => {
            format!("\"predictor\": {predictor}, \"until_step\": {until_step}")
        }
        EventKind::QuarantineExit { predictor } => format!("\"predictor\": {predictor}"),
        EventKind::DegradationTransition { from, to } => {
            format!("\"from\": {}, \"to\": {}", quote(from.name()), quote(to.name()))
        }
        EventKind::BackpressureDrop { shard, count }
        | EventKind::BackpressureReject { shard, count } => {
            format!("\"shard\": {shard}, \"count\": {count}")
        }
        EventKind::RetrainSucceeded { duration_us } => format!("\"duration_us\": {duration_us}"),
        EventKind::RetrainFailed { consecutive } => format!("\"consecutive\": {consecutive}"),
        EventKind::SlowRetrain { fit_us, threshold_us } => {
            format!("\"fit_us\": {fit_us}, \"threshold_us\": {threshold_us}")
        }
        EventKind::CheckpointSave { streams, bytes }
        | EventKind::CheckpointRestore { streams, bytes } => {
            format!("\"streams\": {streams}, \"bytes\": {bytes}")
        }
        EventKind::StreamEvicted { idle } => format!("\"idle\": {idle}"),
        EventKind::NetConnOpened { conn } => format!("\"conn\": {conn}"),
        EventKind::NetConnClosed { conn, requests } => {
            format!("\"conn\": {conn}, \"requests\": {requests}")
        }
        EventKind::NetMalformedFrame { conn, code } => {
            format!("\"conn\": {conn}, \"code\": {code}")
        }
        EventKind::WalRecovery { replayed, gaps } => {
            format!("\"replayed\": {replayed}, \"gaps\": {gaps}")
        }
        EventKind::WalRotation { segment } => format!("\"segment\": {segment}"),
        EventKind::WalAppendFailed { kind } => format!("\"kind\": {kind}"),
        EventKind::StreamHibernated { bytes }
        | EventKind::StreamWoken { bytes }
        | EventKind::StreamExported { bytes }
        | EventKind::StreamImported { bytes } => {
            format!("\"bytes\": {bytes}")
        }
        EventKind::AutoHibernate { hibernated } => format!("\"hibernated\": {hibernated}"),
        EventKind::StandbyFeed { streams, records } => {
            format!("\"streams\": {streams}, \"records\": {records}")
        }
        EventKind::FailoverTakeover { streams, replayed } => {
            format!("\"streams\": {streams}, \"replayed\": {replayed}")
        }
        EventKind::RingUpdated { version } => format!("\"version\": {version}"),
    };
    format!(
        "{{\"seq\": {}, \"stream\": {stream}, \"kind\": {}, {payload}}}",
        e.seq,
        quote(e.kind.name())
    )
}

/// Formats an f64 as a JSON-legal number (no NaN/inf — those are caller
/// bugs; they render as `0` with a debug assertion rather than corrupting
/// the exposition).
fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite metric value {v} reached exposition");
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn quote(s: &str) -> String {
    // Metric and kind names are snake_case identifiers; nothing to escape.
    format!("\"{s}\"")
}

/// Strict JSON syntax validation (objects, arrays, strings, numbers,
/// `true`/`false`/`null`; no trailing garbage). Intended for smoke tests:
/// proves an exposition parses without pulling in a serialization crate.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_container(b, pos, b'}', true),
        Some(b'[') => parse_container(b, pos, b']', false),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_container(b: &[u8], pos: &mut usize, close: u8, keyed: bool) -> Result<(), String> {
    *pos += 1; // opening bracket
    skip_ws(b, pos);
    if b.get(*pos) == Some(&close) {
        *pos += 1;
        return Ok(());
    }
    loop {
        if keyed {
            skip_ws(b, pos);
            parse_string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}"));
            }
            *pos += 1;
        }
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(c) if *c == close => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or container close at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite())
        .map(|_| ())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ServingRung;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("larp_retrains_total").add(3);
        r.gauge("fleet_shard0_queue_depth").set(7.0);
        let h = r.histogram("fleet_push_enqueue_us");
        for v in [2.0, 5.0, 9.0, 120.0] {
            h.record(v);
        }
        r
    }

    fn sample_ring() -> EventRing {
        let ring = EventRing::new(16);
        ring.push(Some(3), EventKind::QuarantineEnter { predictor: 1, until_step: 99 });
        ring.push(
            Some(3),
            EventKind::SelectorDecision { predictor: Some(2), rung: ServingRung::Degraded },
        );
        ring.push(None, EventKind::CheckpointSave { streams: 10, bytes: 4096 });
        ring.push(None, EventKind::NetConnOpened { conn: 5 });
        ring.push(None, EventKind::NetMalformedFrame { conn: 5, code: 1 });
        ring.push(None, EventKind::NetConnClosed { conn: 5, requests: 0 });
        ring
    }

    #[test]
    fn prometheus_format_is_wellformed() {
        let text = prometheus(&sample_registry(), Some(&sample_ring()));
        assert!(text.contains("# TYPE larp_retrains_total counter\nlarp_retrains_total 3\n"));
        assert!(text.contains("fleet_shard0_queue_depth 7\n"));
        assert!(text.contains("fleet_push_enqueue_us_count 4\n"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("obs_events_recorded_total 6"));
        // Every non-comment line is `name[{le}] <finite number>`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            let parsed: f64 = value.parse().expect("metric value parses");
            assert!(parsed.is_finite() && parsed >= 0.0, "bad value in {line}");
        }
        // Cumulative buckets are non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            if line.contains("+Inf") {
                assert!(v >= last);
                last = 0;
            } else {
                assert!(v >= last, "cumulative bucket decreased in {line}");
                last = v;
            }
        }
    }

    #[test]
    fn json_dump_validates_and_contains_all_sections() {
        let text = json(&sample_registry(), Some(&sample_ring()));
        validate_json(&text).expect("exposition must parse");
        for key in
            ["counters", "gauges", "histograms", "events", "p99", "quarantine_enter", "net_conn"]
        {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(!text.contains("NaN") && !text.contains("inf"), "non-finite leaked: {text}");
    }

    #[test]
    fn json_without_events_is_still_valid() {
        let text = json(&sample_registry(), None);
        validate_json(&text).unwrap();
        assert!(text.contains("\"events\": null"));
    }

    #[test]
    fn empty_registry_renders_empty_objects() {
        let r = Registry::new();
        let text = json(&r, None);
        validate_json(&text).unwrap();
        assert_eq!(prometheus(&r, None), "");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in ["{", "{\"a\": }", "[1, 2", "{\"a\": NaN}", "{\"a\": 1} extra", "{'a': 1}", ""] {
            assert!(validate_json(bad).is_err(), "accepted malformed {bad:?}");
        }
        for good in ["{}", "[]", "{\"a\": [1, -2.5e3, null, true, \"x\"]}", "3"] {
            validate_json(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
    }
}
