//! Randomized property tests for the metric primitives: histogram quantile
//! bounds across arbitrary distributions, and counter/histogram correctness
//! under concurrent writers (plain threads — the primitives are lock-free
//! atomics, so the only synchronization under test is their own).

use obs::{percentile_sorted, Registry};
use simrng::{Rng64, SplitMix64};

/// Draws a value from one of several shapes so the histogram's log-linear
/// buckets are exercised from the sub-1.0 bucket up to the huge decades.
fn draw(rng: &mut SplitMix64, shape: u64) -> f64 {
    let u = rng.next_f64();
    match shape {
        0 => u,           // uniform [0, 1): the linear bucket
        1 => u * 1_000.0, // uniform spread over ten decades
        2 => {
            (-u.max(1e-12).ln()).exp2() // heavy right tail
            * 8.0
        }
        _ => 1e9 * u * u, // extreme magnitudes
    }
}

#[test]
fn histogram_percentiles_stay_within_min_max_for_any_distribution() {
    for seed in 0..20u64 {
        let mut rng = SplitMix64::new(0xA11CE ^ seed);
        let registry = Registry::new();
        let h = registry.histogram("prop_h");
        let mut values = Vec::with_capacity(512);
        let shape = seed % 4;
        for _ in 0..512 {
            let v = draw(&mut rng, shape);
            h.record(v);
            values.push(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let s = h.snapshot();
        assert_eq!(s.count, 512);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100u32 {
            let p = f64::from(i) / 100.0;
            let q = s.percentile(p).unwrap();
            assert!(
                (s.min..=s.max).contains(&q),
                "seed {seed} p{i}: {q} outside [{}, {}]",
                s.min,
                s.max
            );
            assert!(q >= prev, "seed {seed}: percentile not monotone at p{i}");
            prev = q;
            // The log-linear layout bounds relative quantile error by the
            // sub-bucket width (1/16) for values past the linear bucket.
            let exact = percentile_sorted(&values, p).unwrap();
            if exact >= 1.0 {
                assert!(
                    q >= exact * (1.0 - 1.0 / 16.0) && q <= exact * (1.0 + 1.0 / 16.0),
                    "seed {seed} p{i}: {q} vs exact {exact}"
                );
            }
        }
    }
}

#[test]
fn histogram_sum_and_extremes_match_the_recorded_set() {
    for seed in 0..10u64 {
        let mut rng = SplitMix64::new(0xB0B ^ seed);
        let registry = Registry::new();
        let h = registry.histogram("prop_sum");
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..1000 {
            let v = draw(&mut rng, seed % 4);
            h.record(v);
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!((s.sum - sum).abs() <= sum.abs() * 1e-9);
        assert_eq!(s.min, min);
        assert_eq!(s.max, max);
        assert_eq!(s.invalid, 0);
    }
}

#[test]
fn counters_are_exact_under_concurrent_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let registry = Registry::new();
    // Pre-register so every thread shares the same cells.
    registry.counter("prop_inc");
    registry.counter("prop_add");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                // Re-registration from each thread must resolve to the same
                // cell (the rollup property the fleet relies on).
                let inc = registry.counter("prop_inc");
                let add = registry.counter("prop_add");
                for i in 0..PER_THREAD {
                    inc.inc();
                    add.add((t as u64 + i) % 3);
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(registry.counter("prop_inc").get(), total);
    let expected_add: u64 =
        (0..THREADS as u64).map(|t| (0..PER_THREAD).map(|i| (t + i) % 3).sum::<u64>()).sum();
    assert_eq!(registry.counter("prop_add").get(), expected_add);
}

#[test]
fn histograms_lose_nothing_under_concurrent_recording() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 5_000;
    let registry = Registry::new();
    registry.histogram("prop_conc");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let h = registry.histogram("prop_conc");
                let mut rng = SplitMix64::new(0xC0FFEE + t as u64);
                for _ in 0..PER_THREAD {
                    h.record(rng.next_f64() * 100.0);
                }
            });
        }
    });
    let s = registry.histogram("prop_conc").snapshot();
    assert_eq!(s.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(s.invalid, 0);
    assert!(s.min >= 0.0 && s.max < 100.0);
    // The CAS-accumulated sum must equal the sum of what was recorded to
    // within f64 reassociation error.
    assert!(s.sum > 0.0 && s.sum < 100.0 * (THREADS * PER_THREAD) as f64);
}
