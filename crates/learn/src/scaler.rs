//! Per-column z-score scaling for multi-dimensional feature matrices.
//!
//! §5.1 of the paper: "Since the features under study … have different units of
//! measure, all features are normalized to have zero mean and unit variance."
//! Like the per-series [`timeseries::ZScore`], the scaler is a fitted object so
//! the *training* statistics are applied to test features.

use linalg::Matrix;
use timeseries::ZScore;

use crate::{LearnError, Result};

/// A fitted per-column z-score transform.
#[derive(Debug, Clone)]
pub struct FeatureScaler {
    columns: Vec<ZScore>,
}

impl FeatureScaler {
    /// Fits one z-score per column of `data` (rows = observations).
    pub fn fit(data: &Matrix) -> Self {
        let columns = (0..data.cols())
            .map(|j| {
                let col = data.col(j);
                ZScore::fit(&col).expect("matrix columns are non-empty")
            })
            .collect();
        Self { columns }
    }

    /// Number of feature columns.
    pub fn dim(&self) -> usize {
        self.columns.len()
    }

    /// Scales one observation.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `x.len() != dim()`.
    pub fn transform(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.dim() {
            return Err(LearnError::ShapeMismatch(format!(
                "FeatureScaler::transform: expected dim {}, got {}",
                self.dim(),
                x.len()
            )));
        }
        Ok(x.iter().zip(&self.columns).map(|(&v, z)| z.apply(v)).collect())
    }

    /// Scales every row of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `data.cols() != dim()`.
    pub fn transform_matrix(&self, data: &Matrix) -> Result<Matrix> {
        if data.cols() != self.dim() {
            return Err(LearnError::ShapeMismatch(format!(
                "FeatureScaler::transform_matrix: expected dim {}, got {}",
                self.dim(),
                data.cols()
            )));
        }
        let mut out = Matrix::zeros(data.rows(), data.cols());
        for (i, row) in data.iter_rows().enumerate() {
            for (j, (&v, z)) in row.iter().zip(&self.columns).enumerate() {
                out[(i, j)] = z.apply(v);
            }
        }
        Ok(out)
    }

    /// Un-scales one observation back to the original units.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `z.len() != dim()`.
    pub fn inverse_transform(&self, z: &[f64]) -> Result<Vec<f64>> {
        if z.len() != self.dim() {
            return Err(LearnError::ShapeMismatch(format!(
                "FeatureScaler::inverse_transform: expected dim {}, got {}",
                self.dim(),
                z.len()
            )));
        }
        Ok(z.iter().zip(&self.columns).map(|(&v, s)| s.invert(v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0], vec![4.0, 400.0]])
            .unwrap()
    }

    #[test]
    fn columns_become_zero_mean_unit_variance() {
        let scaler = FeatureScaler::fit(&data());
        let t = scaler.transform_matrix(&data()).unwrap();
        for j in 0..2 {
            let col = t.col(j);
            assert!(timeseries::stats::mean(&col).abs() < 1e-12);
            assert!((timeseries::stats::variance(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaling_equalizes_feature_influence() {
        // Before scaling, column 2 dominates distances by 100x; after, the
        // two columns contribute equally.
        let scaler = FeatureScaler::fit(&data());
        let a = scaler.transform(&[1.0, 100.0]).unwrap();
        let b = scaler.transform(&[2.0, 200.0]).unwrap();
        let d0 = (a[0] - b[0]).abs();
        let d1 = (a[1] - b[1]).abs();
        assert!((d0 - d1).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        let scaler = FeatureScaler::fit(&data());
        let x = [2.5, 250.0];
        let z = scaler.transform(&x).unwrap();
        let back = scaler.inverse_transform(&z).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn shape_validation() {
        let scaler = FeatureScaler::fit(&data());
        assert!(scaler.transform(&[1.0]).is_err());
        assert!(scaler.inverse_transform(&[1.0, 2.0, 3.0]).is_err());
        assert!(scaler.transform_matrix(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn constant_column_passes_through_centered() {
        let m = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let scaler = FeatureScaler::fit(&m);
        let t = scaler.transform(&[5.0, 1.5]).unwrap();
        assert_eq!(t[0], 0.0);
    }
}
