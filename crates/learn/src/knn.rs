//! The k-nearest-neighbour classifier (paper §5.1).
//!
//! Memory-based: "training" stores the labelled points; classification finds
//! the `k` closest training points by Euclidean distance and takes the
//! majority vote. Two interchangeable back-ends implement the neighbour
//! search — brute force (`O(N)` per query, what the paper uses) and a k-d tree
//! (`O(log N)` expected, the fast alternative the paper cites) — and a test
//! asserts they classify identically.
//!
//! # Hot-path layout
//!
//! Training points live in one flat row-major `Arc<[f64]>` (stride =
//! [`dim`](KnnClassifier::dim)) shared with the k-d tree backend, so the
//! index never stores a second copy and queries walk contiguous memory
//! instead of chasing per-point heap pointers. The brute-force search keeps a
//! bounded top-`k` buffer (sorted insertion, as the k-d tree does) rather
//! than sorting all `N` candidates, and the `_into` query variants write into
//! caller-owned scratch so the steady-state serving path performs no heap
//! allocation.

use std::sync::Arc;

use crate::kdtree::KdTree;
use crate::vote::majority_vote;
use crate::{LearnError, Result};

/// Neighbour-search implementation choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnBackend {
    /// Linear scan over all training points. Matches the paper's `O(N)` cost
    /// model and is fastest for small N or high dimensions.
    #[default]
    BruteForce,
    /// Exact k-d tree (Friedman–Bentley–Finkel). Fastest for the post-PCA
    /// 2-dimensional feature spaces of this workspace.
    KdTree,
}

/// A fitted k-NN classifier over a flat struct-of-arrays point store.
pub struct KnnClassifier {
    k: usize,
    /// Row-major `len × dim` training points, shared with the k-d tree.
    points: Arc<[f64]>,
    dim: usize,
    labels: Vec<usize>,
    n_classes: usize,
    backend: KnnBackend,
    tree: Option<KdTree>,
}

impl KnnClassifier {
    /// "Trains" (indexes) the classifier on labelled points.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InvalidParameter`] if `k == 0`;
    /// * [`LearnError::InsufficientData`] if `points` is empty;
    /// * [`LearnError::ShapeMismatch`] if `points`/`labels` lengths differ or
    ///   point dimensions are inconsistent.
    pub fn fit(
        points: Vec<Vec<f64>>,
        labels: Vec<usize>,
        k: usize,
        backend: KnnBackend,
    ) -> Result<Self> {
        if points.is_empty() {
            return Err(LearnError::InsufficientData("k-NN with no training points".into()));
        }
        let dim = points[0].len();
        if let Some(i) = points.iter().position(|p| p.len() != dim) {
            return Err(LearnError::ShapeMismatch(format!(
                "point {i} has dim {}, expected {dim}",
                points[i].len()
            )));
        }
        let mut flat = Vec::with_capacity(points.len() * dim);
        for p in &points {
            flat.extend_from_slice(p);
        }
        Self::fit_flat(flat, dim, labels, k, backend)
    }

    /// [`KnnClassifier::fit`] over an already-flat row-major point buffer
    /// (`points.len() == n · dim`) — the zero-copy path used by snapshot
    /// restore and by training code that builds features flat to begin with.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnnClassifier::fit`], plus
    /// [`LearnError::ShapeMismatch`] if `points.len()` is not a multiple of
    /// `dim`.
    pub fn fit_flat(
        points: Vec<f64>,
        dim: usize,
        labels: Vec<usize>,
        k: usize,
        backend: KnnBackend,
    ) -> Result<Self> {
        if k == 0 {
            return Err(LearnError::InvalidParameter("k must be >= 1".into()));
        }
        if points.is_empty() {
            return Err(LearnError::InsufficientData("k-NN with no training points".into()));
        }
        if dim == 0 {
            return Err(LearnError::ShapeMismatch("points must have dimension >= 1".into()));
        }
        if !points.len().is_multiple_of(dim) {
            return Err(LearnError::ShapeMismatch(format!(
                "flat buffer of {} values is not a multiple of dim {dim}",
                points.len()
            )));
        }
        let n = points.len() / dim;
        if n != labels.len() {
            return Err(LearnError::ShapeMismatch(format!(
                "{n} points vs {} labels",
                labels.len()
            )));
        }
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let points: Arc<[f64]> = points.into();
        let tree = match backend {
            // The tree shares the flat buffer — no second copy of the points.
            KnnBackend::KdTree => Some(KdTree::build_flat(Arc::clone(&points), dim)?),
            KnnBackend::BruteForce => None,
        };
        Ok(Self { k, points, dim, labels, n_classes, backend, tree })
    }

    /// Heap bytes held by the classifier: the shared point store (counted
    /// here, not again by the kd-tree that borrows it), labels, and tree
    /// nodes. Used for per-stream memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<f64>()
            + self.labels.capacity() * std::mem::size_of::<usize>()
            + self.tree.as_ref().map_or(0, KdTree::heap_bytes)
    }

    /// The configured neighbour count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of indexed training points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the classifier has no training points (never after `fit`).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct classes (max label + 1).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The active back-end.
    pub fn backend(&self) -> KnnBackend {
        self.backend
    }

    /// The flat row-major training points (`len() · dim()` values, insertion
    /// order). Together with [`labels`](Self::labels), `k` and the backend
    /// these fully describe the classifier — feed them back through
    /// [`KnnClassifier::fit_flat`] to restore a serialized instance.
    pub fn points_flat(&self) -> &[f64] {
        &self.points
    }

    /// One training point by index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i * self.dim..(i + 1) * self.dim]
    }

    /// The training labels, parallel to [`points_flat`](Self::points_flat).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the `k` nearest `(label, squared_distance)` pairs, nearest first.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `query.len() != dim()`.
    pub fn neighbors(&self, query: &[f64]) -> Result<Vec<(usize, f64)>> {
        let mut out = Vec::with_capacity(self.k + 1);
        self.neighbors_into(query, &mut out)?;
        Ok(out)
    }

    /// [`KnnClassifier::neighbors`] into a caller-owned buffer (cleared
    /// first). A buffer with capacity `k + 1` never reallocates.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `query.len() != dim()`.
    pub fn neighbors_into(&self, query: &[f64], out: &mut Vec<(usize, f64)>) -> Result<()> {
        if query.len() != self.dim {
            return Err(LearnError::ShapeMismatch(format!(
                "query dim {} vs training dim {}",
                query.len(),
                self.dim
            )));
        }
        out.clear();
        match (&self.tree, self.backend) {
            (Some(tree), KnnBackend::KdTree) => tree.nearest_into(query, self.k, out)?,
            _ => {
                // Bounded top-k selection: same sorted-insertion buffer the
                // k-d tree uses, identical (index, distance) output to the
                // old sort-all-N-then-truncate (both realise the k smallest
                // under the total order (distance, index)).
                //
                // Distances are computed a block at a time through the
                // dispatched scan kernel (SIMD under AVX2, 4 points per
                // iteration in the 2-d post-PCA space) into a stack buffer,
                // then offered sequentially — the scan is bit-identical to
                // per-point `squared_distance`, so the selected set and its
                // order match the unblocked loop exactly.
                const BLOCK: usize = 64;
                let mut dists = [0.0f64; BLOCK];
                let n = self.labels.len();
                let mut base = 0;
                while base < n {
                    let m = BLOCK.min(n - base);
                    let rows = &self.points[base * self.dim..(base + m) * self.dim];
                    linalg::kernels::sqdist_scan(query, rows, &mut dists[..m]);
                    for (j, &d) in dists[..m].iter().enumerate() {
                        KdTree::offer(out, self.k, (base + j, d));
                    }
                    base += m;
                }
            }
        }
        for entry in out.iter_mut() {
            entry.0 = self.labels[entry.0];
        }
        Ok(())
    }

    /// Classifies one query by majority vote among its `k` nearest neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `query.len() != dim()`.
    pub fn classify(&self, query: &[f64]) -> Result<usize> {
        let mut scratch = Vec::with_capacity(self.k + 1);
        self.classify_into(query, &mut scratch)
    }

    /// [`KnnClassifier::classify`] using a caller-owned neighbour buffer, for
    /// allocation-free repeated queries.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `query.len() != dim()`.
    pub fn classify_into(&self, query: &[f64], scratch: &mut Vec<(usize, f64)>) -> Result<usize> {
        self.neighbors_into(query, scratch)?;
        Ok(majority_vote(scratch).expect("k >= 1 guarantees a neighbour"))
    }

    /// Classifies a batch of queries, splitting the work across `threads`
    /// scoped worker threads (the training-free k-NN query is embarrassingly
    /// parallel). `threads == 1` runs inline.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InvalidParameter`] if `threads == 0`;
    /// * the first per-query error, if any.
    pub fn classify_batch(&self, queries: &[Vec<f64>], threads: usize) -> Result<Vec<usize>> {
        if threads == 0 {
            return Err(LearnError::InvalidParameter("threads must be >= 1".into()));
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        if threads == 1 || queries.len() < 2 * threads {
            let mut scratch = Vec::with_capacity(self.k + 1);
            return queries.iter().map(|q| self.classify_into(q, &mut scratch)).collect();
        }
        let chunk = queries.len().div_ceil(threads);
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        let mut scratch = Vec::with_capacity(self.k + 1);
                        part.iter()
                            .map(|q| self.classify_into(q, &mut scratch))
                            .collect::<Result<Vec<_>>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("k-NN worker panicked"))
                .collect::<Result<Vec<Vec<usize>>>>()
        });
        Ok(results?.into_iter().flatten().collect())
    }
}

impl std::fmt::Debug for KnnClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnnClassifier")
            .field("k", &self.k)
            .field("points", &self.len())
            .field("classes", &self.n_classes)
            .field("backend", &self.backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::vecops::squared_distance;
    use simrng::{Rng64, Xoshiro256pp};

    /// Two well-separated Gaussian-ish blobs.
    fn blobs(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let (cx, cy, label) = if i % 2 == 0 { (-5.0, -5.0, 0) } else { (5.0, 5.0, 1) };
            pts.push(vec![cx + rng.uniform(-1.0, 1.0), cy + rng.uniform(-1.0, 1.0)]);
            labels.push(label);
        }
        (pts, labels)
    }

    #[test]
    fn separable_blobs_classify_perfectly() {
        let (pts, labels) = blobs(1, 100);
        let knn = KnnClassifier::fit(pts, labels, 3, KnnBackend::BruteForce).unwrap();
        assert_eq!(knn.classify(&[-5.0, -4.5]).unwrap(), 0);
        assert_eq!(knn.classify(&[4.5, 5.5]).unwrap(), 1);
    }

    #[test]
    fn one_nn_returns_label_of_closest_point() {
        let pts = vec![vec![0.0, 0.0], vec![10.0, 0.0]];
        let knn = KnnClassifier::fit(pts, vec![4, 9], 1, KnnBackend::BruteForce).unwrap();
        assert_eq!(knn.classify(&[1.0, 0.0]).unwrap(), 4);
        assert_eq!(knn.classify(&[9.0, 0.0]).unwrap(), 9);
        assert_eq!(knn.n_classes(), 10);
    }

    #[test]
    fn backends_agree_on_every_query() {
        let (pts, labels) = blobs(2, 301);
        let brute =
            KnnClassifier::fit(pts.clone(), labels.clone(), 3, KnnBackend::BruteForce).unwrap();
        let tree = KnnClassifier::fit(pts, labels, 3, KnnBackend::KdTree).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..200 {
            let q = vec![rng.uniform(-8.0, 8.0), rng.uniform(-8.0, 8.0)];
            assert_eq!(brute.classify(&q).unwrap(), tree.classify(&q).unwrap(), "query {q:?}");
        }
    }

    #[test]
    fn bounded_topk_matches_full_sort_reference() {
        // Satellite pin: the bounded top-k selection must return exactly the
        // (index, distance) pairs the old sort-everything path produced —
        // byte-for-byte, including tie order. Labels are set to the point
        // indices so `neighbors` exposes indices directly. Duplicated points
        // force exact distance ties.
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let mut pts: Vec<Vec<f64>> =
            (0..200).map(|_| vec![rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)]).collect();
        for i in 0..20 {
            let dup = pts[i * 3].clone();
            pts.push(dup);
        }
        let n = pts.len();
        let labels: Vec<usize> = (0..n).collect();
        for k in [1, 3, 7, 50, n + 5] {
            let knn =
                KnnClassifier::fit(pts.clone(), labels.clone(), k, KnnBackend::BruteForce).unwrap();
            for _ in 0..50 {
                let q = vec![rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0)];
                // The old implementation: score all N, full sort, truncate.
                let mut reference: Vec<(usize, f64)> =
                    pts.iter().enumerate().map(|(i, p)| (i, squared_distance(&q, p))).collect();
                reference.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                reference.truncate(k);
                assert_eq!(knn.neighbors(&q).unwrap(), reference, "k = {k}");
            }
        }
    }

    #[test]
    fn neighbors_into_reuses_the_buffer_without_reallocating() {
        let (pts, labels) = blobs(9, 120);
        let knn = KnnClassifier::fit(pts, labels, 5, KnnBackend::BruteForce).unwrap();
        let mut buf = Vec::with_capacity(6);
        let ptr = buf.as_ptr();
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        for _ in 0..100 {
            let q = [rng.uniform(-8.0, 8.0), rng.uniform(-8.0, 8.0)];
            knn.neighbors_into(&q, &mut buf).unwrap();
            assert_eq!(buf.len(), 5);
        }
        assert_eq!(ptr, buf.as_ptr(), "k+1-capacity buffer must never grow");
    }

    #[test]
    fn neighbors_are_sorted_nearest_first() {
        let (pts, labels) = blobs(4, 50);
        let knn = KnnClassifier::fit(pts, labels, 5, KnnBackend::BruteForce).unwrap();
        let n = knn.neighbors(&[0.0, 0.0]).unwrap();
        assert_eq!(n.len(), 5);
        for w in n.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn k_exceeding_training_size_uses_all_points() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let knn = KnnClassifier::fit(pts, vec![0, 0, 1], 9, KnnBackend::BruteForce).unwrap();
        // All three points vote: 0 wins 2:1.
        assert_eq!(knn.classify(&[0.5]).unwrap(), 0);
    }

    #[test]
    fn flat_fit_matches_nested_fit() {
        let (pts, labels) = blobs(11, 60);
        let flat: Vec<f64> = pts.iter().flatten().copied().collect();
        let nested = KnnClassifier::fit(pts, labels.clone(), 3, KnnBackend::KdTree).unwrap();
        let from_flat = KnnClassifier::fit_flat(flat, 2, labels, 3, KnnBackend::KdTree).unwrap();
        assert_eq!(nested.points_flat(), from_flat.points_flat());
        assert_eq!(nested.dim(), from_flat.dim());
        for i in 0..nested.len() {
            assert_eq!(nested.point(i), from_flat.point(i));
        }
        let q = [0.5, -0.5];
        assert_eq!(nested.neighbors(&q).unwrap(), from_flat.neighbors(&q).unwrap());
    }

    #[test]
    fn batch_matches_sequential_across_thread_counts() {
        let (pts, labels) = blobs(5, 200);
        let knn = KnnClassifier::fit(pts, labels, 3, KnnBackend::BruteForce).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let queries: Vec<Vec<f64>> =
            (0..97).map(|_| vec![rng.uniform(-8.0, 8.0), rng.uniform(-8.0, 8.0)]).collect();
        let seq = knn.classify_batch(&queries, 1).unwrap();
        for threads in [2, 3, 8] {
            assert_eq!(knn.classify_batch(&queries, threads).unwrap(), seq);
        }
    }

    #[test]
    fn batch_empty_and_validation() {
        let (pts, labels) = blobs(7, 10);
        let knn = KnnClassifier::fit(pts, labels, 1, KnnBackend::BruteForce).unwrap();
        assert_eq!(knn.classify_batch(&[], 4).unwrap(), Vec::<usize>::new());
        assert!(knn.classify_batch(&[vec![0.0, 0.0]], 0).is_err());
    }

    #[test]
    fn fit_validation() {
        assert!(KnnClassifier::fit(vec![], vec![], 3, KnnBackend::BruteForce).is_err());
        assert!(KnnClassifier::fit(vec![vec![1.0]], vec![0], 0, KnnBackend::BruteForce).is_err());
        assert!(KnnClassifier::fit(vec![vec![1.0]], vec![0, 1], 1, KnnBackend::BruteForce).is_err());
        assert!(KnnClassifier::fit(
            vec![vec![1.0], vec![1.0, 2.0]],
            vec![0, 1],
            1,
            KnnBackend::BruteForce
        )
        .is_err());
        // Flat-specific shapes.
        assert!(KnnClassifier::fit_flat(
            vec![1.0, 2.0, 3.0],
            2,
            vec![0],
            1,
            KnnBackend::BruteForce
        )
        .is_err());
        assert!(
            KnnClassifier::fit_flat(vec![1.0, 2.0], 0, vec![0], 1, KnnBackend::BruteForce).is_err()
        );
        assert!(KnnClassifier::fit_flat(vec![], 2, vec![], 1, KnnBackend::BruteForce).is_err());
    }

    #[test]
    fn query_dim_checked() {
        let (pts, labels) = blobs(8, 10);
        let knn = KnnClassifier::fit(pts, labels, 1, KnnBackend::KdTree).unwrap();
        assert!(knn.classify(&[1.0]).is_err());
    }
}
