//! Learning substrate: PCA, k-nearest-neighbour classification, and the
//! supporting machinery (feature scaling, splits, classification metrics).
//!
//! This crate implements §5 of the paper:
//!
//! * [`Pca`] — principal component analysis over the Jacobi eigensolver of the
//!   `linalg` crate, used to project prediction windows from dimension `m`
//!   down to `n` (the paper fixes `n = 2`);
//! * [`KnnClassifier`] — majority-vote k-NN with Euclidean distance over
//!   z-scored features (the paper fixes `k = 3`), with interchangeable
//!   brute-force and kd-tree back-ends;
//! * [`FeatureScaler`] — per-column z-scoring ("all features are normalized to
//!   have zero mean and unit variance");
//! * [`split`] — the paper's "randomly chosen timestamp" contiguous 50/50
//!   train/test split plus k-fold utilities;
//! * [`eval`] — confusion matrices and accuracy (the best-predictor
//!   *forecasting accuracy* the paper reports).
#![warn(missing_docs)]

pub mod eval;
pub mod intern;
pub mod kdtree;
pub mod knn;
pub mod pca;
pub mod scaler;
pub mod split;
pub mod vote;

pub use intern::PcaInterner;
pub use kdtree::KdTree;
pub use knn::{KnnBackend, KnnClassifier};
pub use pca::Pca;
pub use scaler::FeatureScaler;

/// Errors produced by the learning substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// Training data is empty or too small for the requested operation.
    InsufficientData(String),
    /// Invalid hyper-parameter (k = 0, n = 0, ...).
    InvalidParameter(String),
    /// Shape mismatch between training and query data.
    ShapeMismatch(String),
    /// Propagated numerical failure from `linalg`.
    Numerical(String),
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::InsufficientData(m) => write!(f, "insufficient data: {m}"),
            LearnError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            LearnError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            LearnError::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for LearnError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, LearnError>;
