//! Principal component analysis (paper §5.2).
//!
//! PCA here is a fitted linear map: the mean vector `μ` and the top-`n`
//! eigenvectors `V_q` of the training covariance (paper Eq. 7). Fitting uses
//! the Jacobi eigensolver — exact for the tiny `m × m` covariances produced by
//! prediction windows (`m ≤ 16` in all the paper's experiments).

use linalg::{Matrix, SymEigen};

use crate::{LearnError, Result};

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `n × d` projection matrix: rows are the leading unit eigenvectors.
    components: Matrix,
    eigenvalues: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits PCA on `data` (rows = observations) keeping `n` components.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InvalidParameter`] if `n == 0` or `n > d`;
    /// * [`LearnError::InsufficientData`] if `data` has fewer than 2 rows;
    /// * [`LearnError::Numerical`] if the eigensolver fails.
    pub fn fit(data: &Matrix, n: usize) -> Result<Self> {
        let d = data.cols();
        if n == 0 || n > d {
            return Err(LearnError::InvalidParameter(format!(
                "PCA dimension must be in 1..={d}, got {n}"
            )));
        }
        if data.rows() < 2 {
            return Err(LearnError::InsufficientData(format!(
                "PCA needs at least 2 observations, got {}",
                data.rows()
            )));
        }
        let mean = data.column_means();
        let cov = data.covariance();
        let eig = SymEigen::decompose(&cov).map_err(|e| LearnError::Numerical(e.to_string()))?;
        // Covariance eigenvalues are >= 0 up to rounding; clamp tiny negatives.
        let eigenvalues: Vec<f64> = eig.eigenvalues.iter().map(|&l| l.max(0.0)).collect();
        let total_variance: f64 = eigenvalues.iter().sum();

        let mut components = Matrix::zeros(n, d);
        for c in 0..n {
            let v = eig.eigenvector(c);
            components.row_mut(c).copy_from_slice(&v);
        }
        Ok(Self { mean, components, eigenvalues: eigenvalues[..n].to_vec(), total_variance })
    }

    /// Fits PCA keeping the smallest number of components whose cumulative
    /// explained variance reaches `min_fraction` (the paper's "predefined
    /// minimal fraction variance" criterion), with at least one component.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InvalidParameter`] if `min_fraction` is outside `(0, 1]`;
    /// * same data conditions as [`Pca::fit`].
    pub fn fit_fraction(data: &Matrix, min_fraction: f64) -> Result<Self> {
        if !(min_fraction.is_finite() && 0.0 < min_fraction && min_fraction <= 1.0) {
            return Err(LearnError::InvalidParameter(format!(
                "variance fraction must be in (0, 1], got {min_fraction}"
            )));
        }
        // Fit with all components, then truncate.
        let full = Self::fit(data, data.cols())?;
        let total = full.total_variance;
        if total <= 0.0 {
            // Constant data: one component is as good as any.
            return Self::fit(data, 1);
        }
        let mut acc = 0.0;
        let mut n = full.eigenvalues.len();
        for (i, &l) in full.eigenvalues.iter().enumerate() {
            acc += l;
            if acc / total >= min_fraction {
                n = i + 1;
                break;
            }
        }
        Self::fit(data, n)
    }

    /// Reconstructs a fitted projection from its parts (the accessors are the
    /// inverse), for serialized-model restore without refitting.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InvalidParameter`] for an empty projection or a
    ///   non-finite `total_variance`;
    /// * [`LearnError::ShapeMismatch`] if `mean`/`eigenvalues` lengths do not
    ///   match the projection matrix.
    pub fn from_parts(
        mean: Vec<f64>,
        components: Matrix,
        eigenvalues: Vec<f64>,
        total_variance: f64,
    ) -> Result<Self> {
        if components.rows() == 0 || components.cols() == 0 {
            return Err(LearnError::InvalidParameter(
                "PCA restore needs a non-empty projection matrix".into(),
            ));
        }
        if !total_variance.is_finite() {
            return Err(LearnError::InvalidParameter(format!(
                "PCA total variance must be finite, got {total_variance}"
            )));
        }
        if mean.len() != components.cols() {
            return Err(LearnError::ShapeMismatch(format!(
                "mean dim {} vs projection input dim {}",
                mean.len(),
                components.cols()
            )));
        }
        if eigenvalues.len() != components.rows() {
            return Err(LearnError::ShapeMismatch(format!(
                "{} eigenvalues vs {} components",
                eigenvalues.len(),
                components.rows()
            )));
        }
        Ok(Self { mean, components, eigenvalues, total_variance })
    }

    /// The training mean vector `μ`.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The `n × d` projection matrix (rows are unit eigenvectors).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Total training variance (sum of all covariance eigenvalues).
    pub fn total_variance(&self) -> f64 {
        self.total_variance
    }

    /// Number of retained components `n`.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Input dimension `d`.
    pub fn input_dim(&self) -> usize {
        self.components.cols()
    }

    /// Eigenvalues of the retained components (descending).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Heap bytes held by the fitted projection (mean + components +
    /// eigenvalues), for per-stream memory accounting.
    pub fn heap_bytes(&self) -> usize {
        (self.mean.capacity()
            + self.components.rows() * self.components.cols()
            + self.eigenvalues.capacity())
            * std::mem::size_of::<f64>()
    }

    /// Fraction of total training variance captured by each retained component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues.iter().map(|&l| l / self.total_variance).collect()
    }

    /// Projects one observation into the component space.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `x.len() != input_dim()`.
    pub fn transform(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(self.n_components());
        self.transform_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Pca::transform`] into a caller-owned buffer (cleared first), for
    /// allocation-free repeated projection. Bit-identical to `transform`:
    /// each output is the same projection kernel applied to the same
    /// component row, and the kernel itself is bit-identical across its
    /// scalar/AVX2 dispatches.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `x.len() != input_dim()`.
    pub fn transform_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if x.len() != self.input_dim() {
            return Err(LearnError::ShapeMismatch(format!(
                "PCA::transform: expected dim {}, got {}",
                self.input_dim(),
                x.len()
            )));
        }
        out.clear();
        for c in 0..self.n_components() {
            out.push(linalg::kernels::project_dot(self.components.row(c), x, &self.mean));
        }
        Ok(())
    }

    /// Projects every row of `data`, producing an `N × n` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `data.cols() != input_dim()`.
    pub fn transform_matrix(&self, data: &Matrix) -> Result<Matrix> {
        if data.cols() != self.input_dim() {
            return Err(LearnError::ShapeMismatch(format!(
                "PCA::transform_matrix: expected dim {}, got {}",
                self.input_dim(),
                data.cols()
            )));
        }
        let mut out = Matrix::zeros(data.rows(), self.n_components());
        for (i, row) in data.iter_rows().enumerate() {
            let z = self.transform(row)?;
            out.row_mut(i).copy_from_slice(&z);
        }
        Ok(out)
    }

    /// Maps a projected point back to the input space (`μ + V_qᵀ λ`, Eq. 7) —
    /// the least-squares reconstruction.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::ShapeMismatch`] if `z.len() != n_components()`.
    pub fn inverse_transform(&self, z: &[f64]) -> Result<Vec<f64>> {
        if z.len() != self.n_components() {
            return Err(LearnError::ShapeMismatch(format!(
                "PCA::inverse_transform: expected dim {}, got {}",
                self.n_components(),
                z.len()
            )));
        }
        let mut out = self.mean.clone();
        for (c, &zc) in z.iter().enumerate() {
            linalg::kernels::axpy(zc, self.components.row(c), &mut out);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data stretched along the (1, 1) diagonal with slight noise off-axis.
    fn diagonal_data() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 5.0 - 5.0;
            let off = if i % 2 == 0 { 0.1 } else { -0.1 };
            rows.push(vec![t + off, t - off]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn leading_component_finds_diagonal() {
        let pca = Pca::fit(&diagonal_data(), 1).unwrap();
        let c = pca.components.row(0);
        // Unit vector along (1, 1)/sqrt(2) up to sign — a small tilt remains
        // because the alternating off-axis noise correlates weakly with the
        // trend in this finite sample.
        assert!((c[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-2);
        assert!((c[0] - c[1]).abs() < 1e-2);
    }

    #[test]
    fn explained_variance_concentrates_on_first_component() {
        let pca = Pca::fit(&diagonal_data(), 2).unwrap();
        let ratio = pca.explained_variance_ratio();
        assert!(ratio[0] > 0.99, "{ratio:?}");
        assert!((ratio.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transform_centers_data() {
        let data = diagonal_data();
        let pca = Pca::fit(&data, 2).unwrap();
        let projected = pca.transform_matrix(&data).unwrap();
        let means = projected.column_means();
        for m in means {
            assert!(m.abs() < 1e-9, "projected mean {m}");
        }
    }

    #[test]
    fn full_rank_projection_reconstructs_exactly() {
        let data = diagonal_data();
        let pca = Pca::fit(&data, 2).unwrap();
        for row in data.iter_rows() {
            let z = pca.transform(row).unwrap();
            let back = pca.inverse_transform(&z).unwrap();
            for (a, b) in back.iter().zip(row) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rank_one_reconstruction_is_least_squares() {
        // Reconstruction error through 1 component must not exceed the
        // variance orthogonal to the leading direction.
        let data = diagonal_data();
        let pca1 = Pca::fit(&data, 1).unwrap();
        let mut total_err = 0.0;
        for row in data.iter_rows() {
            let z = pca1.transform(row).unwrap();
            let back = pca1.inverse_transform(&z).unwrap();
            total_err += back.iter().zip(row).map(|(a, b)| (a - b).powi(2)).sum::<f64>();
        }
        // Off-diagonal noise is ±0.1 in a direction orthogonal to (1,1):
        // squared distance to the axis is 2 * 0.1^2 = 0.02 per point.
        let expected = 0.02 * data.rows() as f64;
        assert!((total_err - expected).abs() < expected * 0.1, "{total_err} vs {expected}");
    }

    #[test]
    fn fit_fraction_selects_minimal_components() {
        let data = diagonal_data();
        // 99% of variance lives on the diagonal: one component suffices.
        let pca = Pca::fit_fraction(&data, 0.95).unwrap();
        assert_eq!(pca.n_components(), 1);
        // Requiring 99.999% forces the second component in.
        let pca2 = Pca::fit_fraction(&data, 0.99999).unwrap();
        assert_eq!(pca2.n_components(), 2);
    }

    #[test]
    fn fit_fraction_validates() {
        let data = diagonal_data();
        assert!(Pca::fit_fraction(&data, 0.0).is_err());
        assert!(Pca::fit_fraction(&data, 1.5).is_err());
    }

    #[test]
    fn constant_data_fits_with_zero_variance() {
        let data = Matrix::from_rows(&[vec![2.0, 3.0], vec![2.0, 3.0], vec![2.0, 3.0]]).unwrap();
        let pca = Pca::fit(&data, 1).unwrap();
        assert_eq!(pca.explained_variance_ratio(), vec![0.0]);
        // Everything projects to the origin.
        assert_eq!(pca.transform(&[2.0, 3.0]).unwrap(), vec![0.0]);
        let frac = Pca::fit_fraction(&data, 0.9).unwrap();
        assert_eq!(frac.n_components(), 1);
    }

    #[test]
    fn parameter_validation() {
        let data = diagonal_data();
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 3).is_err());
        let one_row = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(Pca::fit(&one_row, 1).is_err());
    }

    #[test]
    fn shape_mismatches_rejected() {
        let pca = Pca::fit(&diagonal_data(), 2).unwrap();
        assert!(pca.transform(&[1.0]).is_err());
        assert!(pca.inverse_transform(&[1.0, 2.0, 3.0]).is_err());
        let wrong = Matrix::zeros(3, 5);
        assert!(pca.transform_matrix(&wrong).is_err());
    }

    #[test]
    fn projection_preserves_pairwise_structure_on_dominant_axis() {
        // Points far apart along the diagonal must stay far apart after a
        // 2 -> 1 reduction; this is the property the k-NN stage relies on.
        let data = diagonal_data();
        let pca = Pca::fit(&data, 1).unwrap();
        let a = pca.transform(data.row(0)).unwrap();
        let b = pca.transform(data.row(49)).unwrap();
        let c = pca.transform(data.row(1)).unwrap();
        let d_far = (a[0] - b[0]).abs();
        let d_near = (a[0] - c[0]).abs();
        assert!(d_far > 5.0 * d_near);
    }
}
