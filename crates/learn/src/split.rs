//! Train/test splitting utilities.
//!
//! The paper's protocol (§7.2): "A time stamp was randomly chosen to divide the
//! performance data … into two parts: 50% of the data was used to train … and
//! the other 50% was used as test set", repeated as "ten-fold cross
//! validation". [`random_contiguous_split`] implements one such draw;
//! [`repeated_splits`] the repetition; [`kfold`] a conventional k-fold for the
//! workspace's own model-selection tests.

use simrng::Rng64;

/// A train/test index split over `0..len`.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Index range `[0, cut)` or the fold complement, depending on the maker.
    pub train: std::ops::Range<usize>,
    /// The held-out range.
    pub test: std::ops::Range<usize>,
}

/// Splits `0..len` at a uniformly random cut point such that both sides hold at
/// least `min_each` elements and the expected split is 50/50: the cut is drawn
/// from `[len/2 - jitter, len/2 + jitter]` where `jitter = len/4`, mimicking
/// the paper's "randomly chosen timestamp" around the trace midpoint.
///
/// Returns `None` if `len < 2 * min_each`.
pub fn random_contiguous_split<R: Rng64 + ?Sized>(
    len: usize,
    min_each: usize,
    rng: &mut R,
) -> Option<Split> {
    if min_each == 0 || len < 2 * min_each {
        return None;
    }
    let mid = len / 2;
    let jitter = (len / 4).min(mid.saturating_sub(min_each));
    let lo = mid - jitter;
    let hi = (mid + jitter).min(len - min_each);
    let cut = if hi > lo { lo + rng.next_below((hi - lo + 1) as u64) as usize } else { lo };
    Some(Split { train: 0..cut, test: cut..len })
}

/// Draws `folds` independent random contiguous splits (the paper's ten-fold
/// repetition with `folds = 10`). Returns fewer than `folds` only when the
/// series is too short for even one split (then the list is empty).
pub fn repeated_splits<R: Rng64 + ?Sized>(
    len: usize,
    min_each: usize,
    folds: usize,
    rng: &mut R,
) -> Vec<Split> {
    (0..folds).filter_map(|_| random_contiguous_split(len, min_each, rng)).collect()
}

/// Conventional contiguous k-fold: fold `i` is the test block, the training
/// range is everything *before* it (time-series safe: never trains on the
/// future). Folds 0 yields an empty training range and is skipped, so this
/// returns `k - 1` splits.
///
/// Returns an empty vector if `k < 2` or `len < k`.
pub fn kfold(len: usize, k: usize) -> Vec<Split> {
    if k < 2 || len < k {
        return Vec::new();
    }
    let fold_size = len / k;
    (1..k)
        .map(|i| {
            let start = i * fold_size;
            let end = if i == k - 1 { len } else { start + fold_size };
            Split { train: 0..start, test: start..end }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::Xoshiro256pp;

    #[test]
    fn random_split_respects_minimums() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..200 {
            let s = random_contiguous_split(100, 20, &mut rng).unwrap();
            assert!(s.train.len() >= 20, "{s:?}");
            assert!(s.test.len() >= 20, "{s:?}");
            assert_eq!(s.train.end, s.test.start);
            assert_eq!(s.test.end, 100);
            assert_eq!(s.train.start, 0);
        }
    }

    #[test]
    fn random_split_is_roughly_balanced() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let cuts: Vec<usize> = (0..500)
            .map(|_| random_contiguous_split(1000, 10, &mut rng).unwrap().train.end)
            .collect();
        let mean = cuts.iter().sum::<usize>() as f64 / cuts.len() as f64;
        assert!((mean - 500.0).abs() < 30.0, "mean cut {mean}");
        // And it actually varies (it is random).
        assert!(cuts.iter().any(|&c| c != cuts[0]));
    }

    #[test]
    fn random_split_too_short_is_none() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        assert!(random_contiguous_split(10, 6, &mut rng).is_none());
        assert!(random_contiguous_split(10, 0, &mut rng).is_none());
    }

    #[test]
    fn repeated_splits_count() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        assert_eq!(repeated_splits(100, 10, 10, &mut rng).len(), 10);
        assert!(repeated_splits(5, 10, 10, &mut rng).is_empty());
    }

    #[test]
    fn kfold_covers_tail_and_never_trains_on_future() {
        let folds = kfold(103, 5);
        assert_eq!(folds.len(), 4);
        for s in &folds {
            assert!(s.train.end == s.test.start);
            assert!(!s.train.is_empty());
        }
        assert_eq!(folds.last().unwrap().test.end, 103);
    }

    #[test]
    fn kfold_degenerate_inputs() {
        assert!(kfold(10, 1).is_empty());
        assert!(kfold(3, 5).is_empty());
    }
}
