//! Majority voting over neighbour labels.
//!
//! The paper classifies "by using the majority vote among the k (an odd
//! number) neighbors". With more than two classes even an odd `k` can tie;
//! the tie-break here is the class of the *nearest* tied neighbour, which is
//! deterministic and degrades gracefully to 1-NN.

/// Returns the winning label among `(label, squared_distance)` neighbour pairs,
/// ordered nearest-first. Ties on count break toward the class whose nearest
/// member is closest (then toward the smaller label for exact distance ties).
///
/// Returns `None` for an empty neighbour list.
pub fn majority_vote(neighbors: &[(usize, f64)]) -> Option<usize> {
    // Allocation-free O(k²) tally: k is tiny (3 in the paper's configuration),
    // so two nested scans beat building a tally table on the heap. Each label
    // is scored at its first occurrence only.
    let mut winner: Option<(usize, usize, f64)> = None; // (label, count, best_dist)
    for (i, &(label, dist)) in neighbors.iter().enumerate() {
        if neighbors[..i].iter().any(|&(seen, _)| seen == label) {
            continue; // already tallied at its first occurrence
        }
        let mut count = 1;
        let mut best = dist;
        for &(other, d) in &neighbors[i + 1..] {
            if other == label {
                count += 1;
                if d < best {
                    best = d;
                }
            }
        }
        // Max count first, then min distance, then min label.
        let beats = match winner {
            None => true,
            Some((w_label, w_count, w_best)) => {
                count > w_count
                    || (count == w_count && (best < w_best || (best == w_best && label < w_label)))
            }
        };
        if beats {
            winner = Some((label, count, best));
        }
    }
    winner.map(|(label, _, _)| label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous() {
        assert_eq!(majority_vote(&[(2, 0.1), (2, 0.2), (2, 0.3)]), Some(2));
    }

    #[test]
    fn simple_majority() {
        assert_eq!(majority_vote(&[(1, 0.1), (0, 0.2), (1, 0.3)]), Some(1));
    }

    #[test]
    fn three_way_tie_goes_to_nearest() {
        assert_eq!(majority_vote(&[(2, 0.1), (0, 0.2), (1, 0.3)]), Some(2));
    }

    #[test]
    fn two_way_tie_goes_to_nearest_member() {
        // Classes 0 and 1 both have 2 votes; class 1 has the single nearest.
        let n = [(1, 0.05), (0, 0.1), (0, 0.2), (1, 0.4)];
        assert_eq!(majority_vote(&n), Some(1));
    }

    #[test]
    fn exact_distance_tie_prefers_smaller_label() {
        assert_eq!(majority_vote(&[(3, 0.5), (1, 0.5)]), Some(1));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(majority_vote(&[]), None);
    }

    #[test]
    fn single_neighbor() {
        assert_eq!(majority_vote(&[(7, 1.0)]), Some(7));
    }
}
