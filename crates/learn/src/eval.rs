//! Classification evaluation: accuracy and confusion matrices.
//!
//! The paper's "best predictor forecasting accuracy" (55.98% for k-NN vs the
//! cumulative-MSE baseline) is plain classification accuracy of the selector
//! against the per-step observed best predictor; [`ConfusionMatrix`] adds the
//! per-class view used in the workspace's own diagnostics.

use crate::{LearnError, Result};

/// Fraction of positions where `predicted[i] == actual[i]`.
///
/// # Errors
///
/// Returns [`LearnError::ShapeMismatch`] if lengths differ, or
/// [`LearnError::InsufficientData`] for empty inputs.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> Result<f64> {
    if predicted.len() != actual.len() {
        return Err(LearnError::ShapeMismatch(format!(
            "accuracy: {} predictions vs {} labels",
            predicted.len(),
            actual.len()
        )));
    }
    if predicted.is_empty() {
        return Err(LearnError::InsufficientData("accuracy over no samples".into()));
    }
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    Ok(hits as f64 / predicted.len() as f64)
}

/// A square confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel label slices. The class count is
    /// inferred as `max(label) + 1` over both slices.
    ///
    /// # Errors
    ///
    /// Same conditions as [`accuracy`].
    pub fn from_labels(predicted: &[usize], actual: &[usize]) -> Result<Self> {
        if predicted.len() != actual.len() {
            return Err(LearnError::ShapeMismatch(format!(
                "confusion: {} predictions vs {} labels",
                predicted.len(),
                actual.len()
            )));
        }
        if predicted.is_empty() {
            return Err(LearnError::InsufficientData("confusion over no samples".into()));
        }
        let n = predicted.iter().chain(actual).copied().max().expect("non-empty") + 1;
        let mut counts = vec![vec![0usize; n]; n];
        for (&p, &a) in predicted.iter().zip(actual) {
            counts[a][p] += 1;
        }
        Ok(Self { counts })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of samples with true class `actual` predicted as `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let trace: usize = (0..self.n_classes()).map(|i| self.counts[i][i]).sum();
        trace as f64 / self.total() as f64
    }

    /// Precision of class `c` (`None` when `c` was never predicted).
    pub fn precision(&self, c: usize) -> Option<f64> {
        let predicted: usize = (0..self.n_classes()).map(|a| self.counts[a][c]).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.counts[c][c] as f64 / predicted as f64)
        }
    }

    /// Recall of class `c` (`None` when `c` never occurred).
    pub fn recall(&self, c: usize) -> Option<f64> {
        let actual: usize = self.counts[c].iter().sum();
        if actual == 0 {
            None
        } else {
            Some(self.counts[c][c] as f64 / actual as f64)
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "actual \\ predicted")?;
        for row in &self.counts {
            for (j, c) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{c:>6}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_known() {
        let a = accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]).unwrap();
        assert!((a - 0.75).abs() < 1e-15);
    }

    #[test]
    fn accuracy_validation() {
        assert!(accuracy(&[0], &[0, 1]).is_err());
        assert!(accuracy(&[], &[]).is_err());
    }

    #[test]
    fn confusion_counts_and_accuracy() {
        let predicted = [0, 0, 1, 1, 2, 2];
        let actual = [0, 1, 1, 1, 2, 0];
        let cm = ConfusionMatrix::from_labels(&predicted, &actual).unwrap();
        assert_eq!(cm.n_classes(), 3);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.count(0, 2), 1);
        assert_eq!(cm.total(), 6);
        assert!((cm.accuracy() - accuracy(&predicted, &actual).unwrap()).abs() < 1e-15);
    }

    #[test]
    fn precision_recall() {
        let predicted = [0, 0, 1, 1];
        let actual = [0, 1, 1, 1];
        let cm = ConfusionMatrix::from_labels(&predicted, &actual).unwrap();
        assert_eq!(cm.precision(0), Some(0.5));
        assert_eq!(cm.recall(0), Some(1.0));
        assert_eq!(cm.precision(1), Some(1.0));
        assert!((cm.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn absent_classes_are_none() {
        let cm = ConfusionMatrix::from_labels(&[0, 0], &[0, 2]).unwrap();
        assert_eq!(cm.precision(1), None);
        assert_eq!(cm.recall(1), None);
        assert_eq!(cm.n_classes(), 3);
    }

    #[test]
    fn display_renders() {
        let cm = ConfusionMatrix::from_labels(&[0, 1], &[1, 1]).unwrap();
        let s = cm.to_string();
        assert!(s.contains("actual"));
    }
}
