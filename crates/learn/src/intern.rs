//! Content-addressed interning of fitted PCA bases.
//!
//! At fleet scale many streams carry the same workload shape — identical
//! synthetic seeds, cloned VMs, mirrored services — and training them produces
//! byte-identical PCA bases. Each basis is small (`(n + 1) · d + n` doubles),
//! but one copy per stream is pure waste when thousands of streams share a
//! signal. [`PcaInterner`] deduplicates them: `intern` returns an existing
//! [`Arc<Pca>`] whenever a *bitwise-identical* basis is already live, so every
//! distinct basis is resident exactly once no matter how many streams use it.
//!
//! The interner holds only [`Weak`] references. It never keeps a basis alive:
//! when the last stream using a basis drops it, the entry dies with it and is
//! pruned on the next `intern` call that hashes to the same bucket.
//!
//! Equality is **bitwise** over every field (`f64::to_bits`), not `==`. Two
//! bases that differ only in the sign of an eigenvector, or by one ULP from a
//! different summation order, are *different* bases — sharing them would
//! change forecasts, and forecasts must be bit-stable under interning.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, Weak};

use crate::Pca;

/// A process-wide (or fleet-wide) deduplication table for fitted PCA bases.
///
/// Cheap to share: clone the surrounding `Arc<PcaInterner>`. All methods take
/// `&self`; an internal mutex guards the table.
#[derive(Debug, Default)]
pub struct PcaInterner {
    /// Content hash → candidate bases with that hash. Collisions are resolved
    /// by full bitwise comparison; dead weaks are pruned in place.
    table: Mutex<HashMap<u64, Vec<Weak<Pca>>>>,
}

impl PcaInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a shared handle to a basis bitwise-identical to `pca`,
    /// registering `pca` itself if none is live yet.
    ///
    /// The returned forecasts are bit-identical to using `pca` directly:
    /// substitution only happens on full bitwise equality of mean,
    /// components, eigenvalues and total variance.
    pub fn intern(&self, pca: Arc<Pca>) -> Arc<Pca> {
        let hash = content_hash(&pca);
        let mut table = self.table.lock().expect("interner poisoned");
        let bucket = table.entry(hash).or_default();
        bucket.retain(|w| w.strong_count() > 0);
        for weak in bucket.iter() {
            if let Some(existing) = weak.upgrade() {
                if Arc::ptr_eq(&existing, &pca) || bitwise_eq(&existing, &pca) {
                    return existing;
                }
            }
        }
        bucket.push(Arc::downgrade(&pca));
        pca
    }

    /// Number of live interned bases (dead entries are excluded). Takes the
    /// lock; intended for accounting and tests, not the hot path.
    pub fn live(&self) -> usize {
        let table = self.table.lock().expect("interner poisoned");
        table.values().flatten().filter(|w| w.strong_count() > 0).count()
    }
}

fn content_hash(p: &Pca) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    p.mean().len().hash(&mut h);
    for &v in p.mean() {
        v.to_bits().hash(&mut h);
    }
    p.components().rows().hash(&mut h);
    p.components().cols().hash(&mut h);
    for &v in p.components().as_slice() {
        v.to_bits().hash(&mut h);
    }
    for &v in p.eigenvalues() {
        v.to_bits().hash(&mut h);
    }
    p.total_variance().to_bits().hash(&mut h);
    h.finish()
}

fn bitwise_eq(a: &Pca, b: &Pca) -> bool {
    a.components().rows() == b.components().rows()
        && a.components().cols() == b.components().cols()
        && a.total_variance().to_bits() == b.total_variance().to_bits()
        && slices_bit_eq(a.mean(), b.mean())
        && slices_bit_eq(a.eigenvalues(), b.eigenvalues())
        && slices_bit_eq(a.components().as_slice(), b.components().as_slice())
}

fn slices_bit_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;

    fn sample_pca(scale: f64) -> Arc<Pca> {
        let rows: Vec<Vec<f64>> =
            (0..20).map(|i| vec![scale * i as f64, scale * (20 - i) as f64]).collect();
        Arc::new(Pca::fit(&Matrix::from_rows(&rows).unwrap(), 2).unwrap())
    }

    #[test]
    fn identical_bases_share_one_allocation() {
        let interner = PcaInterner::new();
        let a = interner.intern(sample_pca(1.0));
        let b = interner.intern(sample_pca(1.0));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(interner.live(), 1);
    }

    #[test]
    fn different_bases_stay_distinct() {
        let interner = PcaInterner::new();
        let a = interner.intern(sample_pca(1.0));
        let b = interner.intern(sample_pca(2.0));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(interner.live(), 2);
    }

    #[test]
    fn dropped_bases_are_pruned() {
        let interner = PcaInterner::new();
        let a = interner.intern(sample_pca(1.0));
        drop(a);
        assert_eq!(interner.live(), 0);
        // Re-interning after the original died registers the new handle.
        let b = interner.intern(sample_pca(1.0));
        assert_eq!(interner.live(), 1);
        drop(b);
    }

    #[test]
    fn re_interning_a_shared_handle_is_identity() {
        let interner = PcaInterner::new();
        let a = interner.intern(sample_pca(1.0));
        let again = interner.intern(Arc::clone(&a));
        assert!(Arc::ptr_eq(&a, &again));
        assert_eq!(interner.live(), 1);
    }
}
