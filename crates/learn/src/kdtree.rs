//! A k-d tree for exact k-nearest-neighbour queries in low dimensions.
//!
//! The paper (§7.3) notes that brute-force k-NN is `O(N)` per query and points
//! to Friedman/Bentley/Finkel's logarithmic-expected-time algorithm as the fast
//! alternative; this module implements that alternative. After PCA the feature
//! space is 2-dimensional, which is k-d tree territory: expected query time is
//! `O(log N)` for the trace sizes used here. The `bench` crate measures the
//! crossover against brute force.
//!
//! Points live in a flat row-major `Arc<[f64]>` shared with whoever built the
//! tree (the classifier, typically): the tree itself stores only the node
//! arena plus indices, never a second copy of the coordinates.

use std::sync::Arc;

use linalg::vecops::squared_distance;

use crate::{LearnError, Result};

/// One node of the tree, stored in a flat arena.
#[derive(Debug, Clone)]
struct Node {
    /// Index of the point (into the original point list) stored at this node.
    point: usize,
    /// Splitting axis at this node.
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// An exact k-d tree over a shared flat point buffer.
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Row-major `len × dim` coordinates, shared (not copied) with the owner.
    points: Arc<[f64]>,
    nodes: Vec<Node>,
    root: Option<usize>,
    dim: usize,
}

impl KdTree {
    /// Builds a balanced tree (median splits) over `points`.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InsufficientData`] if `points` is empty;
    /// * [`LearnError::ShapeMismatch`] if points have inconsistent or zero
    ///   dimension.
    pub fn build(points: Vec<Vec<f64>>) -> Result<Self> {
        if points.is_empty() {
            return Err(LearnError::InsufficientData("KdTree over no points".into()));
        }
        let dim = points[0].len();
        for (i, p) in points.iter().enumerate() {
            if p.len() != dim {
                return Err(LearnError::ShapeMismatch(format!(
                    "point {i} has dim {}, expected {dim}",
                    p.len()
                )));
            }
        }
        let mut flat = Vec::with_capacity(points.len() * dim);
        for p in &points {
            flat.extend_from_slice(p);
        }
        Self::build_flat(flat.into(), dim)
    }

    /// Builds a tree over an already-flat row-major buffer without copying it;
    /// the tree holds a reference to `points`, so a classifier can share one
    /// buffer between its own point store and the index.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InsufficientData`] if `points` is empty;
    /// * [`LearnError::ShapeMismatch`] if `dim == 0` or `points.len()` is not
    ///   a multiple of `dim`.
    pub fn build_flat(points: Arc<[f64]>, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(LearnError::ShapeMismatch("KdTree points must have dimension >= 1".into()));
        }
        if points.is_empty() {
            return Err(LearnError::InsufficientData("KdTree over no points".into()));
        }
        if !points.len().is_multiple_of(dim) {
            return Err(LearnError::ShapeMismatch(format!(
                "flat buffer of {} values is not a multiple of dim {dim}",
                points.len()
            )));
        }
        let n = points.len() / dim;
        let mut tree = Self { nodes: Vec::with_capacity(n), points, root: None, dim };
        let mut idx: Vec<usize> = (0..n).collect();
        tree.root = tree.build_rec(&mut idx, 0);
        Ok(tree)
    }

    /// Coordinates of point `i`.
    fn point(&self, i: usize) -> &[f64] {
        &self.points[i * self.dim..(i + 1) * self.dim]
    }

    fn build_rec(&mut self, idx: &mut [usize], depth: usize) -> Option<usize> {
        if idx.is_empty() {
            return None;
        }
        let axis = depth % self.dim;
        let mid = idx.len() / 2;
        // Median split: O(n) selection on the axis coordinate.
        // total_cmp: a NaN coordinate (corrupted upstream data) degrades the
        // split instead of panicking the build.
        let points = &self.points;
        let dim = self.dim;
        idx.select_nth_unstable_by(mid, |&a, &b| {
            points[a * dim + axis].total_cmp(&points[b * dim + axis])
        });
        let point = idx[mid];
        let node_id = self.nodes.len();
        self.nodes.push(Node { point, axis, left: None, right: None });
        let (lo, rest) = idx.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = self.build_rec(lo, depth + 1);
        let right = self.build_rec(hi, depth + 1);
        self.nodes[node_id].left = left;
        self.nodes[node_id].right = right;
        Some(node_id)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len() / self.dim
    }

    /// Heap bytes held by the tree's own node storage. The point buffer is
    /// shared with its owner (see [`KdTree::build_flat`]) and is deliberately
    /// *not* counted here, so owner + tree accounting never double-counts it.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
    }

    /// Whether the tree is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Point dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Finds the `k` nearest points to `query`, returned as
    /// `(point_index, squared_distance)` sorted by ascending distance
    /// (ties broken by ascending index, matching brute-force ordering).
    ///
    /// Returns fewer than `k` results only when the tree holds fewer points.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InvalidParameter`] if `k == 0`;
    /// * [`LearnError::ShapeMismatch`] if `query.len() != dim()`.
    pub fn nearest(&self, query: &[f64], k: usize) -> Result<Vec<(usize, f64)>> {
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        self.nearest_into(query, k, &mut best)?;
        Ok(best)
    }

    /// [`KdTree::nearest`] into a caller-owned buffer (cleared first). A
    /// buffer with capacity `k + 1` never reallocates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KdTree::nearest`].
    pub fn nearest_into(
        &self,
        query: &[f64],
        k: usize,
        best: &mut Vec<(usize, f64)>,
    ) -> Result<()> {
        if k == 0 {
            return Err(LearnError::InvalidParameter("k must be >= 1".into()));
        }
        if query.len() != self.dim {
            return Err(LearnError::ShapeMismatch(format!(
                "query dim {} vs tree dim {}",
                query.len(),
                self.dim
            )));
        }
        best.clear();
        self.search(self.root, query, k, best);
        Ok(())
    }

    fn search(&self, node: Option<usize>, query: &[f64], k: usize, best: &mut Vec<(usize, f64)>) {
        let Some(id) = node else { return };
        let n = &self.nodes[id];
        let d = squared_distance(query, self.point(n.point));
        Self::offer(best, k, (n.point, d));

        let axis_delta = query[n.axis] - self.point(n.point)[n.axis];
        let (near, far) = if axis_delta <= 0.0 { (n.left, n.right) } else { (n.right, n.left) };
        self.search(near, query, k, best);
        // Prune: only descend the far side if the splitting plane is closer
        // than the current k-th best distance (or we have fewer than k yet).
        let worst = if best.len() < k {
            f64::INFINITY
        } else {
            best.last().expect("non-empty when len >= k").1
        };
        if axis_delta * axis_delta <= worst {
            self.search(far, query, k, best);
        }
    }

    /// Inserts a candidate into the sorted top-k buffer. Shared with the
    /// brute-force backend so both produce identical selection semantics.
    pub(crate) fn offer(best: &mut Vec<(usize, f64)>, k: usize, cand: (usize, f64)) {
        // A candidate ranking at or past position k would be inserted and
        // immediately popped — reject it with one comparison instead of a
        // binary search plus an insert memmove. With a full buffer this is
        // the common case: almost every point of a linear scan loses to the
        // current k-th neighbour.
        if best.len() == k {
            let worst = best[k - 1];
            if worst.1.total_cmp(&cand.1).then(worst.0.cmp(&cand.0)).is_lt() {
                return;
            }
        }
        // Order: ascending distance, then ascending index for determinism.
        let pos = best
            .binary_search_by(|probe| {
                // total_cmp ranks a NaN distance after every finite one, so a
                // corrupted point loses ties instead of aborting the query.
                probe.1.total_cmp(&cand.1).then(probe.0.cmp(&cand.0))
            })
            .unwrap_or_else(|e| e);
        best.insert(pos, cand);
        if best.len() > k {
            best.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng64, Xoshiro256pp};

    /// Brute-force reference with identical ordering semantics.
    fn brute(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> =
            points.iter().enumerate().map(|(i, p)| (i, squared_distance(query, p))).collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.uniform(-10.0, 10.0)).collect()).collect()
    }

    #[test]
    fn single_point_tree() {
        let tree = KdTree::build(vec![vec![1.0, 2.0]]).unwrap();
        let got = tree.nearest(&[0.0, 0.0], 3).unwrap();
        assert_eq!(got, vec![(0, 5.0)]);
    }

    #[test]
    fn nearest_matches_brute_force_2d() {
        let pts = random_points(500, 2, 1);
        let tree = KdTree::build(pts.clone()).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..100 {
            let q = vec![rng.uniform(-12.0, 12.0), rng.uniform(-12.0, 12.0)];
            for k in [1, 3, 7] {
                let got = tree.nearest(&q, k).unwrap();
                let want = brute(&pts, &q, k);
                assert_eq!(got, want, "query {q:?}, k {k}");
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force_higher_dims() {
        for dim in [1, 3, 5] {
            let pts = random_points(200, dim, dim as u64 + 10);
            let tree = KdTree::build(pts.clone()).unwrap();
            let mut rng = Xoshiro256pp::seed_from_u64(99);
            for _ in 0..30 {
                let q: Vec<f64> = (0..dim).map(|_| rng.uniform(-12.0, 12.0)).collect();
                let got = tree.nearest(&q, 5).unwrap();
                let want = brute(&pts, &q, 5);
                assert_eq!(got, want, "dim {dim}");
            }
        }
    }

    #[test]
    fn duplicate_points_are_all_findable() {
        let pts = vec![vec![1.0, 1.0]; 5];
        let tree = KdTree::build(pts).unwrap();
        let got = tree.nearest(&[1.0, 1.0], 5).unwrap();
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|&(_, d)| d == 0.0));
        // Deterministic index order on ties.
        let idx: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn k_larger_than_tree_returns_everything() {
        let pts = random_points(4, 2, 3);
        let tree = KdTree::build(pts).unwrap();
        let got = tree.nearest(&[0.0, 0.0], 10).unwrap();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn validation() {
        assert!(KdTree::build(vec![]).is_err());
        assert!(KdTree::build(vec![vec![]]).is_err());
        assert!(KdTree::build(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(KdTree::build_flat(vec![1.0, 2.0, 3.0].into(), 2).is_err());
        assert!(KdTree::build_flat(Vec::new().into(), 2).is_err());
        let tree = KdTree::build(vec![vec![0.0, 0.0]]).unwrap();
        assert!(tree.nearest(&[0.0], 1).is_err());
        assert!(tree.nearest(&[0.0, 0.0], 0).is_err());
    }

    #[test]
    fn flat_build_shares_the_buffer() {
        let flat: Arc<[f64]> = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0].into();
        let tree = KdTree::build_flat(Arc::clone(&flat), 2).unwrap();
        assert_eq!(tree.len(), 3);
        // Two handles to the same allocation: tree's copy plus ours.
        assert_eq!(Arc::strong_count(&flat), 2);
        assert!(std::ptr::eq(tree.points.as_ptr(), flat.as_ptr()));
    }

    #[test]
    fn collinear_points_on_one_axis() {
        // Degenerate geometry: all points share the y coordinate.
        let pts: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 7.0]).collect();
        let tree = KdTree::build(pts.clone()).unwrap();
        let got = tree.nearest(&[25.2, 7.0], 3).unwrap();
        let want = brute(&pts, &[25.2, 7.0], 3);
        assert_eq!(got, want);
    }
}
