//! Property-based tests for the learning substrate.

use proptest::prelude::*;

use learn::{eval, split, FeatureScaler, KdTree, KnnBackend, KnnClassifier, Pca};
use linalg::Matrix;
use simrng::Xoshiro256pp;

fn points(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-50f64..50.0, dim), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// kd-tree k-NN identical to brute force, including tie ordering.
    #[test]
    fn kdtree_equals_brute_force(pts in points(40, 2), q in proptest::collection::vec(-60f64..60.0, 2), k in 1usize..8) {
        let tree = KdTree::build(pts.clone()).unwrap();
        let got = tree.nearest(&q, k).unwrap();
        let mut all: Vec<(usize, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i, (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        prop_assert_eq!(got, all);
    }

    /// Both k-NN back-ends classify identically for any k.
    #[test]
    fn knn_backends_agree(pts in points(30, 3), q in proptest::collection::vec(-60f64..60.0, 3), k in 1usize..7) {
        let labels: Vec<usize> = (0..pts.len()).map(|i| i % 3).collect();
        let brute = KnnClassifier::fit(pts.clone(), labels.clone(), k, KnnBackend::BruteForce).unwrap();
        let tree = KnnClassifier::fit(pts, labels, k, KnnBackend::KdTree).unwrap();
        prop_assert_eq!(brute.classify(&q).unwrap(), tree.classify(&q).unwrap());
    }

    /// PCA reconstruction error never increases with more components.
    #[test]
    fn pca_reconstruction_monotone(data in proptest::collection::vec(-20f64..20.0, 40)) {
        let m = Matrix::from_vec(10, 4, data).unwrap();
        let mut prev = f64::INFINITY;
        for n in 1..=4 {
            let pca = Pca::fit(&m, n).unwrap();
            let mut err = 0.0;
            for row in m.iter_rows() {
                let z = pca.transform(row).unwrap();
                let back = pca.inverse_transform(&z).unwrap();
                err += row.iter().zip(&back).map(|(a, b)| (a - b).powi(2)).sum::<f64>();
            }
            prop_assert!(err <= prev + 1e-6, "n={n}: {err} > {prev}");
            prev = err;
        }
        // Full rank reconstructs exactly.
        prop_assert!(prev < 1e-9 * m.frobenius_norm().max(1.0));
    }

    /// Explained-variance ratios are a descending probability vector.
    #[test]
    fn pca_variance_ratios_valid(data in proptest::collection::vec(-20f64..20.0, 60)) {
        let m = Matrix::from_vec(12, 5, data).unwrap();
        let pca = Pca::fit(&m, 5).unwrap();
        let r = pca.explained_variance_ratio();
        let total: f64 = r.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
        for w in r.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &x in &r {
            prop_assert!(x >= -1e-12);
        }
    }

    /// FeatureScaler round-trips any in-dimension observation.
    #[test]
    fn scaler_round_trip(data in proptest::collection::vec(-100f64..100.0, 30), x in proptest::collection::vec(-200f64..200.0, 3)) {
        let m = Matrix::from_vec(10, 3, data).unwrap();
        let s = FeatureScaler::fit(&m);
        let z = s.transform(&x).unwrap();
        let back = s.inverse_transform(&z).unwrap();
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-8 * b.abs().max(1.0));
        }
    }

    /// Random contiguous splits partition the index range.
    #[test]
    fn splits_partition(len in 20usize..500, min_each in 1usize..10, seed in 0u64..1000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        if let Some(s) = split::random_contiguous_split(len, min_each, &mut rng) {
            prop_assert_eq!(s.train.start, 0);
            prop_assert_eq!(s.train.end, s.test.start);
            prop_assert_eq!(s.test.end, len);
            prop_assert!(s.train.len() >= min_each && s.test.len() >= min_each);
        } else {
            prop_assert!(len < 2 * min_each || min_each == 0);
        }
    }

    /// Accuracy equals the confusion matrix's trace ratio.
    #[test]
    fn accuracy_consistent_with_confusion(
        labels in proptest::collection::vec(0usize..4, 1..60),
        preds in proptest::collection::vec(0usize..4, 60),
    ) {
        let preds = &preds[..labels.len()];
        let acc = eval::accuracy(preds, &labels).unwrap();
        let cm = eval::ConfusionMatrix::from_labels(preds, &labels).unwrap();
        prop_assert!((acc - cm.accuracy()).abs() < 1e-12);
        prop_assert_eq!(cm.total(), labels.len());
    }
}
