//! Randomized property tests for the learning substrate.
//!
//! Seeded `simrng` loops replace the original proptest strategies so the
//! suite runs without external crates; every case is deterministic per seed.

use learn::{eval, split, FeatureScaler, KdTree, KnnBackend, KnnClassifier, Pca};
use linalg::Matrix;
use simrng::{Rng64, Xoshiro256pp};

fn random_vec(rng: &mut Xoshiro256pp, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

fn points(rng: &mut Xoshiro256pp, n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n).map(|_| random_vec(rng, dim, -50.0, 50.0)).collect()
}

/// kd-tree k-NN identical to brute force, including tie ordering.
#[test]
fn kdtree_equals_brute_force() {
    let mut rng = Xoshiro256pp::seed_from_u64(201);
    for _ in 0..48 {
        let pts = points(&mut rng, 40, 2);
        let q = random_vec(&mut rng, 2, -60.0, 60.0);
        let k = 1 + rng.next_below(7) as usize;
        let tree = KdTree::build(pts.clone()).unwrap();
        let got = tree.nearest(&q, k).unwrap();
        let mut all: Vec<(usize, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i, (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        assert_eq!(got, all);
    }
}

/// Both k-NN back-ends classify identically for any k.
#[test]
fn knn_backends_agree() {
    let mut rng = Xoshiro256pp::seed_from_u64(202);
    for _ in 0..48 {
        let pts = points(&mut rng, 30, 3);
        let q = random_vec(&mut rng, 3, -60.0, 60.0);
        let k = 1 + rng.next_below(6) as usize;
        let labels: Vec<usize> = (0..pts.len()).map(|i| i % 3).collect();
        let brute =
            KnnClassifier::fit(pts.clone(), labels.clone(), k, KnnBackend::BruteForce).unwrap();
        let tree = KnnClassifier::fit(pts, labels, k, KnnBackend::KdTree).unwrap();
        assert_eq!(brute.classify(&q).unwrap(), tree.classify(&q).unwrap());
    }
}

/// PCA reconstruction error never increases with more components.
#[test]
fn pca_reconstruction_monotone() {
    let mut rng = Xoshiro256pp::seed_from_u64(203);
    for _ in 0..48 {
        let m = Matrix::from_vec(10, 4, random_vec(&mut rng, 40, -20.0, 20.0)).unwrap();
        let mut prev = f64::INFINITY;
        for n in 1..=4 {
            let pca = Pca::fit(&m, n).unwrap();
            let mut err = 0.0;
            for row in m.iter_rows() {
                let z = pca.transform(row).unwrap();
                let back = pca.inverse_transform(&z).unwrap();
                err += row.iter().zip(&back).map(|(a, b)| (a - b).powi(2)).sum::<f64>();
            }
            assert!(err <= prev + 1e-6, "n={n}: {err} > {prev}");
            prev = err;
        }
        // Full rank reconstructs exactly.
        assert!(prev < 1e-9 * m.frobenius_norm().max(1.0));
    }
}

/// Explained-variance ratios are a descending probability vector.
#[test]
fn pca_variance_ratios_valid() {
    let mut rng = Xoshiro256pp::seed_from_u64(204);
    for _ in 0..48 {
        let m = Matrix::from_vec(12, 5, random_vec(&mut rng, 60, -20.0, 20.0)).unwrap();
        let pca = Pca::fit(&m, 5).unwrap();
        let r = pca.explained_variance_ratio();
        let total: f64 = r.iter().sum();
        assert!(total <= 1.0 + 1e-9);
        for w in r.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for &x in &r {
            assert!(x >= -1e-12);
        }
    }
}

/// FeatureScaler round-trips any in-dimension observation.
#[test]
fn scaler_round_trip() {
    let mut rng = Xoshiro256pp::seed_from_u64(205);
    for _ in 0..48 {
        let m = Matrix::from_vec(10, 3, random_vec(&mut rng, 30, -100.0, 100.0)).unwrap();
        let x = random_vec(&mut rng, 3, -200.0, 200.0);
        let s = FeatureScaler::fit(&m);
        let z = s.transform(&x).unwrap();
        let back = s.inverse_transform(&z).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-8 * b.abs().max(1.0));
        }
    }
}

/// Random contiguous splits partition the index range.
#[test]
fn splits_partition() {
    let mut rng = Xoshiro256pp::seed_from_u64(206);
    for _ in 0..48 {
        let len = 20 + rng.next_below(480) as usize;
        let min_each = 1 + rng.next_below(9) as usize;
        let seed = rng.next_below(1000);
        let mut split_rng = Xoshiro256pp::seed_from_u64(seed);
        if let Some(s) = split::random_contiguous_split(len, min_each, &mut split_rng) {
            assert_eq!(s.train.start, 0);
            assert_eq!(s.train.end, s.test.start);
            assert_eq!(s.test.end, len);
            assert!(s.train.len() >= min_each && s.test.len() >= min_each);
        } else {
            assert!(len < 2 * min_each || min_each == 0);
        }
    }
}

/// Accuracy equals the confusion matrix's trace ratio.
#[test]
fn accuracy_consistent_with_confusion() {
    let mut rng = Xoshiro256pp::seed_from_u64(207);
    for _ in 0..48 {
        let n = 1 + rng.next_below(59) as usize;
        let labels: Vec<usize> = (0..n).map(|_| rng.next_below(4) as usize).collect();
        let preds: Vec<usize> = (0..n).map(|_| rng.next_below(4) as usize).collect();
        let acc = eval::accuracy(&preds, &labels).unwrap();
        let cm = eval::ConfusionMatrix::from_labels(&preds, &labels).unwrap();
        assert!((acc - cm.accuracy()).abs() < 1e-12);
        assert_eq!(cm.total(), labels.len());
    }
}
