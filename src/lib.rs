//! # LARPredictor — Adaptive Predictor Integration for System Performance Prediction
//!
//! A from-scratch Rust reproduction of Zhang & Figueiredo's IPPS 2007 paper.
//! The headline idea: given a pool of simple time-series predictors (LAST,
//! AR, sliding-window average, …), *learn* which one will be best for the next
//! step — using PCA-reduced prediction windows and a k-NN classifier over
//! historical best-predictor labels — and then run **only** that predictor,
//! instead of running the whole pool forever like the Network Weather Service.
//!
//! This crate is a facade: it re-exports the workspace's crates under stable
//! module names. See each for the full API:
//!
//! * [`larp`] — the LARPredictor itself: training, selection, baselines
//!   (NWS cumulative MSE, windowed MSE, static, oracle), evaluation protocol,
//!   online operation with QA-triggered retraining;
//! * [`predictors`] — the model pool (LAST, AR via Yule–Walker, SW_AVG, plus
//!   the extended EWMA/median/tendency/polynomial/ARI family);
//! * [`learn`] — PCA, k-NN (brute-force and kd-tree), splits, metrics;
//! * [`timeseries`] — series containers, normalisation, windowing, metrics;
//! * [`linalg`] — the numerical kernels (Jacobi eigensolver, Levinson–Durbin);
//! * [`vmsim`] — the simulated VM monitoring testbed (5 VM profiles,
//!   12 metrics each, monitor agent, round-robin database, profiler);
//! * [`fleet`] — the sharded multi-stream serving engine (batching,
//!   backpressure, lifecycle, fleet-wide checkpointing, durable ingestion);
//! * [`store`] — the durable trace store (crash-safe segmented WAL,
//!   memtable, tiered vmkusage-style RRD archives);
//! * [`cluster`] — the cluster tier (consistent-hash placement, live stream
//!   migration, warm-standby failover);
//! * [`simrng`] — deterministic RNG + distributions used everywhere.
//!
//! ## Quickstart
//!
//! ```
//! use larpredictor::larp::{LarpConfig, TrainedLarp};
//! use larpredictor::vmsim::{self, VmProfile};
//!
//! // Generate the paper's VM2 traces and pick the CPU one.
//! let traces = vmsim::traceset::vm_traces(VmProfile::Vm2, 42);
//! let (key, series) = &traces[0];
//! assert_eq!(key.label(), "VM2/CPU_usedsec");
//!
//! // Train on the first half, predict over the second, paper settings.
//! let (train, test) = series.values().split_at(series.len() / 2);
//! let model = TrainedLarp::train(train, &LarpConfig::paper(5)).unwrap();
//! let run = larpredictor::larp::run_selector(&mut model.selector(), &model, test).unwrap();
//! println!("normalized MSE: {:.4}", run.mse);
//! ```

#![warn(missing_docs)]

pub use cluster;
pub use fleet;
pub use larp;
pub use learn;
pub use linalg;
pub use predictors;
pub use simrng;
pub use store;
pub use timeseries;
pub use vmsim;
