#!/usr/bin/env bash
# Local CI gate: everything the hosted workflow runs, offline-safe.
# Usage: scripts/ci.sh [--quick]
#   --quick skips the release build (debug build + tests only).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> kernel dispatch parity (forced-scalar and forced-AVX2 runs)"
# The vectorized kernels contract bit-identical results across dispatch modes
# (DESIGN.md §13). Re-run the numeric crates with each mode forced; "avx2"
# silently degrades to scalar on hosts without it, so both exports are safe
# everywhere. linalg carries the to_bits parity proptests; larp + fleet prove
# the serving pipeline end-to-end under each kernel set.
LARP_KERNELS=scalar cargo test -q -p linalg -p larp -p fleet
LARP_KERNELS=avx2 cargo test -q -p linalg

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> hotpath_micro regression gate (serving-step + retrain ns/iter)"
  # Median ns/iter for the two rows the fleet hot path actually spends its
  # time in, compared against the committed baseline. The 3x ceiling is
  # deliberately loose for a microbench (CPU scaling, cache state) — it
  # catches the step or the fit falling off a cliff, not percent-level drift.
  HOT_JSON="$(cargo bench -q -p larp-bench --bench hotpath_micro -- --json 2>/dev/null | sed -n '/^{/,/^}/p')"
  echo "$HOT_JSON"
  for row in "hot_online_step/push_with_scratch" "hot_retrain/train_40_tail"; do
    NOW_NS="$(grep -o "\"$row\": [0-9.]*" <<<"$HOT_JSON" | grep -o '[0-9.]*$')"
    BASE_NS="$(grep -o "\"$row\": [0-9.]*" results/BENCH_hotpath.json | grep -o '[0-9.]*$')"
    if ! awk -v now="$NOW_NS" -v base="$BASE_NS" 'BEGIN { exit (now <= base * 3.0) ? 0 : 1 }'; then
      echo "hotpath regression: $row at ${NOW_NS}ns/iter > 3x committed baseline ${BASE_NS}ns"
      exit 1
    fi
    echo "hotpath: $row ${NOW_NS}ns/iter (baseline ${BASE_NS}ns, ceiling 3x)"
  done

  echo "==> fleet_throughput smoke + bench-regression gate (1000 streams, 4 shards)"
  # Brief run, then compare samples/sec against the committed baseline in
  # results/BENCH_fleet.json. The 70% floor tolerates host differences and
  # scheduler noise while still catching the kind of large regression an
  # accidental allocation or a quadratic slip in the hot path produces; the
  # baseline is an 8-run median measured on the reference container, so the
  # floor is tighter than the old 60% without tripping on run-to-run noise.
  FLEET_JSON="$(cargo run --release -q -p fleet --bin fleet_throughput -- --streams 1000 --samples 50 --shards 4)"
  echo "$FLEET_JSON"
  SMOKE_SPS="$(grep -o '"samples_per_sec": [0-9]*' <<<"$FLEET_JSON" | grep -o '[0-9]*$')"
  BASELINE_SPS="$(grep -o '"samples_per_sec": [0-9]*' results/BENCH_fleet.json | head -1 | grep -o '[0-9]*$')"
  FLOOR=$(( BASELINE_SPS * 70 / 100 ))
  if [[ "$SMOKE_SPS" -lt "$FLOOR" ]]; then
    echo "fleet_throughput regression: $SMOKE_SPS samples/s < 70% of committed baseline $BASELINE_SPS"
    exit 1
  fi
  echo "fleet_throughput: $SMOKE_SPS samples/s (baseline $BASELINE_SPS, floor $FLOOR)"

  echo "==> retrain-pool bit-identity smoke (pooled vs inline A/B, both kernel modes)"
  # The off-worker retrain pool must be a pure scheduling change: the A/B
  # checkpoints every pooled/inline pair and the binary exits non-zero on any
  # byte divergence. Run once per kernel dispatch mode.
  for mode in avx2 scalar; do
    AB_RETRAIN_JSON="$(LARP_KERNELS=$mode cargo run --release -q -p fleet --bin fleet_throughput -- \
        --streams 200 --samples 120 --shards 2 --ab-retrain)"
    grep -qF '"bit_identical": true' <<<"$AB_RETRAIN_JSON" \
      || { echo "retrain pool broke bit-identity under LARP_KERNELS=$mode"; exit 1; }
    echo "ab-retrain ($mode): $(grep -o '"speedup": [0-9.]*' <<<"$AB_RETRAIN_JSON"), bit_identical"
  done

  echo "==> mem_bench steady-state + bytes/stream regression gate (20000 streams)"
  # Steady-state fleet (hot working set live, cold majority hibernated) under
  # the diet config; the headline bytes_per_stream is accounted heap over all
  # registered streams. The 120% ceiling against the committed baseline in
  # results/BENCH_mem.json catches per-stream state quietly growing back —
  # the accounting is deterministic (capacities, not RSS), so the margin only
  # needs to absorb allocator-rounding differences, not scheduler noise.
  MEM_JSON="$(cargo run --release -q -p fleet --bin mem_bench -- --streams 20000)"
  echo "$MEM_JSON"
  MEM_BPS="$(grep -o '"bytes_per_stream": [0-9]*' <<<"$MEM_JSON" | grep -o '[0-9]*$')"
  MEM_BASE="$(grep -o '"bytes_per_stream": [0-9]*' results/BENCH_mem.json | grep -o '[0-9]*$')"
  MEM_CEIL=$(( MEM_BASE * 120 / 100 ))
  if [[ "$MEM_BPS" -gt "$MEM_CEIL" ]]; then
    echo "memory regression: $MEM_BPS bytes/stream > 120% of committed baseline $MEM_BASE"
    exit 1
  fi
  echo "mem_bench: $MEM_BPS bytes/stream (baseline $MEM_BASE, ceiling $MEM_CEIL)"

  echo "==> 1M-stream hibernation smoke under a fixed RSS cap (~4 min)"
  # One million diet streams cycle through the engine cohort by cohort
  # (register, train, hibernate), so only one cohort's serving stacks are
  # ever resident; the bin samples /proc/self/statm after every cohort and
  # exits non-zero the moment RSS crosses the cap. Reference-container peak
  # is ~950 MiB; the 1200 MiB cap leaves headroom for allocator variation
  # while staying far below the ~5.5 GiB a million live streams would cost.
  SMOKE_JSON="$(cargo run --release -q -p fleet --bin mem_bench -- \
      --smoke1m --rounds 36 --cohort 50000 --rss-cap-mb 1200)"
  echo "$SMOKE_JSON"
  for field in '"streams_total": 1000000' '"rss_cap_ok": true' '"probe_woken": true'; do
    grep -qF "$field" <<<"$SMOKE_JSON" || { echo "1M smoke report missing $field"; exit 1; }
  done

  echo "==> obs_dump smoke (fault-injected fleet, both exposition formats)"
  # JSON: the bin validates its own output with obs::expo::validate_json
  # (strict parser, rejects NaN/Infinity) before printing; we additionally
  # assert the core metric families made it into the dump.
  OBS_JSON="$(cargo run --release -q -p fleet --bin obs_dump -- --streams 8 --samples 120 --shards 2 --format json)"
  for metric in larp_selections_total larp_faults_sanitized_total \
                fleet_push_accepted_total fleet_push_enqueue_us \
                recorded; do
    grep -q "\"$metric\"" <<<"$OBS_JSON" || { echo "obs_dump JSON missing $metric"; exit 1; }
  done
  # Prometheus: every sample line must carry a finite, non-negative value.
  OBS_PROM="$(cargo run --release -q -p fleet --bin obs_dump -- --streams 8 --samples 120 --shards 2 --format prometheus)"
  grep -q '^larp_selections_total ' <<<"$OBS_PROM" || { echo "obs_dump prometheus missing larp_selections_total"; exit 1; }
  if grep -v '^#' <<<"$OBS_PROM" | awk '{v=$NF} v != v+0 || v < 0 {print "bad sample: " $0; bad=1} END {exit bad}'; then :; else
    echo "obs_dump prometheus has NaN or negative samples"; exit 1
  fi
  echo "==> net_loadgen smoke + bench-regression gate (reactor server, 8 conns)"
  # Starts an ephemeral netserve server on the reactor event loops, drives 8
  # pipelined connections for ~1s (first 0.25s excluded as warmup), scrapes
  # /metrics and /healthz from the HTTP shim mid-run, self-validates the
  # JSON report (strict no-NaN parser), and asserts lossless ingestion.
  NET_JSON="$(cargo run --release -q -p netserve --bin net_loadgen -- \
      --conns 8 --streams 200 --shards 4 --duration 1 --warmup 0.25 \
      --out target/BENCH_net_ci.json)"
  for field in '"healthz_ok": true' '"metrics_scrape_ok": true' \
               '"rejected": 0' '"rtt_p99_us"' '"samples_per_sec"' \
               '"net_op_push_batch_total"'; do
    grep -qF "$field" <<<"$NET_JSON" || { echo "net_loadgen report missing $field"; exit 1; }
  done
  # Regression gate against the committed 8-connection sweep point in
  # results/BENCH_net.json. Floors/ceilings are deliberately loose (the
  # bench host shows +/-25% run-to-run noise and CI runs hot after a full
  # build): 40% throughput floor catches an accidental per-request
  # allocation or a lost fast path; 5x p99 ceiling catches the event loop
  # stalling (a blocking call on the loop shows up as 10-100x, not 5x).
  NET_BASE_POINT="$(grep -o '{"conns": 8,[^}]*}' results/BENCH_net.json)"
  NET_BASE_SPS="$(grep -o '"samples_per_sec": [0-9]*' <<<"$NET_BASE_POINT" | grep -o '[0-9]*$')"
  NET_BASE_P99="$(grep -o '"rtt_p99_us": [0-9]*' <<<"$NET_BASE_POINT" | grep -o '[0-9]*$')"
  NET_SPS="$(grep -o '"samples_per_sec": [0-9]*' <<<"$NET_JSON" | head -1 | grep -o '[0-9]*$')"
  NET_P99="$(grep -o '"rtt_p99_us": [0-9]*' <<<"$NET_JSON" | head -1 | grep -o '[0-9]*$')"
  NET_FLOOR=$(( NET_BASE_SPS * 40 / 100 ))
  NET_CEIL=$(( NET_BASE_P99 * 5 ))
  if [[ "$NET_SPS" -lt "$NET_FLOOR" ]]; then
    echo "net serving regression: $NET_SPS samples/s < 40% of committed baseline $NET_BASE_SPS"
    exit 1
  fi
  if [[ "$NET_P99" -gt "$NET_CEIL" ]]; then
    echo "net latency regression: rtt_p99 ${NET_P99}us > 5x committed baseline ${NET_BASE_P99}us"
    exit 1
  fi
  echo "net_loadgen: $NET_SPS samples/s (floor $NET_FLOOR), rtt_p99 ${NET_P99}us (ceiling $NET_CEIL)"

  echo "==> connection-storm smoke (1000 simultaneous connections)"
  # 1000 clients connect at once, all must handshake, the HTTP shim must
  # still answer /healthz (and report the full count) under the storm, and
  # teardown must drain the connection gauge back to zero. Needs ~2k fds;
  # raise the soft limit if the hard limit allows, otherwise scale down.
  STORM_N=1000
  HARD_FD="$(ulimit -Hn)"
  if [[ "$HARD_FD" != "unlimited" && "$HARD_FD" -lt 2200 ]]; then
    STORM_N=$(( (HARD_FD - 200) / 2 ))
    echo "fd hard limit $HARD_FD too low for 1000 conns; storming $STORM_N instead"
  fi
  ulimit -n "$(ulimit -Hn)" 2>/dev/null || true
  STORM_JSON="$(cargo run --release -q -p netserve --bin net_loadgen -- --storm "$STORM_N")"
  echo "$STORM_JSON"
  for field in "\"storm_conns\": $STORM_N" '"healthz_ok": true' '"teardown_ok": true'; do
    grep -qF "$field" <<<"$STORM_JSON" || { echo "storm report missing $field"; exit 1; }
  done

  echo "==> crash_recovery kill-test (kill -9 a durable server mid-traffic, replay, verify)"
  # Spawns a durable netserve server as a child process, kill -9s it while a
  # client is pushing, recovers the WAL + checkpoint, and asserts zero acked
  # batches lost and bit-identical post-recovery forecasts against an
  # uninterrupted reference engine. The binary exits non-zero on any loss.
  CRASH_JSON="$(cargo run --release -q -p netserve --bin crash_recovery -- \
      --out target/BENCH_recovery_ci.json)"
  echo "$CRASH_JSON"
  for field in '"acked_batches"' '"recovered_batches"' '"bit_identical": true' \
               '"gap_records": 0'; do
    grep -qF "$field" <<<"$CRASH_JSON" || { echo "crash_recovery report missing $field"; exit 1; }
  done

  echo "==> cluster kill-failover smoke (3 nodes, live drain + kill -9 + warm-standby takeover)"
  # Spawns three cluster nodes as child processes, live-drains one over the
  # wire (MigrateOut/MigrateIn/Evict), kill -9s another mid-traffic, fails
  # its range over to the warm-standby heir, and asserts zero acked-sample
  # loss plus bit-identical forecasts against an uninterrupted single-engine
  # reference. The binary exits non-zero on any loss or divergence; the gap
  # ceiling below additionally bounds the client-visible outage (reference
  # host measures ~0.8s — kill detection + ring publish + one retry round).
  CLUSTER_JSON="$(cargo run --release -q -p cluster --bin cluster_bench -- \
      --out target/BENCH_cluster_ci.json)"
  echo "$CLUSTER_JSON"
  for field in '"nodes": 3' '"acked_lost": 0' '"bit_identical": true' \
               '"samples_per_sec"' '"migration_streams_per_sec"' '"failover_gap_ms"'; do
    grep -qF "$field" <<<"$CLUSTER_JSON" || { echo "cluster_bench report missing $field"; exit 1; }
  done
  GAP_MS="$(grep -o '"failover_gap_ms": [0-9]*' <<<"$CLUSTER_JSON" | grep -o '[0-9]*$')"
  if [[ "$GAP_MS" -gt 10000 ]]; then
    echo "failover outage regression: client-visible gap ${GAP_MS}ms > 10s ceiling"
    exit 1
  fi
  echo "cluster_bench: failover gap ${GAP_MS}ms (ceiling 10000ms)"

  echo "==> durable-path throughput gate (interleaved durability A/B)"
  # The committed baseline (results/BENCH_wal.json) holds the honest number;
  # this floor is deliberately loose — it catches the durable path falling
  # off a cliff (sync-per-append, accidental copies), not scheduler noise.
  AB_JSON="$(cargo run --release -q -p fleet --bin fleet_throughput -- \
      --streams 500 --samples 60 --shards 4 --ab-durability)"
  echo "$AB_JSON"
  RETAINED="$(grep -o '"durable_retained": [0-9.]*' <<<"$AB_JSON" | grep -o '[0-9.]*$')"
  if ! awk -v r="$RETAINED" 'BEGIN { exit (r >= 0.5) ? 0 : 1 }'; then
    echo "durable path retained only ${RETAINED}x of in-memory throughput (< 0.5 floor)"
    exit 1
  fi
fi

echo "CI gate passed."
