#!/usr/bin/env bash
# Local CI gate: everything the hosted workflow runs, offline-safe.
# Usage: scripts/ci.sh [--quick]
#   --quick skips the release build (debug build + tests only).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> fleet_throughput smoke (1000 streams, 4 shards)"
  cargo run --release -p fleet --bin fleet_throughput -- --streams 1000 --samples 50 --shards 4
fi

echo "CI gate passed."
