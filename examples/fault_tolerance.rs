//! Fault tolerance: serving a corrupted monitor stream through the guarded
//! online stack.
//!
//! A VM CPU trace is corrupted at increasing fault rates — dropped samples,
//! multi-minute gaps, NaN reads, sentinel constants, stuck sensors, spike
//! outliers, and duplicated samples, all injected deterministically by
//! `vmsim::FaultInjector`. Each faulted stream is served by
//! `Sanitizer` → `OnlineLarp`: the sanitizer repairs the timeline, the
//! degradation ladder (k-NN choice → lowest-error pool member → last-value
//! persistence) keeps forecasts flowing, and quarantine + retrain backoff
//! contain misbehaving predictors.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use larpredictor::larp::{GuardedLarp, IngestConfig, LarpConfig, QualityAssuror};
use larpredictor::vmsim::{self, FaultConfig, FaultInjector, MetricKind, VmProfile};

const TRAIN_SIZE: usize = 96;
const SEED: u64 = 7;

fn main() {
    let clean = vmsim::traceset::vm_traces(VmProfile::Vm2, SEED)
        .into_iter()
        .find(|(k, _)| k.metric == MetricKind::CpuUsedSec)
        .map(|(_, s)| s.values().to_vec())
        .expect("VM2 exposes a CPU trace");
    println!("VM2 CPU trace: {} samples\n", clean.len());
    println!(
        "{:>10} {:>9} {:>10} {:>10} {:>12} {:>11}",
        "fault rate", "injected", "sanitized", "forecasts", "availability", "mse"
    );

    for rate in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let mut injector =
            FaultInjector::new(FaultConfig::uniform(rate), SEED).expect("valid fault config");
        let stream = injector.corrupt_series(&clean, 0);

        let mut stack = GuardedLarp::new(
            IngestConfig::default(),
            LarpConfig::paper(5),
            TRAIN_SIZE,
            QualityAssuror::new(40.0, 12, 6).expect("valid QA parameters"),
        )
        .expect("valid stack config");

        let mut steps = 0usize;
        let mut forecasts = 0usize;
        let mut pending: Option<f64> = None;
        let mut sq_sum = 0.0;
        let mut scored = 0usize;
        for &(minute, value) in &stream {
            for step in stack.ingest(minute, value) {
                steps += 1;
                if let (Some(f), true) = (pending.take(), value.is_finite()) {
                    sq_sum += (f - value).powi(2);
                    scored += 1;
                }
                if let Some(f) = step.forecast {
                    assert!(f.is_finite(), "the ladder never emits non-finite forecasts");
                    forecasts += 1;
                    pending = Some(f);
                }
            }
        }
        // Forecasts start at the training step itself, so the first
        // TRAIN_SIZE - 1 steps are the only ineligible ones.
        let post_warmup = steps.saturating_sub(TRAIN_SIZE - 1).max(1);
        println!(
            "{:>9.0}% {:>9} {:>10} {:>10} {:>11.1}% {:>11.3}",
            rate * 100.0,
            injector.counts().total(),
            stack.sanitizer().stats().faults_sanitized(),
            forecasts,
            100.0 * forecasts as f64 / post_warmup as f64,
            sq_sum / scored.max(1) as f64,
        );
    }

    println!(
        "\nEven at a 20% combined fault rate the stack keeps serving finite\n\
         forecasts: the sanitizer absorbs timeline damage (gaps, duplicates,\n\
         NaN, sentinels, spikes) and the degradation ladder covers whatever\n\
         reaches the predictor pool."
    );
}
