//! Remote serving: the fleet engine behind a TCP wire protocol.
//!
//! Starts a netserve server on an ephemeral localhost port, then talks to
//! it the way a remote scheduler would — through a [`netserve::Client`],
//! never touching the engine in-process: register a stream, push a noisy
//! workload trace, read predictions, poll fleet health, download a
//! checkpoint, and finally ask the server to shut down over the wire.
//!
//! Run with: `cargo run --example remote_serving`

use std::sync::Arc;

use fleet::{FleetConfig, FleetEngine};
use netserve::{Client, ClientConfig, Server, ServerConfig};
use vmsim::fleet_signal;

fn main() {
    // Server side: a 2-shard fleet engine fronted by the wire protocol.
    // Port 0 picks an ephemeral port; a real deployment would bind a fixed
    // address, e.g. "0.0.0.0:7070".
    let engine = Arc::new(
        FleetEngine::new(FleetConfig { shards: 2, fleet_seed: 42, ..FleetConfig::default() })
            .expect("valid fleet config"),
    );
    let server =
        Server::start(Arc::clone(&engine), ServerConfig::default()).expect("server starts");
    println!("serving on     {}", server.addr());
    if let Some(http) = server.http_addr() {
        println!("observability  http://{http}/metrics and /healthz");
    }

    // Client side: everything below uses only the network address.
    let mut client =
        Client::connect(server.addr(), ClientConfig::default()).expect("client connects");
    let info = client.server_info().expect("handshake completed");
    println!(
        "handshake      protocol v{} | {} shards | {} streams",
        info.version, info.shards, info.streams
    );

    // One VM's CPU-load stream: register, then feed an hour of samples.
    let vm = 7001;
    client.register(vm).expect("register stream");
    let mut signal = fleet_signal(42, vm);
    let samples: Vec<(u64, f64)> = (0..600).map(|minute| (vm, signal.sample(minute))).collect();
    for chunk in samples.chunks(128) {
        let outcome = client.push_batch(chunk).expect("push batch");
        assert_eq!(outcome.rejected, 0, "default policy never rejects here");
    }

    // Ingestion is asynchronous: push_batch acks once samples are queued,
    // and shard workers drain in the background. Poll fleet health until
    // every sample has been applied so the reads below are settled.
    while client.health().expect("health").steps < samples.len() as u64 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    let prediction = client.predict(vm).expect("predict");
    println!(
        "prediction     vm {vm}: forecast {:?} | health {:?} | {} steps served",
        prediction.forecast, prediction.health, prediction.steps
    );

    let info = client.stream_info(vm).expect("stream info");
    println!(
        "stream info    shard {} | next minute {} | retrains {}",
        info.shard, info.next_minute, info.retrains
    );

    let health = client.health().expect("health");
    println!(
        "fleet health   {} streams | {} shards | {} steps | {} forecasts | {} degraded",
        health.streams, health.shards, health.steps, health.forecasts, health.degraded_streams
    );

    // Disaster-recovery path: the checkpoint travels over the wire and can
    // seed a fresh engine (even with a different shard count) elsewhere.
    let snapshot = client.checkpoint().expect("checkpoint");
    let restored = FleetEngine::restore(
        FleetConfig { shards: 4, fleet_seed: 42, ..FleetConfig::default() },
        &snapshot,
    )
    .expect("restore from wire bytes");
    println!(
        "checkpoint     {} bytes over the wire; restored onto {} shards with {} streams",
        snapshot.len(),
        4,
        restored.stream_count()
    );

    // Graceful remote shutdown: the ack is the last frame served.
    client.shutdown_server().expect("shutdown acked");
    drop(server); // joins acceptor, HTTP shim, and connection threads
    println!("shutdown       drained and joined; done");
}
