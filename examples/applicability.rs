//! Applicability triage: run the paper's future-work "quantitative method to
//! assess the LARPredictor's applicability" over the whole trace corpus and
//! see which traces warrant adaptive selection.
//!
//! Run with: `cargo run --release --example applicability`

use larpredictor::larp::{assess, LarpConfig, Recommendation};
use larpredictor::vmsim;

fn main() {
    let corpus = vmsim::traceset::paper_traces(2007);
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}  verdict",
        "trace", "headroom", "entropy", "info", "switch"
    );
    let mut strong = 0;
    let mut marginal = 0;
    let mut single = 0;
    for (key, series) in &corpus {
        if timeseries::stats::variance(series.values()) < 1e-9 {
            continue; // dead device
        }
        let config = LarpConfig::paper(key.profile.prediction_window());
        // Assess on the first half only — the data a deployment would have.
        let half = &series.values()[..series.len() / 2];
        let a = match assess(half, &config) {
            Ok(a) => a,
            Err(e) => {
                println!("{:<22} assessment failed: {e}", key.label());
                continue;
            }
        };
        let verdict = match a.recommendation {
            Recommendation::StrongFit => {
                strong += 1;
                "STRONG"
            }
            Recommendation::MarginalFit => {
                marginal += 1;
                "marginal"
            }
            Recommendation::UseSingleBest => {
                single += 1;
                "single-best"
            }
        };
        println!(
            "{:<22} {:>8.1}% {:>9.2} {:>8.1}% {:>8.1}%  {verdict}",
            key.label(),
            a.oracle_headroom * 100.0,
            a.label_entropy,
            a.window_information * 100.0,
            a.switch_rate * 100.0,
        );
    }
    println!("\nstrong fit: {strong}, marginal: {marginal}, use single best: {single}");
}
