//! Fleet serving: many VM metric streams behind one sharded engine.
//!
//! Registers 64 heterogeneous synthetic VM workloads with a 4-shard
//! [`fleet::FleetEngine`], streams a day of per-minute samples through
//! batched pushes, then demonstrates the kill/restore cycle: the fleet is
//! checkpointed, dropped, restored onto a *different* shard count, and keeps
//! forecasting the identical future — no model is retrained.
//!
//! Run with: `cargo run --release --example fleet_serving`

use larpredictor::fleet::{BackpressurePolicy, FleetConfig, FleetEngine, StreamId};
use larpredictor::vmsim::fleet_trace;

const STREAMS: u64 = 64;
const WARM: usize = 180;
const TAIL: usize = 60;
const SEED: u64 = 2007;

fn config(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        fleet_seed: SEED,
        backpressure: BackpressurePolicy::Block,
        ..FleetConfig::default()
    }
}

/// One fleet-wide batch: every stream's sample for `minute`.
fn batch_at(traces: &[Vec<f64>], minute: usize) -> Vec<(StreamId, f64)> {
    traces.iter().enumerate().map(|(id, t)| (id as StreamId, t[minute])).collect()
}

fn main() {
    // Per-stream traces derive from (fleet_seed, stream_id) alone, so any
    // deployment regenerates the same fleet.
    let traces: Vec<Vec<f64>> = (0..STREAMS).map(|id| fleet_trace(SEED, id, WARM + TAIL)).collect();

    let engine = FleetEngine::new(config(4)).expect("valid fleet config");
    for id in 0..STREAMS {
        engine.register(id).expect("fresh stream id");
    }

    // Warm phase: three hours of per-minute samples, pushed in fleet-wide
    // batches (one queue-lock acquisition per shard per batch).
    for minute in 0..WARM {
        engine.push_batch(&batch_at(&traces, minute));
    }
    engine.flush();

    let health = engine.health();
    println!("fleet after warmup:");
    println!("  streams      {:>8}", health.streams);
    println!("  samples      {:>8}", health.steps);
    println!("  forecasts    {:>8}", health.forecasts);
    println!("  retrains     {:>8}", health.retrains);
    println!("  non-finite   {:>8}", health.nonfinite_forecasts);
    for shard in &health.shards {
        println!(
            "  shard {}: {:>2} streams, queue depth {}, {} degraded",
            shard.shard, shard.streams, shard.queue_depth, shard.degraded_streams
        );
    }

    // Kill/restore: checkpoint captures every stream's trained model,
    // sanitizer memory and quarantine clocks.
    let checkpoint = engine.checkpoint().expect("checkpoint");
    println!("\ncheckpoint: {} bytes for {} streams", checkpoint.len(), health.streams);

    let reference = engine.stream_info(0).expect("stream 0 exists");
    drop(engine); // the "crash"

    // Restore onto 2 shards instead of 4 — assignment is a pure hash, so the
    // fleet re-shards itself and every model resumes warm.
    let restored = FleetEngine::restore(config(2), &checkpoint).expect("valid checkpoint");
    let resumed = restored.stream_info(0).expect("stream 0 restored");
    assert_eq!(resumed.retrains, reference.retrains, "restore must not retrain");
    println!(
        "restored onto 2 shards: stream 0 resumes at minute {} with {} retrains (unchanged)",
        resumed.next_minute, resumed.retrains
    );

    // Serve the tail hour on the restored fleet.
    for minute in WARM..WARM + TAIL {
        restored.push_batch(&batch_at(&traces, minute));
    }
    restored.flush();

    let health = restored.health();
    println!("\nrestored fleet after one more hour:");
    println!("  forecasts    {:>8}", health.forecasts);
    println!("  non-finite   {:>8}", health.nonfinite_forecasts);
    let sample: Vec<String> = (0..4)
        .map(|id| {
            let f = restored
                .stream_info(id)
                .expect("stream exists")
                .last_forecast
                .expect("stream is past warmup");
            format!("vm{id}={f:.1}")
        })
        .collect();
    println!("  next-minute forecasts: {}", sample.join("  "));
    assert_eq!(health.nonfinite_forecasts, 0);
}
