//! Online adaptation: QA-triggered retraining on a workload that changes
//! character mid-stream.
//!
//! The first half of the stream is the calendar VM's near-idle CPU; then the
//! VM is repurposed as a busy web server. The embedded Quality Assuror
//! detects the accuracy collapse and retrains the LARPredictor on recent
//! data — the paper's §3.2 feedback loop.
//!
//! Run with: `cargo run --release --example online_adaptation`

use larpredictor::larp::{LarpConfig, OnlineLarp, QualityAssuror};
use larpredictor::vmsim::{self, MetricKind, VmProfile};

fn main() {
    // Build the two regimes from real profile signals.
    let idle = vmsim::traceset::vm_traces(VmProfile::Vm3, 9);
    let busy = vmsim::traceset::vm_traces(VmProfile::Vm4, 9);
    let pick = |set: &[(vmsim::TraceKey, timeseries::Series)]| {
        set.iter()
            .find(|(k, _)| k.metric == MetricKind::CpuUsedSec)
            .map(|(_, s)| s.values().to_vec())
            .unwrap()
    };
    let mut stream = pick(&idle);
    stream.extend(pick(&busy));

    let qa = QualityAssuror::new(40.0, 12, 6).expect("valid QA parameters");
    let mut online = OnlineLarp::new(LarpConfig::paper(5), 96, qa).expect("valid config");

    let mut errors_before = Vec::new();
    let mut errors_after = Vec::new();
    let mut pending: Option<f64> = None;
    let regime_switch = pick(&idle).len();

    for (t, &value) in stream.iter().enumerate() {
        if let Some(f) = pending.take() {
            let err = (f - value).powi(2);
            if t < regime_switch {
                errors_before.push(err);
            } else {
                errors_after.push(err);
            }
        }
        let step = online.push(value);
        pending = step.forecast;
        if step.retrained {
            println!("t={t:>4}: retrained (total retrainings: {})", online.retrain_count());
        }
    }

    let mse = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("\nsamples: {} (regime switch at {regime_switch})", stream.len());
    println!("MSE during idle regime:  {:.3}", mse(&errors_before));
    println!("MSE after repurposing:   {:.3}", mse(&errors_after));
    println!("retrainings performed:   {}", online.retrain_count());
}
