//! VM-provisioning scenario: the paper's Figure 1 prototype, end to end.
//!
//! Monitor agent → round-robin database → profiler → LARPredictor →
//! prediction database → Quality Assuror. A resource manager polls the
//! prediction DB to decide whether VM4 (web + list + wiki) needs more memory
//! in the next interval.
//!
//! Run with: `cargo run --release --example vm_provisioning`

use std::sync::Arc;

use larpredictor::larp::{LarpConfig, TrainedLarp};
use larpredictor::vmsim::db::PredictionDatabase;
use larpredictor::vmsim::{MetricKind, MonitorAgent, Profiler, RoundRobinDatabase, VmProfile};

fn main() {
    let profile = VmProfile::Vm4;
    let vm = profile.vm_id();
    let metric = MetricKind::MemSize;

    // --- Figure 1 pipeline ---------------------------------------------
    // Monitor agent samples the VMM every minute into the RRD.
    let rrd = Arc::new(RoundRobinDatabase::new(3000));
    let mut agent = MonitorAgent::new(vec![profile.build(4)], rrd.clone());
    let warmup_minutes = 12 * 60; // half a day of history before going live
    agent.run(warmup_minutes);

    // Profiler extracts the training series at 5-minute consolidation.
    let profiler = Profiler::new(rrd.clone());
    let train = profiler.extract(vm, metric, 0, warmup_minutes, 5).unwrap();
    let model = TrainedLarp::train(train.values(), &LarpConfig::paper(5)).unwrap();
    println!("trained on {} samples of {vm}/{metric}", train.len());

    // Prediction DB stores forecasts keyed [vmID, metric, timestamp].
    let pdb = PredictionDatabase::new();

    // --- Live loop: predict, observe, audit ------------------------------
    let mut history: Vec<f64> = train.values().to_vec();
    let mut scale_ups = 0usize;
    for step in 0..72 {
        // Advance reality by one 5-minute interval.
        agent.run(5);
        let now_minute = warmup_minutes + (step + 1) * 5;
        let ts = now_minute * 60;

        // Forecast the interval that just started, store it.
        let (chosen, forecast) = model.predict_next_raw(&history).unwrap();
        pdb.store_prediction(vm, metric, ts, forecast, chosen.0);

        // The interval completes; reconcile with the observed consolidation.
        let observed =
            profiler.extract(vm, metric, now_minute - 5, now_minute, 5).unwrap().values()[0];
        pdb.record_observation(vm, metric, ts, observed);
        history.push(observed);

        // Resource-manager policy: forecasted memory above 85% of the 1 GB
        // allocation triggers a provisioning action.
        if forecast > 0.85 * 1024.0 {
            scale_ups += 1;
        }
        if step < 8 {
            println!(
                "t={:>5}min  model {:<7} forecast {forecast:>8.1} MB  observed {observed:>8.1} MB",
                now_minute,
                model.pool().name(chosen)
            );
        }
    }

    // Quality Assuror audits the prediction DB (paper: rolling average MSE).
    let audit = pdb.audit_mse(vm, metric, 36).expect("reconciled records exist");
    println!("\nQA audit over last 36 predictions: MSE = {audit:.2} (MB^2)");
    println!("provisioning actions recommended: {scale_ups}");
    println!("prediction DB holds {} records", pdb.len());
}
