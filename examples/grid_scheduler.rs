//! Grid-scheduler scenario: use LARPredictor forecasts of the grid head
//! node's CPU availability to admit or defer batch jobs.
//!
//! This mirrors the paper's motivating use case ("predicting the dynamic
//! resource availability is critical to adaptive resource scheduling"): VM1
//! hosts a PBS head node with the paper's 310-job mix; a toy scheduler admits
//! a job only when the predicted next-interval CPU usage leaves headroom.
//!
//! Run with: `cargo run --release --example grid_scheduler`

use larpredictor::larp::{LarpConfig, TrainedLarp};
use larpredictor::vmsim::{self, VmProfile};

/// Admission threshold: predicted CPU must stay below this (usedsec/interval).
const CPU_HEADROOM: f64 = 9.0;

fn main() {
    // VM1: grid head node, 7 days at 30-minute resolution (336 points).
    let traces = vmsim::traceset::vm_traces(VmProfile::Vm1, 77);
    let (_, cpu) =
        traces.iter().find(|(k, _)| k.label() == "VM1/CPU_usedsec").expect("corpus contains CPU");

    // Train on the first half of the week (paper settings for VM1: m = 16).
    let split = cpu.len() / 2;
    let (train, test) = cpu.values().split_at(split);
    let config = LarpConfig::paper(16);
    let model = TrainedLarp::train(train, &config).expect("half a week of data");

    println!("scheduler driving on {} forecast intervals (30 min each)\n", test.len() - 16);
    let mut admitted = 0usize;
    let mut deferred = 0usize;
    let mut wrong_admits = 0usize; // admitted but the interval turned out busy
    let mut missed_slots = 0usize; // deferred but the interval was actually idle

    for t in 16..test.len() {
        let history = &test[..t];
        let (chosen, forecast) = model.predict_next_raw(history).expect("history >= window");
        let actual = test[t];
        if forecast < CPU_HEADROOM {
            admitted += 1;
            if actual >= CPU_HEADROOM {
                wrong_admits += 1;
            }
        } else {
            deferred += 1;
            if actual < CPU_HEADROOM {
                missed_slots += 1;
            }
        }
        if t < 24 {
            println!(
                "t+{t:>3}  model {:<7} forecast {forecast:>7.2}  actual {actual:>7.2}  -> {}",
                model.pool().name(chosen),
                if forecast < CPU_HEADROOM { "ADMIT" } else { "DEFER" }
            );
        }
    }

    let total = admitted + deferred;
    println!("\nadmitted {admitted}/{total}, deferred {deferred}/{total}");
    println!(
        "bad admissions: {wrong_admits} ({:.1}%), missed idle slots: {missed_slots} ({:.1}%)",
        100.0 * wrong_admits as f64 / total as f64,
        100.0 * missed_slots as f64 / total as f64,
    );
}
