//! Quickstart: train a LARPredictor on one simulated VM trace and compare it
//! against every baseline the paper considers.
//!
//! Run with: `cargo run --release --example quickstart`

use larpredictor::larp::{
    eval::{forecasting_accuracy, observed_best, run_selector_normalized},
    selector::{NwsCumMse, Static, WindowedCumMse},
    LarpConfig, TrainedLarp,
};
use larpredictor::vmsim::{self, VmProfile};

fn main() {
    // 1. Generate the paper's VM2 (VNC proxy) corpus: 12 metrics, 24 h @ 5 min.
    let traces = vmsim::traceset::vm_traces(VmProfile::Vm2, 2007);
    let (key, series) = traces
        .iter()
        .find(|(k, _)| k.label() == "VM2/NIC1_received")
        .expect("corpus contains every metric");
    println!("trace: {key} ({} points @ {}s)", series.len(), series.interval_secs());

    // 2. Paper protocol: 50/50 contiguous split, train-derived normalisation.
    let (train, test) = series.values().split_at(series.len() / 2);
    let config = LarpConfig::paper(5); // m = 5, PCA n = 2, 3-NN, {LAST, AR, SW_AVG}
    let model = TrainedLarp::train(train, &config).expect("trace is long enough");
    println!("trained: {model:?}");

    // 3. Score the LARPredictor and every baseline on the held-out half.
    let norm = model.zscore().apply_slice(test);
    let pool = model.pool();
    let oracle = observed_best(pool, config.window, &norm).unwrap();
    let lar = run_selector_normalized(&mut model.selector(), pool, config.window, &norm).unwrap();
    let mut nws_sel = NwsCumMse::new(pool);
    let nws = run_selector_normalized(&mut nws_sel, pool, config.window, &norm).unwrap();
    let mut wnws_sel = WindowedCumMse::new(pool, 2).unwrap();
    let wnws = run_selector_normalized(&mut wnws_sel, pool, config.window, &norm).unwrap();

    println!("\n{:<12} {:>10} {:>12} {:>8}", "selector", "norm. MSE", "model execs", "acc");
    let acc = |run| forecasting_accuracy(run, &oracle).unwrap() * 100.0;
    println!("{:<12} {:>10.4} {:>12} {:>7.1}%", "P-LAR", oracle.oracle_mse, "-", 100.0);
    for run in [&lar, &nws, &wnws] {
        println!(
            "{:<12} {:>10.4} {:>12} {:>7.1}%",
            run.name,
            run.mse,
            run.model_executions,
            acc(run)
        );
    }
    for id in pool.ids() {
        let mut s = Static::new(id, pool.name(id));
        let run = run_selector_normalized(&mut s, pool, config.window, &norm).unwrap();
        println!("{:<12} {:>10.4} {:>12} {:>7}", run.name, run.mse, run.model_executions, "-");
    }

    // 4. One-line takeaway.
    println!(
        "\nLARPredictor ran {}x fewer model executions than NWS at comparable accuracy.",
        nws.model_executions / lar.model_executions
    );
}
