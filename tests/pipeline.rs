//! Cross-crate integration tests: the full paper pipeline, end to end.

use larpredictor::larp::{
    eval::{forecasting_accuracy, observed_best_scored, run_selector_scored, TraceReport},
    selector::{NwsCumMse, Static, WindowedCumMse},
    LarpConfig, TrainedLarp,
};
use larpredictor::vmsim::{self, profiles::VmProfile, MetricKind};

/// Helper: VM2's corpus at a fixed seed.
fn vm2() -> Vec<(vmsim::TraceKey, timeseries::Series)> {
    vmsim::traceset::vm_traces(VmProfile::Vm2, 1234)
}

#[test]
fn full_pipeline_on_monitored_trace() {
    // Simulator -> monitor -> RRD -> profiler -> LARPredictor -> evaluation.
    let traces = vm2();
    let (_, series) = traces.iter().find(|(k, _)| k.metric == MetricKind::CpuUsedSec).unwrap();
    assert_eq!(series.len(), 288);

    let values = series.values();
    let split = values.len() / 2;
    let config = LarpConfig::paper(5);
    let model = TrainedLarp::train(&values[..split], &config).unwrap();
    let norm = model.zscore().apply_slice(values);
    let pool = model.pool();

    let oracle = observed_best_scored(pool, 5, &norm, split).unwrap();
    let lar = run_selector_scored(&mut model.selector(), pool, 5, &norm, split).unwrap();

    // Invariants of the paper's design.
    assert!(oracle.oracle_mse <= lar.mse + 1e-12, "oracle bounds LAR");
    for m in &oracle.per_model_mse {
        assert!(oracle.oracle_mse <= m + 1e-12, "oracle bounds singles");
    }
    let acc = forecasting_accuracy(&lar, &oracle).unwrap();
    assert!((0.0..=1.0).contains(&acc));
    // The selector must actually adapt on this regime-switching VM.
    let distinct: std::collections::HashSet<_> = lar.chosen.iter().collect();
    assert!(!distinct.is_empty());
}

#[test]
fn lar_runs_one_model_per_step_nws_runs_all() {
    let traces = vm2();
    let (_, series) = traces.iter().find(|(k, _)| k.metric == MetricKind::Nic1Rx).unwrap();
    let values = series.values();
    let split = values.len() / 2;
    let config = LarpConfig::paper(5);
    let model = TrainedLarp::train(&values[..split], &config).unwrap();
    let norm = model.zscore().apply_slice(values);
    let pool = model.pool();

    let lar = run_selector_scored(&mut model.selector(), pool, 5, &norm, split).unwrap();
    let mut nws_sel = NwsCumMse::new(pool);
    let nws = run_selector_scored(&mut nws_sel, pool, 5, &norm, split).unwrap();
    // The central cost claim of the paper: LAR executes one model per scored
    // step; NWS executes the whole pool every step of the entire history.
    let scored = lar.chosen.len();
    assert_eq!(lar.model_executions, scored);
    assert!(nws.model_executions > scored * pool.len());
}

#[test]
fn static_selectors_reproduce_per_model_columns() {
    let traces = vm2();
    let (_, series) = traces.iter().find(|(k, _)| k.metric == MetricKind::Vd1Read).unwrap();
    let values = series.values();
    let split = values.len() / 2;
    let config = LarpConfig::paper(5);
    let model = TrainedLarp::train(&values[..split], &config).unwrap();
    let norm = model.zscore().apply_slice(values);
    let pool = model.pool();
    let oracle = observed_best_scored(pool, 5, &norm, split).unwrap();
    for id in pool.ids() {
        let mut s = Static::new(id, pool.name(id));
        let run = run_selector_scored(&mut s, pool, 5, &norm, split).unwrap();
        assert!((run.mse - oracle.per_model_mse[id.0]).abs() < 1e-12, "{}", pool.name(id));
    }
}

#[test]
fn windowed_selector_is_distinct_from_cumulative() {
    let traces = vm2();
    let (_, series) = traces.iter().find(|(k, _)| k.metric == MetricKind::CpuReady).unwrap();
    let values = series.values();
    let split = values.len() / 2;
    let config = LarpConfig::paper(5);
    let model = TrainedLarp::train(&values[..split], &config).unwrap();
    let norm = model.zscore().apply_slice(values);
    let pool = model.pool();
    let mut nws = NwsCumMse::new(pool);
    let nws_run = run_selector_scored(&mut nws, pool, 5, &norm, split).unwrap();
    let mut wnws = WindowedCumMse::new(pool, 2).unwrap();
    let wnws_run = run_selector_scored(&mut wnws, pool, 5, &norm, split).unwrap();
    // Window-2 error tracking flips far more often than all-history tracking.
    let switches = |v: &[predictors::PredictorId]| v.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(switches(&wnws_run.chosen) >= switches(&nws_run.chosen));
}

#[test]
fn trace_report_protocol_is_reproducible_and_ordered() {
    let traces = vm2();
    let (key, series) = traces.iter().find(|(k, _)| k.metric == MetricKind::CpuReady).unwrap();
    let config = LarpConfig::paper(5);
    let a = TraceReport::evaluate(key.label(), series.values(), &config, 5, 99).unwrap();
    let b = TraceReport::evaluate(key.label(), series.values(), &config, 5, 99).unwrap();
    assert_eq!(a, b);
    assert!(a.mse_plar <= a.mse_lar + 1e-12);
    assert!(a.mse_plar <= a.best_single_mse() + 1e-12);
    assert_eq!(a.model_names, vec!["LAST", "AR", "SW_AVG"]);
}

#[test]
fn corpus_covers_all_vms_and_dead_streams_are_degenerate() {
    let corpus = vmsim::traceset::paper_traces(5);
    assert_eq!(corpus.len(), 60);
    let dead: Vec<String> = corpus
        .iter()
        .filter(|(_, s)| timeseries::stats::variance(s.values()) < 1e-9)
        .map(|(k, _)| k.label())
        .collect();
    // The paper's NaN rows: VM3 NIC2 + VD1 (4 streams), VM5 NIC1 + VD2_read.
    for expected in [
        "VM3/NIC2_received",
        "VM3/NIC2_transmitted",
        "VM3/VD1_read",
        "VM3/VD1_write",
        "VM5/NIC1_received",
        "VM5/NIC1_transmitted",
        "VM5/VD2_read",
    ] {
        assert!(dead.contains(&expected.to_string()), "{expected} should be dead: {dead:?}");
    }
    assert_eq!(dead.len(), 7, "{dead:?}");
}

#[test]
fn extended_pool_lowers_the_oracle_bound() {
    // More experts => a strictly better perfect-selection bound (the premise
    // of the paper's future-work section).
    let traces = vm2();
    let (_, series) = traces.iter().find(|(k, _)| k.metric == MetricKind::Nic1Tx).unwrap();
    let values = series.values();
    let split = values.len() / 2;

    let std_cfg = LarpConfig::paper(5);
    let ext_cfg = LarpConfig::extended(5);
    let std_model = TrainedLarp::train(&values[..split], &std_cfg).unwrap();
    let ext_model = TrainedLarp::train(&values[..split], &ext_cfg).unwrap();
    let std_norm = std_model.zscore().apply_slice(values);
    let ext_norm = ext_model.zscore().apply_slice(values);
    let std_oracle = observed_best_scored(std_model.pool(), 5, &std_norm, split).unwrap();
    let ext_oracle = observed_best_scored(ext_model.pool(), 5, &ext_norm, split).unwrap();
    assert!(
        ext_oracle.oracle_mse <= std_oracle.oracle_mse + 1e-9,
        "extended {} vs standard {}",
        ext_oracle.oracle_mse,
        std_oracle.oracle_mse
    );
}

#[test]
fn online_larp_survives_a_workload_handover() {
    // Stream VM3's idle CPU, then VM4's busy CPU through the online wrapper.
    let idle = vmsim::traceset::vm_traces(VmProfile::Vm3, 3);
    let busy = vmsim::traceset::vm_traces(VmProfile::Vm4, 3);
    let pick = |set: &[(vmsim::TraceKey, timeseries::Series)]| {
        set.iter()
            .find(|(k, _)| k.metric == MetricKind::CpuUsedSec)
            .map(|(_, s)| s.values().to_vec())
            .unwrap()
    };
    let mut stream = pick(&idle);
    stream.extend(pick(&busy));

    let qa = larpredictor::larp::QualityAssuror::new(2.0, 12, 6).unwrap();
    let mut online = larpredictor::larp::OnlineLarp::new(LarpConfig::paper(5), 96, qa).unwrap();
    let mut forecasts = 0;
    for v in &stream {
        if online.push(*v).forecast.is_some() {
            forecasts += 1;
        }
    }
    assert!(online.is_trained());
    assert!(forecasts > stream.len() / 2);
    assert!(online.retrain_count() >= 1);
}
