//! Randomized property-style integration tests over the public API.
//!
//! Seeded `simrng` loops replace the original proptest strategies so the
//! suite runs without external crates; every case is deterministic per seed.

use simrng::{Rng64, Xoshiro256pp};

use larpredictor::larp::{
    eval::{observed_best_scored, run_selector_scored},
    selector::Static,
    LarpConfig, TrainedLarp,
};
use larpredictor::predictors::{ModelSpec, PredictorPool};
use larpredictor::timeseries::{metrics, ZScore};

fn random_vec(rng: &mut Xoshiro256pp, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

/// Arbitrary finite, bounded series long enough for the default config.
fn series(rng: &mut Xoshiro256pp) -> Vec<f64> {
    let n = 60 + rng.next_below(140) as usize;
    random_vec(rng, n, -1e3, 1e3)
}

/// The P-LAR oracle lower-bounds every selector on every series.
#[test]
fn oracle_is_universal_lower_bound() {
    let mut rng = Xoshiro256pp::seed_from_u64(601);
    for _ in 0..48 {
        let values = series(&mut rng);
        let split = values.len() / 2;
        let config = LarpConfig::paper(5);
        // Training can legitimately fail on degenerate random data; skip.
        let Ok(model) = TrainedLarp::train(&values[..split], &config) else { continue };
        let norm = model.zscore().apply_slice(&values);
        let pool = model.pool();
        let oracle = observed_best_scored(pool, 5, &norm, split).unwrap();
        let lar = run_selector_scored(&mut model.selector(), pool, 5, &norm, split).unwrap();
        assert!(oracle.oracle_mse <= lar.mse + 1e-9);
        for id in pool.ids() {
            let mut s = Static::new(id, pool.name(id));
            let run = run_selector_scored(&mut s, pool, 5, &norm, split).unwrap();
            assert!(oracle.oracle_mse <= run.mse + 1e-9);
        }
    }
}

/// Selection is always a valid pool member and deterministic.
#[test]
fn selection_is_valid_and_deterministic() {
    let mut rng = Xoshiro256pp::seed_from_u64(602);
    for _ in 0..48 {
        let values = series(&mut rng);
        let at = 10 + rng.next_below(40) as usize;
        let split = values.len() / 2;
        let config = LarpConfig::paper(5);
        let Ok(model) = TrainedLarp::train(&values[..split], &config) else { continue };
        let norm = model.zscore().apply_slice(&values);
        let t = at.min(norm.len() - 1).max(5);
        let a = model.select(&norm[..t]).unwrap();
        let b = model.select(&norm[..t]).unwrap();
        assert_eq!(a, b);
        assert!(a.0 < model.pool().len());
    }
}

/// Z-normalisation with train coefficients round-trips raw forecasts.
#[test]
fn raw_forecasts_invert_normalisation() {
    let mut rng = Xoshiro256pp::seed_from_u64(603);
    for _ in 0..48 {
        let values = series(&mut rng);
        let split = values.len() / 2;
        let config = LarpConfig::paper(5);
        let Ok(model) = TrainedLarp::train(&values[..split], &config) else { continue };
        let history = &values[split..];
        if history.len() < 5 {
            continue;
        }
        let (id_raw, raw) = model.predict_next_raw(history).unwrap();
        let norm_hist = model.zscore().apply_slice(history);
        let (id_norm, z) = model.predict_next(&norm_hist).unwrap();
        assert_eq!(id_raw, id_norm);
        assert!((model.zscore().invert(z) - raw).abs() < 1e-9);
    }
}

/// A pool built from any valid spec subset predicts finite values.
#[test]
fn pools_always_produce_finite_forecasts() {
    let mut rng = Xoshiro256pp::seed_from_u64(604);
    for _ in 0..48 {
        let n = 80 + rng.next_below(70) as usize;
        let values = random_vec(&mut rng, n, -100.0, 100.0);
        let order = 2 + rng.next_below(4) as usize;
        let specs = ModelSpec::extended_pool(order);
        let Ok(pool) = PredictorPool::from_specs(&specs, &values) else { continue };
        let h = &values[..pool.min_history().max(order + 2)];
        for f in pool.predict_all(h) {
            assert!(f.is_finite());
        }
    }
}

/// MSE is translation-invariant in the pair and zero iff identical.
#[test]
fn mse_metric_axioms() {
    let mut rng = Xoshiro256pp::seed_from_u64(605);
    for _ in 0..48 {
        let n = 1 + rng.next_below(39) as usize;
        let xs = random_vec(&mut rng, n, -50.0, 50.0);
        let shift = rng.uniform(-10.0, 10.0);
        let ys: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let m = metrics::mse(&xs, &ys).unwrap();
        assert!((m - shift * shift).abs() < 1e-9);
        assert!(metrics::mse(&xs, &xs).unwrap() == 0.0);
    }
}

/// ZScore(train) applied to any data is an affine map with the fitted
/// coefficients.
#[test]
fn zscore_is_affine() {
    let mut rng = Xoshiro256pp::seed_from_u64(606);
    for _ in 0..48 {
        let n = 2 + rng.next_below(58) as usize;
        let train = random_vec(&mut rng, n, -100.0, 100.0);
        let x = rng.uniform(-1e4, 1e4);
        let z = ZScore::fit(&train).unwrap();
        let a = z.apply(x);
        assert!((z.invert(a) - x).abs() < 1e-6 * x.abs().max(1.0));
        // Affine: apply(x) - apply(0) is linear in x.
        let slope = z.apply(1.0) - z.apply(0.0);
        assert!((z.apply(x) - (z.apply(0.0) + slope * x)).abs() < 1e-6 * x.abs().max(1.0));
    }
}
