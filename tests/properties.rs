//! Property-based integration tests over the public API (proptest).

use proptest::prelude::*;

use larpredictor::larp::{
    eval::{observed_best_scored, run_selector_scored},
    selector::Static,
    LarpConfig, TrainedLarp,
};
use larpredictor::predictors::{ModelSpec, PredictorPool};
use larpredictor::timeseries::{metrics, ZScore};

/// Arbitrary finite, bounded series long enough for the default config.
fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, 60..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The P-LAR oracle lower-bounds every selector on every series.
    #[test]
    fn oracle_is_universal_lower_bound(values in series_strategy()) {
        let split = values.len() / 2;
        let config = LarpConfig::paper(5);
        // Training can legitimately fail on degenerate random data; skip.
        let Ok(model) = TrainedLarp::train(&values[..split], &config) else {
            return Ok(());
        };
        let norm = model.zscore().apply_slice(&values);
        let pool = model.pool();
        let oracle = observed_best_scored(pool, 5, &norm, split).unwrap();
        let lar = run_selector_scored(&mut model.selector(), pool, 5, &norm, split).unwrap();
        prop_assert!(oracle.oracle_mse <= lar.mse + 1e-9);
        for id in pool.ids() {
            let mut s = Static::new(id, pool.name(id));
            let run = run_selector_scored(&mut s, pool, 5, &norm, split).unwrap();
            prop_assert!(oracle.oracle_mse <= run.mse + 1e-9);
        }
    }

    /// Selection is always a valid pool member and deterministic.
    #[test]
    fn selection_is_valid_and_deterministic(values in series_strategy(), at in 10usize..50) {
        let split = values.len() / 2;
        let config = LarpConfig::paper(5);
        let Ok(model) = TrainedLarp::train(&values[..split], &config) else {
            return Ok(());
        };
        let norm = model.zscore().apply_slice(&values);
        let t = at.min(norm.len() - 1).max(5);
        let a = model.select(&norm[..t]).unwrap();
        let b = model.select(&norm[..t]).unwrap();
        prop_assert_eq!(a, b);
        prop_assert!(a.0 < model.pool().len());
    }

    /// Z-normalisation with train coefficients round-trips raw forecasts.
    #[test]
    fn raw_forecasts_invert_normalisation(values in series_strategy()) {
        let split = values.len() / 2;
        let config = LarpConfig::paper(5);
        let Ok(model) = TrainedLarp::train(&values[..split], &config) else {
            return Ok(());
        };
        let history = &values[split..];
        if history.len() < 5 {
            return Ok(());
        }
        let (id_raw, raw) = model.predict_next_raw(history).unwrap();
        let norm_hist = model.zscore().apply_slice(history);
        let (id_norm, z) = model.predict_next(&norm_hist).unwrap();
        prop_assert_eq!(id_raw, id_norm);
        prop_assert!((model.zscore().invert(z) - raw).abs() < 1e-9);
    }

    /// A pool built from any valid spec subset predicts finite values.
    #[test]
    fn pools_always_produce_finite_forecasts(
        values in proptest::collection::vec(-100f64..100.0, 80..150),
        order in 2usize..6,
    ) {
        let specs = ModelSpec::extended_pool(order);
        let Ok(pool) = PredictorPool::from_specs(&specs, &values) else {
            return Ok(());
        };
        let h = &values[..pool.min_history().max(order + 2)];
        for f in pool.predict_all(h) {
            prop_assert!(f.is_finite());
        }
    }

    /// MSE is translation-invariant in the pair and zero iff identical.
    #[test]
    fn mse_metric_axioms(
        xs in proptest::collection::vec(-50f64..50.0, 1..40),
        shift in -10f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let m = metrics::mse(&xs, &ys).unwrap();
        prop_assert!((m - shift * shift).abs() < 1e-9);
        prop_assert!(metrics::mse(&xs, &xs).unwrap() == 0.0);
    }

    /// ZScore(train) applied to any data is an affine map with the fitted
    /// coefficients.
    #[test]
    fn zscore_is_affine(
        train in proptest::collection::vec(-100f64..100.0, 2..60),
        x in -1e4f64..1e4,
    ) {
        let z = ZScore::fit(&train).unwrap();
        let a = z.apply(x);
        prop_assert!((z.invert(a) - x).abs() < 1e-6 * x.abs().max(1.0));
        // Affine: apply(x) - apply(0) is linear in x.
        let slope = z.apply(1.0) - z.apply(0.0);
        prop_assert!((z.apply(x) - (z.apply(0.0) + slope * x)).abs() < 1e-6 * x.abs().max(1.0));
    }
}
