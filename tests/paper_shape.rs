//! Shape-level reproduction guards: qualitative claims of the paper that the
//! corpus must keep satisfying as the code evolves. Uses a reduced fold count
//! to stay fast; the full numbers live in EXPERIMENTS.md.

use larpredictor::larp::eval::Aggregate;
use larpredictor::larp::{LarpConfig, TraceReport};
use larpredictor::vmsim::{self, profiles::VmProfile};

/// Evaluates one VM's live traces at 3 folds.
fn vm_reports(profile: VmProfile, folds: usize, seed: u64) -> Vec<TraceReport> {
    let config = LarpConfig::paper(profile.prediction_window());
    vmsim::traceset::vm_traces(profile, seed)
        .into_iter()
        .filter(|(_, s)| timeseries::stats::variance(s.values()) > 1e-9)
        .map(|(k, s)| TraceReport::evaluate(k.label(), s.values(), &config, folds, seed).unwrap())
        .collect()
}

#[test]
fn lar_selection_accuracy_beats_nws_on_average() {
    // The paper's central claim: learning-based selection forecasts the best
    // predictor much more accurately than cumulative-MSE tracking
    // (55.98% vs ~35.8%).
    let mut reports = vm_reports(VmProfile::Vm2, 3, 2007);
    reports.extend(vm_reports(VmProfile::Vm4, 3, 2007));
    let agg = Aggregate::from_reports(&reports).unwrap();
    assert!(
        agg.mean_acc_lar > agg.mean_acc_nws + 0.10,
        "LAR {:.3} vs NWS {:.3}",
        agg.mean_acc_lar,
        agg.mean_acc_nws
    );
    assert!(agg.mean_acc_lar > 0.40, "LAR accuracy {:.3}", agg.mean_acc_lar);
}

#[test]
fn oracle_headroom_exists_on_every_live_trace() {
    // P-LAR strictly below the best single model (the paper's premise that
    // selection has something to gain) on the vast majority of traces.
    let reports = vm_reports(VmProfile::Vm2, 2, 99);
    let with_headroom = reports.iter().filter(|r| r.mse_plar < r.best_single_mse() * 0.95).count();
    assert!(
        with_headroom * 10 >= reports.len() * 8,
        "headroom on {with_headroom}/{} traces",
        reports.len()
    );
}

#[test]
fn best_single_model_varies_across_traces() {
    // Paper observations 1-2: no single model is best for every metric of a
    // VM, nor for a metric across VMs.
    let reports = vm_reports(VmProfile::Vm4, 2, 2007);
    let winners: std::collections::HashSet<&str> =
        reports.iter().map(|r| r.best_single_name()).collect();
    assert!(winners.len() >= 2, "winners: {winners:?}");
}

#[test]
fn lar_beats_nws_on_some_traces_and_stays_close_elsewhere() {
    let mut reports = vm_reports(VmProfile::Vm2, 3, 2007);
    reports.extend(vm_reports(VmProfile::Vm5, 3, 2007));
    let wins = reports.iter().filter(|r| r.lar_beats_nws()).count();
    assert!(wins >= 2, "LAR beat NWS on only {wins}/{} traces", reports.len());
    // And not catastrophically worse in aggregate. (Per-trace ratios can
    // spike on heavy-tailed folds where one burst dominates the MSE, so the
    // guard is on the mean ratio, not the worst trace.)
    let mean_ratio =
        reports.iter().filter(|r| r.mse_nws > 1e-9).map(|r| r.mse_lar / r.mse_nws).sum::<f64>()
            / reports.len() as f64;
    assert!(mean_ratio < 1.6, "mean LAR/NWS ratio {mean_ratio:.3}");
}
